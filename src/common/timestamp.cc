#include "src/common/timestamp.h"

#include <chrono>
#include <cstdio>

namespace auditdb {

namespace {

// Days from the civil epoch 1970-01-01 to year/month/day (proleptic
// Gregorian). Howard Hinnant's algorithm.
int64_t DaysFromCivil(int64_t y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);  // [0, 399]
  const unsigned doy =
      (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;          // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;  // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

// Inverse of DaysFromCivil.
void CivilFromDays(int64_t z, int* y_out, int* m_out, int* d_out) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  *y_out = static_cast<int>(y + (m <= 2));
  *m_out = static_cast<int>(m);
  *d_out = static_cast<int>(d);
}

}  // namespace

Result<Timestamp> Timestamp::FromCivil(int year, int month, int day, int hour,
                                       int minute, int second) {
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour < 0 ||
      hour > 23 || minute < 0 || minute > 59 || second < 0 || second > 60) {
    return Status::InvalidArgument("civil time field out of range");
  }
  int64_t days = DaysFromCivil(year, month, day);
  int64_t secs = days * 86400 + hour * 3600 + minute * 60 + second;
  return Timestamp(secs * 1000000);
}

Result<Timestamp> Timestamp::Parse(const std::string& text,
                                   Timestamp now_value) {
  if (text == "now()" || text == "NOW()") return now_value;
  int d = 0, m = 0, y = 0, hh = 0, mm = 0, ss = 0;
  int consumed = 0;
  // Full form: d/m/yyyy:hh-mm-ss
  if (std::sscanf(text.c_str(), "%d/%d/%d:%d-%d-%d%n", &d, &m, &y, &hh, &mm,
                  &ss, &consumed) == 6 &&
      consumed == static_cast<int>(text.size())) {
    return FromCivil(y, m, d, hh, mm, ss);
  }
  // Date-only form: d/m/yyyy
  if (std::sscanf(text.c_str(), "%d/%d/%d%n", &d, &m, &y, &consumed) == 3 &&
      consumed == static_cast<int>(text.size())) {
    return FromCivil(y, m, d, 0, 0, 0);
  }
  return Status::ParseError("unparseable timestamp: '" + text + "'");
}

Timestamp Timestamp::StartOfDay() const {
  constexpr int64_t kDay = 86400LL * 1000000;
  int64_t days = micros_ / kDay;
  if (micros_ < 0 && micros_ % kDay != 0) --days;
  return Timestamp(days * kDay);
}

Timestamp Timestamp::Now() {
  auto now = std::chrono::system_clock::now().time_since_epoch();
  return Timestamp(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
}

std::string Timestamp::ToString() const {
  if (micros_ == INT64_MIN) return "-inf";
  if (micros_ == INT64_MAX) return "+inf";
  int64_t secs = micros_ / 1000000;
  if (micros_ < 0 && micros_ % 1000000 != 0) --secs;
  int64_t days = secs / 86400;
  int64_t sod = secs % 86400;
  if (sod < 0) {
    sod += 86400;
    --days;
  }
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%d/%d/%d:%02d-%02d-%02d", d, m, y,
                static_cast<int>(sod / 3600), static_cast<int>(sod / 60 % 60),
                static_cast<int>(sod % 60));
  return buf;
}

std::string TimeInterval::ToString() const {
  return start.ToString() + " to " + end.ToString();
}

}  // namespace auditdb
