#include "src/common/tid_bitmap.h"

#include <algorithm>

namespace auditdb {

namespace {

uint64_t Popcount(const std::vector<uint64_t>& words) {
  uint64_t n = 0;
  for (uint64_t w : words) n += static_cast<uint64_t>(std::popcount(w));
  return n;
}

}  // namespace

bool TidBitmap::Chunk::Probe(uint16_t low) const {
  if (dense()) {
    return (words[low >> 6] >> (low & 63)) & 1;
  }
  return std::binary_search(array.begin(), array.end(), low);
}

void TidBitmap::Densify(Chunk& chunk) {
  chunk.words.assign(kWordsPerChunk, 0);
  for (uint16_t low : chunk.array) {
    chunk.words[low >> 6] |= 1ull << (low & 63);
  }
  chunk.array.clear();
  chunk.array.shrink_to_fit();
}

void TidBitmap::SparsifyIfSmall(Chunk& chunk) {
  if (!chunk.dense() || chunk.cardinality > kArrayMax) return;
  std::vector<uint16_t> array;
  array.reserve(chunk.cardinality);
  for (uint32_t w = 0; w < kWordsPerChunk; ++w) {
    uint64_t bits = chunk.words[w];
    while (bits != 0) {
      uint32_t b = static_cast<uint32_t>(std::countr_zero(bits));
      array.push_back(static_cast<uint16_t>(w * 64 + b));
      bits &= bits - 1;
    }
  }
  chunk.array = std::move(array);
  chunk.words.clear();
  chunk.words.shrink_to_fit();
}

TidBitmap::Chunk* TidBitmap::FindChunk(uint64_t key) {
  if (chunks_.empty()) return nullptr;
  // Contiguous-key fast path: a bulk-loaded bitmap (the common dense
  // case) has chunk i at key front+i, making lookup O(1) instead of a
  // binary search whose probes scatter across the chunk array.
  const uint64_t front = chunks_.front().key;
  if (key >= front) {
    const uint64_t offset = key - front;
    if (offset < chunks_.size() && chunks_[offset].key == key) {
      return &chunks_[offset];
    }
  }
  auto it = std::lower_bound(
      chunks_.begin(), chunks_.end(), key,
      [](const Chunk& c, uint64_t k) { return c.key < k; });
  if (it == chunks_.end() || it->key != key) return nullptr;
  return &*it;
}

const TidBitmap::Chunk* TidBitmap::FindChunk(uint64_t key) const {
  return const_cast<TidBitmap*>(this)->FindChunk(key);
}

void TidBitmap::RecomputeCardinality() {
  cardinality_ = 0;
  for (const Chunk& c : chunks_) cardinality_ += c.cardinality;
}

void TidBitmap::Add(int64_t tid) {
  uint64_t u = Encode(tid);
  uint64_t key = u >> kChunkBits;
  uint16_t low = static_cast<uint16_t>(u & (kChunkSize - 1));

  Chunk* chunk = nullptr;
  if (!chunks_.empty() && chunks_.back().key == key) {
    chunk = &chunks_.back();
  } else if (chunks_.empty() || chunks_.back().key < key) {
    // Ascending-insert fast path: new highest chunk.
    chunks_.push_back(Chunk{key, {}, {}, 0});
    chunk = &chunks_.back();
  } else {
    auto it = std::lower_bound(
        chunks_.begin(), chunks_.end(), key,
        [](const Chunk& c, uint64_t k) { return c.key < k; });
    if (it == chunks_.end() || it->key != key) {
      it = chunks_.insert(it, Chunk{key, {}, {}, 0});
    }
    chunk = &*it;
  }

  if (chunk->dense()) {
    uint64_t& word = chunk->words[low >> 6];
    uint64_t bit = 1ull << (low & 63);
    if (word & bit) return;
    word |= bit;
  } else {
    if (chunk->array.empty() || chunk->array.back() < low) {
      chunk->array.push_back(low);
    } else {
      auto it = std::lower_bound(chunk->array.begin(), chunk->array.end(),
                                 low);
      if (it != chunk->array.end() && *it == low) return;
      chunk->array.insert(it, low);
    }
  }
  ++chunk->cardinality;
  ++cardinality_;
  if (!chunk->dense() && chunk->cardinality > kArrayMax) Densify(*chunk);
}

void TidBitmap::AddRange(int64_t begin, int64_t end) {
  if (begin >= end) return;
  const uint64_t u_first = Encode(begin);
  const uint64_t u_last = Encode(end - 1);
  const uint64_t key_first = u_first >> kChunkBits;
  const uint64_t key_last = u_last >> kChunkBits;
  if (!chunks_.empty() && key_first <= chunks_.back().key) {
    // Overlaps existing chunks: take the per-tid path.
    for (int64_t t = begin; t != end; ++t) Add(t);
    return;
  }
  for (uint64_t key = key_first;; ++key) {
    const uint32_t lo =
        key == key_first
            ? static_cast<uint32_t>(u_first & (kChunkSize - 1))
            : 0;
    const uint32_t hi =  // inclusive
        key == key_last
            ? static_cast<uint32_t>(u_last & (kChunkSize - 1))
            : kChunkSize - 1;
    const uint32_t count = hi - lo + 1;
    chunks_.push_back(Chunk{key, {}, {}, count});
    Chunk& c = chunks_.back();
    if (count > kArrayMax) {
      c.words.assign(kWordsPerChunk, 0);
      const uint32_t w0 = lo >> 6;
      const uint32_t w1 = hi >> 6;
      for (uint32_t w = w0; w <= w1; ++w) {
        uint64_t word = ~0ull;
        if (w == w0) word &= ~0ull << (lo & 63);
        if (w == w1) word &= ~0ull >> (63 - (hi & 63));
        c.words[w] = word;
      }
    } else {
      c.array.reserve(count);
      for (uint32_t v = lo; v <= hi; ++v) {
        c.array.push_back(static_cast<uint16_t>(v));
      }
    }
    cardinality_ += count;
    if (key == key_last) break;
  }
}

bool TidBitmap::Contains(int64_t tid) const {
  uint64_t u = Encode(tid);
  const Chunk* chunk = FindChunk(u >> kChunkBits);
  if (chunk == nullptr) return false;
  return chunk->Probe(static_cast<uint16_t>(u & (kChunkSize - 1)));
}

void TidBitmap::Clear() {
  chunks_.clear();
  cardinality_ = 0;
}

void TidBitmap::OrInto(Chunk& dst, const Chunk& src) {
  if (dst.dense()) {
    if (src.dense()) {
      for (uint32_t w = 0; w < kWordsPerChunk; ++w) {
        dst.words[w] |= src.words[w];
      }
    } else {
      for (uint16_t low : src.array) dst.words[low >> 6] |= 1ull << (low & 63);
    }
    dst.cardinality = static_cast<uint32_t>(Popcount(dst.words));
    return;
  }
  if (src.dense()) {
    std::vector<uint64_t> words = src.words;
    for (uint16_t low : dst.array) words[low >> 6] |= 1ull << (low & 63);
    dst.words = std::move(words);
    dst.array.clear();
    dst.array.shrink_to_fit();
    dst.cardinality = static_cast<uint32_t>(Popcount(dst.words));
    return;
  }
  std::vector<uint16_t> merged;
  merged.reserve(dst.array.size() + src.array.size());
  std::set_union(dst.array.begin(), dst.array.end(), src.array.begin(),
                 src.array.end(), std::back_inserter(merged));
  dst.array = std::move(merged);
  dst.cardinality = static_cast<uint32_t>(dst.array.size());
  if (dst.cardinality > kArrayMax) Densify(dst);
}

void TidBitmap::AndInto(Chunk& dst, const Chunk& src) {
  if (dst.dense() && src.dense()) {
    for (uint32_t w = 0; w < kWordsPerChunk; ++w) {
      dst.words[w] &= src.words[w];
    }
    dst.cardinality = static_cast<uint32_t>(Popcount(dst.words));
    SparsifyIfSmall(dst);
    return;
  }
  if (dst.dense()) {
    // src sparse: the result fits in an array (<= src size <= kArrayMax).
    std::vector<uint16_t> kept;
    for (uint16_t low : src.array) {
      if ((dst.words[low >> 6] >> (low & 63)) & 1) kept.push_back(low);
    }
    dst.array = std::move(kept);
    dst.words.clear();
    dst.words.shrink_to_fit();
    dst.cardinality = static_cast<uint32_t>(dst.array.size());
    return;
  }
  std::vector<uint16_t> kept;
  if (src.dense()) {
    for (uint16_t low : dst.array) {
      if ((src.words[low >> 6] >> (low & 63)) & 1) kept.push_back(low);
    }
  } else {
    std::set_intersection(dst.array.begin(), dst.array.end(),
                          src.array.begin(), src.array.end(),
                          std::back_inserter(kept));
  }
  dst.array = std::move(kept);
  dst.cardinality = static_cast<uint32_t>(dst.array.size());
}

void TidBitmap::AndNotInto(Chunk& dst, const Chunk& src) {
  if (dst.dense() && src.dense()) {
    for (uint32_t w = 0; w < kWordsPerChunk; ++w) {
      dst.words[w] &= ~src.words[w];
    }
    dst.cardinality = static_cast<uint32_t>(Popcount(dst.words));
    SparsifyIfSmall(dst);
    return;
  }
  if (dst.dense()) {
    for (uint16_t low : src.array) {
      uint64_t& word = dst.words[low >> 6];
      uint64_t bit = 1ull << (low & 63);
      if (word & bit) {
        word &= ~bit;
        --dst.cardinality;
      }
    }
    SparsifyIfSmall(dst);
    return;
  }
  std::vector<uint16_t> kept;
  if (src.dense()) {
    for (uint16_t low : dst.array) {
      if (((src.words[low >> 6] >> (low & 63)) & 1) == 0) kept.push_back(low);
    }
  } else {
    std::set_difference(dst.array.begin(), dst.array.end(), src.array.begin(),
                        src.array.end(), std::back_inserter(kept));
  }
  dst.array = std::move(kept);
  dst.cardinality = static_cast<uint32_t>(dst.array.size());
}

bool TidBitmap::ChunksIntersect(const Chunk& a, const Chunk& b) {
  if (a.dense() && b.dense()) {
    for (uint32_t w = 0; w < kWordsPerChunk; ++w) {
      if (a.words[w] & b.words[w]) return true;
    }
    return false;
  }
  if (a.dense() || b.dense()) {
    const Chunk& sparse = a.dense() ? b : a;
    const Chunk& dense = a.dense() ? a : b;
    for (uint16_t low : sparse.array) {
      if ((dense.words[low >> 6] >> (low & 63)) & 1) return true;
    }
    return false;
  }
  auto ai = a.array.begin();
  auto bi = b.array.begin();
  while (ai != a.array.end() && bi != b.array.end()) {
    if (*ai == *bi) return true;
    if (*ai < *bi) {
      ++ai;
    } else {
      ++bi;
    }
  }
  return false;
}

void TidBitmap::Or(const TidBitmap& other) {
  if (&other == this || other.chunks_.empty()) return;
  if (chunks_.empty()) {
    chunks_ = other.chunks_;
    cardinality_ = other.cardinality_;
    return;
  }
  std::vector<Chunk> merged;
  merged.reserve(chunks_.size() + other.chunks_.size());
  size_t i = 0;
  size_t j = 0;
  while (i < chunks_.size() && j < other.chunks_.size()) {
    if (chunks_[i].key < other.chunks_[j].key) {
      merged.push_back(std::move(chunks_[i++]));
    } else if (chunks_[i].key > other.chunks_[j].key) {
      merged.push_back(other.chunks_[j++]);
    } else {
      Chunk chunk = std::move(chunks_[i++]);
      OrInto(chunk, other.chunks_[j++]);
      merged.push_back(std::move(chunk));
    }
  }
  while (i < chunks_.size()) merged.push_back(std::move(chunks_[i++]));
  while (j < other.chunks_.size()) merged.push_back(other.chunks_[j++]);
  chunks_ = std::move(merged);
  RecomputeCardinality();
}

void TidBitmap::And(const TidBitmap& other) {
  if (&other == this || chunks_.empty()) return;
  std::vector<Chunk> kept;
  size_t i = 0;
  size_t j = 0;
  while (i < chunks_.size() && j < other.chunks_.size()) {
    if (chunks_[i].key < other.chunks_[j].key) {
      ++i;
    } else if (chunks_[i].key > other.chunks_[j].key) {
      ++j;
    } else {
      Chunk chunk = std::move(chunks_[i++]);
      AndInto(chunk, other.chunks_[j++]);
      if (chunk.cardinality > 0) kept.push_back(std::move(chunk));
    }
  }
  chunks_ = std::move(kept);
  RecomputeCardinality();
}

void TidBitmap::AndNot(const TidBitmap& other) {
  if (&other == this) {
    Clear();
    return;
  }
  if (chunks_.empty() || other.chunks_.empty()) return;
  std::vector<Chunk> kept;
  kept.reserve(chunks_.size());
  size_t j = 0;
  for (size_t i = 0; i < chunks_.size(); ++i) {
    while (j < other.chunks_.size() && other.chunks_[j].key < chunks_[i].key) {
      ++j;
    }
    Chunk chunk = std::move(chunks_[i]);
    if (j < other.chunks_.size() && other.chunks_[j].key == chunk.key) {
      AndNotInto(chunk, other.chunks_[j]);
    }
    if (chunk.cardinality > 0) kept.push_back(std::move(chunk));
  }
  chunks_ = std::move(kept);
  RecomputeCardinality();
}

bool TidBitmap::Intersects(const TidBitmap& other) const {
  size_t i = 0;
  size_t j = 0;
  while (i < chunks_.size() && j < other.chunks_.size()) {
    if (chunks_[i].key < other.chunks_[j].key) {
      ++i;
    } else if (chunks_[i].key > other.chunks_[j].key) {
      ++j;
    } else {
      if (ChunksIntersect(chunks_[i], other.chunks_[j])) return true;
      ++i;
      ++j;
    }
  }
  return false;
}

std::vector<int64_t> TidBitmap::ToVector() const {
  std::vector<int64_t> out;
  out.reserve(cardinality_);
  ForEach([&](int64_t tid) { out.push_back(tid); });
  return out;
}

size_t TidBitmap::SizeBytes() const {
  size_t bytes = chunks_.capacity() * sizeof(Chunk);
  for (const Chunk& c : chunks_) {
    bytes += c.array.capacity() * sizeof(uint16_t);
    bytes += c.words.capacity() * sizeof(uint64_t);
  }
  return bytes;
}

bool TidBitmap::operator==(const TidBitmap& other) const {
  if (cardinality_ != other.cardinality_) return false;
  if (chunks_.size() != other.chunks_.size()) return false;
  for (size_t i = 0; i < chunks_.size(); ++i) {
    const Chunk& a = chunks_[i];
    const Chunk& b = other.chunks_[i];
    // Representation is canonical (dense iff cardinality > kArrayMax), so
    // structural comparison is set comparison.
    if (a.key != b.key || a.cardinality != b.cardinality) return false;
    if (a.array != b.array || a.words != b.words) return false;
  }
  return true;
}

}  // namespace auditdb
