#ifndef AUDITDB_COMMON_RANDOM_H_
#define AUDITDB_COMMON_RANDOM_H_

#include <cstdint>

namespace auditdb {

/// Deterministic 64-bit PRNG (splitmix64). Used by workload generators and
/// property tests so every run is reproducible from a seed.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound); bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool OneIn(double p) { return UniformDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace auditdb

#endif  // AUDITDB_COMMON_RANDOM_H_
