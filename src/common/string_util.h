#ifndef AUDITDB_COMMON_STRING_UTIL_H_
#define AUDITDB_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace auditdb {

/// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Returns `text` with ASCII letters lowercased.
std::string ToLower(std::string_view text);

/// Returns `text` with ASCII letters uppercased.
std::string ToUpper(std::string_view text);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Whether `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace auditdb

#endif  // AUDITDB_COMMON_STRING_UTIL_H_
