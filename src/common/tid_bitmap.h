#ifndef AUDITDB_COMMON_TID_BITMAP_H_
#define AUDITDB_COMMON_TID_BITMAP_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace auditdb {

/// Compressed set of tuple ids (roaring-style).
///
/// The 64-bit tid space is chunked on the high 48 bits; each chunk holds
/// the low 16 bits of its members either as a sorted uint16 array (sparse,
/// <= kArrayMax entries) or as a packed 1024-word bitset (dense). And/Or/
/// AndNot/Intersects run word-wide on dense chunks and two-pointer on
/// sparse ones, so set algebra over millions of tids touches cache lines,
/// not hash buckets.
///
/// Tids are signed (`Tid` in storage/table.h is int64_t); internally each
/// tid is mapped through a sign-bit flip so that ascending unsigned chunk
/// order is ascending signed tid order. ForEach/ToVector therefore yield
/// tids in ascending order — the same order a std::set<Tid> iterates —
/// which keeps every rendering/merging surface byte-identical to the
/// set-based code paths.
///
/// Representation is canonical: a chunk is dense iff its cardinality
/// exceeds kArrayMax, so equal sets always compare equal structurally.
class TidBitmap {
 public:
  TidBitmap() = default;

  /// Inserts a tid (no-op if present). Ascending inserts hit an O(1)
  /// append fast path.
  void Add(int64_t tid);

  /// Inserts every tid in [begin, end) — equivalent to Add in a loop, but
  /// when the range lies entirely above the existing chunks (e.g. an
  /// all-rows bitmap built from empty) whole chunks are materialized
  /// word-at-a-time instead of bit-at-a-time.
  void AddRange(int64_t begin, int64_t end);

  bool Contains(int64_t tid) const;

  /// Number of tids in the set.
  uint64_t Cardinality() const { return cardinality_; }
  bool Empty() const { return cardinality_ == 0; }
  void Clear();

  /// In-place set algebra: this := this OP other.
  void Or(const TidBitmap& other);
  void And(const TidBitmap& other);
  void AndNot(const TidBitmap& other);

  /// True iff the two sets share at least one tid. Early-exits on the
  /// first overlapping word/value.
  bool Intersects(const TidBitmap& other) const;

  /// Calls fn(int64_t) for every tid in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Chunk& chunk : chunks_) {
      uint64_t base = chunk.key << kChunkBits;
      if (chunk.dense()) {
        for (uint32_t w = 0; w < kWordsPerChunk; ++w) {
          uint64_t bits = chunk.words[w];
          while (bits != 0) {
            uint32_t b = static_cast<uint32_t>(std::countr_zero(bits));
            fn(Decode(base | (static_cast<uint64_t>(w) * 64 + b)));
            bits &= bits - 1;
          }
        }
      } else {
        for (uint16_t low : chunk.array) fn(Decode(base | low));
      }
    }
  }

  /// All tids in ascending order.
  std::vector<int64_t> ToVector() const;

  /// Approximate heap footprint of the containers, for stats/benchmarks.
  size_t SizeBytes() const;

  bool operator==(const TidBitmap& other) const;
  bool operator!=(const TidBitmap& other) const { return !(*this == other); }

  /// Sparse chunks convert to packed bitsets above this cardinality
  /// (4096 * 2 bytes == 1024 * 8 bytes: the representations cross over).
  static constexpr uint32_t kArrayMax = 4096;

 private:
  static constexpr uint32_t kChunkBits = 16;
  static constexpr uint32_t kChunkSize = 1u << kChunkBits;
  static constexpr uint32_t kWordsPerChunk = kChunkSize / 64;

  struct Chunk {
    uint64_t key = 0;               // Encode(tid) >> 16
    std::vector<uint16_t> array;    // sorted low-16s; empty when dense
    std::vector<uint64_t> words;    // kWordsPerChunk words when dense
    uint32_t cardinality = 0;

    bool dense() const { return !words.empty(); }
    bool Probe(uint16_t low) const;
  };

  /// Sign-flip so unsigned order of the encoding matches signed tid order.
  static uint64_t Encode(int64_t tid) {
    return static_cast<uint64_t>(tid) ^ (1ull << 63);
  }
  static int64_t Decode(uint64_t u) {
    return static_cast<int64_t>(u ^ (1ull << 63));
  }

  static void Densify(Chunk& chunk);
  static void SparsifyIfSmall(Chunk& chunk);
  static void OrInto(Chunk& dst, const Chunk& src);
  static void AndInto(Chunk& dst, const Chunk& src);
  static void AndNotInto(Chunk& dst, const Chunk& src);
  static bool ChunksIntersect(const Chunk& a, const Chunk& b);

  Chunk* FindChunk(uint64_t key);
  const Chunk* FindChunk(uint64_t key) const;
  void RecomputeCardinality();

  std::vector<Chunk> chunks_;  // ascending by key; no empty chunks
  uint64_t cardinality_ = 0;
};

}  // namespace auditdb

#endif  // AUDITDB_COMMON_TID_BITMAP_H_
