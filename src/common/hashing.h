#ifndef AUDITDB_COMMON_HASHING_H_
#define AUDITDB_COMMON_HASHING_H_

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace auditdb {

/// Mixes `v` into `seed` (boost::hash_combine's mixer). Used to build the
/// composite-key hashes that let the audit layers keep membership lookups
/// in unordered containers.
inline size_t HashCombine(size_t seed, size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hash for std::vector<T> where std::hash<T> exists.
template <typename T>
struct VectorHash {
  size_t operator()(const std::vector<T>& vec) const {
    size_t h = vec.size();
    for (const auto& v : vec) h = HashCombine(h, std::hash<T>{}(v));
    return h;
  }
};

/// Hash for std::pair<A, B> given hashes H1 / H2 for the parts.
template <typename A, typename B, typename H1 = std::hash<A>,
          typename H2 = std::hash<B>>
struct PairHash {
  size_t operator()(const std::pair<A, B>& p) const {
    return HashCombine(H1{}(p.first), H2{}(p.second));
  }
};

}  // namespace auditdb

#endif  // AUDITDB_COMMON_HASHING_H_
