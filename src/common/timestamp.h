#ifndef AUDITDB_COMMON_TIMESTAMP_H_
#define AUDITDB_COMMON_TIMESTAMP_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace auditdb {

/// A point in time with microsecond precision, measured from the Unix epoch
/// (UTC). The paper's audit grammar writes timestamps as
/// `d/m/yyyy:hh-mm-ss` (e.g. `1/5/2004:13-00-00`); Parse accepts that format
/// plus the special token `now()`.
class Timestamp {
 public:
  /// The epoch (0 micros). Also used as "beginning of time" default.
  constexpr Timestamp() : micros_(0) {}
  constexpr explicit Timestamp(int64_t micros) : micros_(micros) {}

  /// Smallest / largest representable instants.
  static constexpr Timestamp Min() { return Timestamp(INT64_MIN); }
  static constexpr Timestamp Max() { return Timestamp(INT64_MAX); }

  /// Builds a timestamp from civil UTC fields. Fields are range-checked.
  static Result<Timestamp> FromCivil(int year, int month, int day, int hour,
                                     int minute, int second);

  /// Parses `d/m/yyyy:hh-mm-ss`. The time-of-day part is optional
  /// (`d/m/yyyy` means midnight). `now_value` substitutes for the literal
  /// token `now()`.
  static Result<Timestamp> Parse(const std::string& text, Timestamp now_value);

  /// Current wall-clock time.
  static Timestamp Now();

  /// Midnight (00:00:00) of this timestamp's UTC day. Used for the audit
  /// grammar's "current day" defaults.
  Timestamp StartOfDay() const;

  int64_t micros() const { return micros_; }

  Timestamp AddMicros(int64_t delta) const {
    return Timestamp(micros_ + delta);
  }
  Timestamp AddSeconds(int64_t s) const {
    return Timestamp(micros_ + s * 1000000);
  }

  /// Formats as `d/m/yyyy:hh-mm-ss` (the paper's notation).
  std::string ToString() const;

  friend bool operator==(Timestamp a, Timestamp b) {
    return a.micros_ == b.micros_;
  }
  friend bool operator!=(Timestamp a, Timestamp b) { return !(a == b); }
  friend bool operator<(Timestamp a, Timestamp b) {
    return a.micros_ < b.micros_;
  }
  friend bool operator<=(Timestamp a, Timestamp b) {
    return a.micros_ <= b.micros_;
  }
  friend bool operator>(Timestamp a, Timestamp b) { return b < a; }
  friend bool operator>=(Timestamp a, Timestamp b) { return b <= a; }

 private:
  int64_t micros_;
};

/// A closed time interval [start, end]; used for both DURING (query-log
/// filtering) and DATA-INTERVAL (data version selection).
struct TimeInterval {
  Timestamp start;
  Timestamp end;

  /// Whether t falls within [start, end].
  bool Contains(Timestamp t) const { return start <= t && t <= end; }
  /// Whether the interval denotes a single instant (a specific version).
  bool IsInstant() const { return start == end; }

  bool operator==(const TimeInterval& other) const {
    return start == other.start && end == other.end;
  }

  std::string ToString() const;
};

}  // namespace auditdb

#endif  // AUDITDB_COMMON_TIMESTAMP_H_
