#ifndef AUDITDB_COMMON_APPEND_LOG_H_
#define AUDITDB_COMMON_APPEND_LOG_H_

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <utility>

namespace auditdb {

/// Append-only storage with wait-free concurrent reads below the published
/// size. The MVCC read path needs the query log and the backlog to be
/// readable by snapshot-pinned audits while the writer keeps appending —
/// a std::vector cannot do that (growth reallocates under readers), so
/// entries live in fixed-size chunks that never move once allocated:
///
///   - Append() publishes the new entry with a release store of `size_`;
///     readers that observed size i are guaranteed entries [0, i) are
///     fully constructed and will never change (acquire load pairs with
///     the release store). Appends are serialized by an internal mutex
///     (writers are rare and already serialized by the callers' write
///     locks; the mutex just makes the container safe on its own).
///   - At(i) for i < size() is two dependent loads and never blocks.
///   - Entries are immutable once published; there is no erase.
///
/// The chunk directory is preallocated (kMaxChunks pointers, a few hundred
/// KiB) so readers never chase a growing directory. Exceeding the capacity
/// (kMaxChunks << kChunkBits entries — far beyond what fits in memory as
/// actual entries) aborts rather than corrupting readers.
template <typename T, size_t kChunkBits = 10, size_t kDirectoryBits = 16>
class AppendOnlyLog {
 public:
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;
  static constexpr size_t kChunkMask = kChunkSize - 1;
  static constexpr size_t kMaxChunks = size_t{1} << kDirectoryBits;

  AppendOnlyLog()
      : chunks_(new std::atomic<Chunk*>[kMaxChunks]) {
    for (size_t i = 0; i < kMaxChunks; ++i) {
      chunks_[i].store(nullptr, std::memory_order_relaxed);
    }
  }

  AppendOnlyLog(const AppendOnlyLog&) = delete;
  AppendOnlyLog& operator=(const AppendOnlyLog&) = delete;

  ~AppendOnlyLog() {
    for (size_t i = 0; i < kMaxChunks; ++i) {
      delete chunks_[i].load(std::memory_order_relaxed);
    }
  }

  /// Entries published so far. Everything below this index is immutable
  /// and safe to read concurrently with appends.
  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Entry `i`; the caller must have observed size() > i.
  const T& At(size_t i) const {
    return chunks_[i >> kChunkBits].load(std::memory_order_acquire)
        ->items[i & kChunkMask];
  }

  /// Appends and returns the entry's index.
  size_t Append(T value) {
    std::lock_guard<std::mutex> lock(append_mu_);
    size_t n = size_.load(std::memory_order_relaxed);
    size_t c = n >> kChunkBits;
    if (c >= kMaxChunks) {
      std::fprintf(stderr, "AppendOnlyLog: capacity exceeded (%zu entries)\n",
                   n);
      std::abort();
    }
    Chunk* chunk = chunks_[c].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new Chunk();
      chunks_[c].store(chunk, std::memory_order_release);
    }
    chunk->items[n & kChunkMask] = std::move(value);
    size_.store(n + 1, std::memory_order_release);
    return n;
  }

 private:
  struct Chunk {
    std::array<T, kChunkSize> items;
  };

  std::unique_ptr<std::atomic<Chunk*>[]> chunks_;
  std::atomic<size_t> size_{0};
  std::mutex append_mu_;
};

}  // namespace auditdb

#endif  // AUDITDB_COMMON_APPEND_LOG_H_
