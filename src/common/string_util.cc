#include "src/common/string_util.h"

#include <cctype>

namespace auditdb {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(unsigned(c)));
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(unsigned(c)));
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace auditdb
