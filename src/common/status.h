#ifndef AUDITDB_COMMON_STATUS_H_
#define AUDITDB_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace auditdb {

/// Error taxonomy used across the library. The library never throws across
/// public API boundaries; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kParseError,
  kTypeError,
  kUnimplemented,
  kInternal,
  /// The operation was cancelled by the caller (cooperative cancellation
  /// in the concurrent audit service).
  kCancelled,
  /// The operation's deadline passed before (or while) it ran.
  kDeadlineExceeded,
  /// A bounded resource (e.g. the service job queue) is full and the
  /// admission policy rejects rather than blocks.
  kResourceExhausted,
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the success path (no
/// allocation); errors carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error. On error, value() must not be called.
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return v;` from Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error status; must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

/// Propagates a non-OK Status from an expression.
#define AUDITDB_RETURN_IF_ERROR(expr)                 \
  do {                                                \
    ::auditdb::Status _auditdb_status = (expr);       \
    if (!_auditdb_status.ok()) return _auditdb_status; \
  } while (false)

/// Evaluates a Result-returning expression; on error returns the Status,
/// otherwise assigns the value to `lhs`.
#define AUDITDB_ASSIGN_OR_RETURN(lhs, expr)          \
  auto AUDITDB_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!AUDITDB_CONCAT_(_res_, __LINE__).ok())        \
    return AUDITDB_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(AUDITDB_CONCAT_(_res_, __LINE__)).value()

#define AUDITDB_CONCAT_INNER_(a, b) a##b
#define AUDITDB_CONCAT_(a, b) AUDITDB_CONCAT_INNER_(a, b)

}  // namespace auditdb

#endif  // AUDITDB_COMMON_STATUS_H_
