#ifndef AUDITDB_SERVICE_THREAD_POOL_H_
#define AUDITDB_SERVICE_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/service/bounded_queue.h"
#include "src/service/job.h"
#include "src/service/metrics.h"

namespace auditdb {
namespace service {

/// What Submit does when the job queue is full — the service's admission
/// control knob.
enum class AdmissionPolicy {
  /// Block the producer until a worker frees a slot (backpressure by
  /// stalling; nothing is lost).
  kBlock,
  /// Turn the job away with ResourceExhausted (backpressure by load
  /// shedding; the caller decides whether to retry, degrade, or run the
  /// work itself).
  kReject,
};

struct ThreadPoolOptions {
  /// Worker count; 0 = hardware_concurrency (min 1).
  size_t num_threads = 0;
  /// Bounded job-queue capacity (the backpressure buffer).
  size_t queue_capacity = 1024;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
};

/// A fixed-size worker pool over a bounded MPMC job queue. Workers run
/// jobs in FIFO order; Submit applies the admission policy; Shutdown
/// drains the queue and joins. Instrumented: jobs submitted / completed /
/// rejected, live and watermark queue depth, and queue-wait / run-time
/// histograms all land in the registry (an internal one unless the
/// caller shares theirs).
class ThreadPool {
 public:
  explicit ThreadPool(ThreadPoolOptions options = ThreadPoolOptions{},
                      MetricsRegistry* metrics = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }
  size_t queue_capacity() const { return queue_.capacity(); }
  size_t queue_depth() const { return queue_.depth(); }

  /// Enqueues a job under the configured admission policy. Errors:
  /// ResourceExhausted (kReject, queue full) or InvalidArgument (pool
  /// shut down / null job). The job will eventually run on some worker.
  Status Submit(std::function<void()> job);

  /// Admission-policy-independent non-blocking probe; ResourceExhausted
  /// when full.
  Status TrySubmit(std::function<void()> job);

  /// Closes the queue, lets workers drain remaining jobs, joins them.
  /// Idempotent; also run by the destructor.
  void Shutdown();

  /// Blocks until every accepted job has finished running (the graceful-
  /// drain hook: quiesce without tearing the pool down). The caller must
  /// stop submitting first, or the wait can race new arrivals.
  void WaitIdle();

  const MetricsRegistry& metrics() const { return *metrics_; }
  MetricsRegistry* mutable_metrics() { return metrics_; }

 private:
  struct QueuedJob {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  Status Enqueue(std::function<void()> job, bool allow_block);
  void WorkerLoop();
  void FinishJob();

  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;
  AdmissionPolicy admission_ = AdmissionPolicy::kBlock;
  BoundedQueue<QueuedJob> queue_;
  std::vector<std::thread> workers_;

  // Accepted-but-unfinished job count backing WaitIdle.
  mutable std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  size_t outstanding_ = 0;

  // Hot-path instrument pointers (stable for the registry's lifetime).
  Counter* jobs_submitted_;
  Counter* jobs_completed_;
  Counter* jobs_rejected_;
  Gauge* depth_gauge_;
  Histogram* wait_micros_;
  Histogram* run_micros_;
};

/// Fans `tasks` out to the pool and blocks until all are done; slot i of
/// the returned vector is task i's Status, so results merge
/// deterministically no matter the completion order. Each task first
/// checks `context` (deadline / cancellation) and is skipped with the
/// corresponding error once the context expires. If the pool's admission
/// policy rejects a task (queue full under kReject), the caller runs it
/// inline — backpressure slows the producer down, but every task still
/// executes exactly once. Safe only from threads outside the pool
/// (a worker fanning out to its own pool could deadlock on a full queue).
std::vector<Status> RunBatch(ThreadPool* pool,
                             std::vector<std::function<Status()>> tasks,
                             const JobContext& context = JobContext{});

}  // namespace service
}  // namespace auditdb

#endif  // AUDITDB_SERVICE_THREAD_POOL_H_
