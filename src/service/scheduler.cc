#include "src/service/scheduler.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <optional>
#include <utility>

#include "src/audit/audit_stages.h"
#include "src/audit/candidate.h"
#include "src/backlog/snapshot.h"

namespace auditdb {
namespace service {

using audit::AuditExpression;
using audit::AuditOptions;
using audit::AuditReport;
using audit::QueryVerdict;
using audit::ScreenedCandidate;
using audit::StaticScreenResult;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

uint64_t MicrosSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

/// Splits [0, n) into contiguous [begin, end) ranges of at most `chunk`.
std::vector<std::pair<size_t, size_t>> Chunks(size_t n, size_t chunk) {
  if (chunk == 0) chunk = 1;
  std::vector<std::pair<size_t, size_t>> out;
  for (size_t begin = 0; begin < n; begin += chunk) {
    out.emplace_back(begin, std::min(begin + chunk, n));
  }
  return out;
}

/// Shrinks a configured shard size so a stage yields ~4 shards per
/// worker; boundaries never affect output, only load balance.
size_t EffectiveShard(size_t n, size_t configured, size_t threads) {
  if (n == 0) return 1;
  size_t target = (n + 4 * threads - 1) / (4 * threads);
  return std::max<size_t>(std::min(configured, std::max<size_t>(target, 1)),
                          1);
}

}  // namespace

AuditScheduler::AuditScheduler(ThreadPool* pool, SchedulerOptions options)
    : pool_(pool), options_(std::move(options)) {
  MetricsRegistry* metrics = pool_->mutable_metrics();
  runs_ = metrics->counter("scheduler.runs");
  shards_dispatched_ = metrics->counter("scheduler.shards_dispatched");
  shards_failed_ = metrics->counter("scheduler.shards_failed");
  static_stage_micros_ = metrics->histogram("scheduler.static_stage_micros");
  exec_stage_micros_ = metrics->histogram("scheduler.exec_stage_micros");
  check_stage_micros_ = metrics->histogram("scheduler.check_stage_micros");
}

Result<AuditReport> AuditScheduler::Run(const Database& db,
                                        const Backlog& backlog,
                                        const QueryLog& log,
                                        const std::string& audit_text,
                                        Timestamp now,
                                        const AuditOptions& options,
                                        std::vector<ShardFailure>* failures)
    const {
  auto expr = audit::ParseAudit(audit_text, now);
  if (!expr.ok()) return expr.status();
  return Run(db, backlog, log, *expr, options, failures);
}

Result<AuditReport> AuditScheduler::Run(const Database& db,
                                        const Backlog& backlog,
                                        const QueryLog& log,
                                        const AuditExpression& parsed,
                                        const AuditOptions& options,
                                        std::vector<ShardFailure>* failures)
    const {
  // One consistent pin for the whole parallel run: every shard reads the
  // pinned table versions and log/backlog prefixes, so concurrent
  // writers never skew shard boundaries or results. Capture order
  // matters (prefixes before the view) — see AuditPin.
  audit::AuditPin pin;
  pin.log_size = log.size();
  pin.backlog_events = backlog.event_count();
  pin.db = db.Snapshot();
  return RunPinned(db, backlog, log, parsed, pin, options, failures);
}

Result<AuditReport> AuditScheduler::RunPinned(
    const Database& db, const Backlog& backlog, const QueryLog& log,
    const AuditExpression& parsed, const audit::AuditPin& pin,
    const AuditOptions& options, std::vector<ShardFailure>* failures) const {
  runs_->Increment();
  if (failures != nullptr) failures->clear();
  auto record_failure = [this, failures](const char* stage, size_t shard,
                                         Status status) {
    shards_failed_->Increment();
    if (failures != nullptr) {
      failures->push_back(ShardFailure{stage, shard, std::move(status)});
    }
  };

  AuditExpression expr = parsed.Clone();

  AUDITDB_RETURN_IF_ERROR(expr.Qualify(pin.db.catalog()));

  AuditReport report;
  report.expression = expr.ToString();
  report.num_logged = pin.log_size;

  JobContext ctx = JobContext::WithDeadlineAfter(options_.job_deadline);
  ctx.cancel = options_.cancel;

  const size_t threads = std::max<size_t>(pool_->num_threads(), 1);

  // --- Static stage: admission + parse + candidacy, one job per log
  // range; the target-view job (independent of the candidates) rides in
  // the same batch so it overlaps the screening.
  auto stage_start = Clock::now();
  auto static_ranges = Chunks(
      pin.log_size,
      EffectiveShard(pin.log_size, options_.static_shard_size, threads));
  std::vector<StaticScreenResult> static_results(static_ranges.size());
  std::unique_ptr<Result<audit::TargetView>> view_result;
  double view_seconds = 0;

  // Same decision-cache context as the serial auditor; the cache is
  // internally synchronized, so shards share it safely.
  audit::CandidateCacheContext cache_ctx;
  cache_ctx.cache = options.cache;
  cache_ctx.expr_hash = std::hash<std::string>{}(report.expression);
  cache_ctx.state_key = options.cache_global_state_keys
                            ? db.mutation_count()
                            : pin.db.catalog_epoch();
  cache_ctx.shape_dedup = options.shape_dedup;

  std::vector<std::function<Status()>> tasks;
  tasks.reserve(static_ranges.size() + 1);
  for (size_t i = 0; i < static_ranges.size(); ++i) {
    auto [begin, end] = static_ranges[i];
    tasks.push_back([&, i, begin, end] {
      static_results[i] =
          StaticScreenRange(expr, log, pin.db.catalog(), options.candidate,
                            begin, end, cache_ctx);
      return Status::Ok();
    });
  }
  const size_t view_task = tasks.size();
  if (!options.static_only) {
    tasks.push_back([&] {
      auto start = Clock::now();
      auto view = audit::ComputeTargetViewOverVersions(
          expr, backlog, options.exec, pin.backlog_events);
      view_seconds = SecondsSince(start);
      Status status = view.ok() ? Status::Ok() : view.status();
      view_result =
          std::make_unique<Result<audit::TargetView>>(std::move(view));
      return status;
    });
  }
  shards_dispatched_->Increment(tasks.size());
  auto statuses = RunBatch(pool_, std::move(tasks), ctx);

  // Merge static shards in log order.
  std::vector<ScreenedCandidate> candidates;
  for (size_t i = 0; i < static_ranges.size(); ++i) {
    if (!statuses[i].ok()) {
      if (options_.fail_fast) return statuses[i];
      record_failure("static", i, statuses[i]);
      // Degrade: this range's queries are reported unscreened.
      for (size_t j = static_ranges[i].first; j < static_ranges[i].second;
           ++j) {
        QueryVerdict verdict;
        verdict.query_id = log.Entry(j).id;
        report.verdicts.push_back(verdict);
      }
      continue;
    }
    StaticScreenResult& shard = static_results[i];
    report.num_admitted += shard.num_admitted;
    std::move(shard.verdicts.begin(), shard.verdicts.end(),
              std::back_inserter(report.verdicts));
    std::move(shard.candidates.begin(), shard.candidates.end(),
              std::back_inserter(candidates));
  }
  report.num_candidates = candidates.size();
  report.static_seconds = SecondsSince(stage_start);
  static_stage_micros_->Observe(MicrosSince(stage_start));

  // Data-independent mode: decide from the static phase alone.
  if (options.static_only) {
    std::vector<const sql::SelectStatement*> stmts;
    stmts.reserve(candidates.size());
    for (const auto& c : candidates) stmts.push_back(c.stmt.get());
    audit::StaticOnlyBatchVerdict(expr, pin.db.catalog(), stmts, &report);
    if (options.per_query_verdicts) {
      auto chunks = Chunks(
          candidates.size(),
          EffectiveShard(candidates.size(), options_.exec_shard_size,
                         threads));
      std::vector<char> alone(candidates.size(), 0);
      std::vector<char> errored(candidates.size(), 0);
      std::vector<std::function<Status()>> check_tasks;
      check_tasks.reserve(chunks.size());
      for (auto [begin, end] : chunks) {
        check_tasks.push_back([&, begin, end] {
          for (size_t c = begin; c < end; ++c) {
            AUDITDB_RETURN_IF_ERROR(ctx.Check());
            auto single = audit::IsSingleCandidate(
                *candidates[c].stmt, expr, pin.db.catalog(),
                options.candidate);
            // A failed check proves nothing — flag the error instead of
            // silently reporting the query as not suspicious (identical
            // to the serial auditor's static-only path).
            if (!single.ok()) {
              errored[c] = 1;
            } else {
              alone[c] = *single;
            }
          }
          return Status::Ok();
        });
      }
      shards_dispatched_->Increment(check_tasks.size());
      auto check_statuses = RunBatch(pool_, std::move(check_tasks), ctx);
      for (size_t i = 0; i < chunks.size(); ++i) {
        if (!check_statuses[i].ok()) {
          if (options_.fail_fast) return check_statuses[i];
          record_failure("static-check", i, check_statuses[i]);
          continue;
        }
        for (size_t c = chunks[i].first; c < chunks[i].second; ++c) {
          QueryVerdict& verdict = report.verdicts[candidates[c].log_index];
          if (errored[c] != 0) {
            verdict.error = true;
          } else {
            verdict.suspicious_alone = alone[c] != 0;
          }
        }
      }
    }
    return report;
  }

  // Target view (computed concurrently above).
  if (!statuses[view_task].ok()) {
    if (options_.fail_fast) return statuses[view_task];
    record_failure("view", 0, statuses[view_task]);
    return report;  // no data-dependent verdict possible
  }
  const audit::TargetView& view = view_result->value();
  report.target_view_size = view.size();
  report.view_seconds = view_seconds;
  auto schemes = audit::BuildSchemes(expr);
  report.num_schemes = schemes.size();

  // --- Exec stage: shard along the database-version axis. Snapshot keys
  // (event counts) group candidates that saw the same state; each
  // distinct version is reconstructed once, in parallel, then candidate
  // ranges re-execute against the shared read-only snapshots.
  stage_start = Clock::now();
  const size_t exec_shard =
      EffectiveShard(candidates.size(), options_.exec_shard_size, threads);
  std::vector<size_t> keys(candidates.size(), 0);
  std::vector<char> dropped(candidates.size(), 0);
  {
    auto chunks = Chunks(candidates.size(), exec_shard);
    std::vector<std::function<Status()>> key_tasks;
    key_tasks.reserve(chunks.size());
    for (auto [begin, end] : chunks) {
      key_tasks.push_back([&, begin, end] {
        for (size_t c = begin; c < end; ++c) {
          AUDITDB_RETURN_IF_ERROR(ctx.Check());
          keys[c] = backlog.EventCountAt(
              log.Entry(candidates[c].log_index).timestamp,
              pin.backlog_events);
        }
        return Status::Ok();
      });
    }
    shards_dispatched_->Increment(key_tasks.size());
    auto key_statuses = RunBatch(pool_, std::move(key_tasks), ctx);
    for (size_t i = 0; i < chunks.size(); ++i) {
      if (key_statuses[i].ok()) continue;
      if (options_.fail_fast) return key_statuses[i];
      record_failure("version-key", i, key_statuses[i]);
      for (size_t c = chunks[i].first; c < chunks[i].second; ++c) {
        dropped[c] = 1;
      }
    }
  }

  // One snapshot job per distinct database version.
  std::map<size_t, size_t> slot_of_key;
  std::vector<Timestamp> slot_time;
  for (size_t c = 0; c < candidates.size(); ++c) {
    if (dropped[c] != 0) continue;
    if (slot_of_key.emplace(keys[c], slot_time.size()).second) {
      slot_time.push_back(log.Entry(candidates[c].log_index).timestamp);
    }
  }
  std::vector<std::unique_ptr<Snapshot>> snapshots(slot_time.size());
  {
    std::vector<std::function<Status()>> snapshot_tasks;
    snapshot_tasks.reserve(slot_time.size());
    for (size_t s = 0; s < slot_time.size(); ++s) {
      snapshot_tasks.push_back([&, s] {
        auto snapshot = backlog.SnapshotAt(slot_time[s], pin.backlog_events);
        if (!snapshot.ok()) return snapshot.status();
        snapshots[s] = std::make_unique<Snapshot>(std::move(*snapshot));
        return Status::Ok();
      });
    }
    shards_dispatched_->Increment(snapshot_tasks.size());
    auto snapshot_statuses = RunBatch(pool_, std::move(snapshot_tasks), ctx);
    for (size_t s = 0; s < snapshot_statuses.size(); ++s) {
      if (snapshot_statuses[s].ok()) continue;
      if (options_.fail_fast) return snapshot_statuses[s];
      record_failure("snapshot", s, snapshot_statuses[s]);
      for (size_t c = 0; c < candidates.size(); ++c) {
        if (dropped[c] == 0 && slot_of_key[keys[c]] == s) dropped[c] = 1;
      }
    }
  }

  // Candidate re-execution against the shared snapshots.
  std::vector<std::optional<AccessProfile>> profile_slots(candidates.size());
  {
    auto chunks = Chunks(candidates.size(), exec_shard);
    std::vector<std::function<Status()>> exec_tasks;
    exec_tasks.reserve(chunks.size());
    for (auto [begin, end] : chunks) {
      exec_tasks.push_back([&, begin, end] {
        for (size_t c = begin; c < end; ++c) {
          AUDITDB_RETURN_IF_ERROR(ctx.Check());
          if (dropped[c] != 0) continue;
          const Snapshot& snapshot = *snapshots[slot_of_key[keys[c]]];
          auto profile = ComputeAccessProfile(*candidates[c].stmt,
                                              snapshot.View(), options.exec);
          // Execution-time failure (e.g. type error): skip this query
          // but keep auditing the rest — same as the serial auditor.
          if (profile.ok()) profile_slots[c] = std::move(*profile);
        }
        return Status::Ok();
      });
    }
    shards_dispatched_->Increment(exec_tasks.size());
    auto exec_statuses = RunBatch(pool_, std::move(exec_tasks), ctx);
    for (size_t i = 0; i < chunks.size(); ++i) {
      if (exec_statuses[i].ok()) continue;
      if (options_.fail_fast) return exec_statuses[i];
      record_failure("exec", i, exec_statuses[i]);
      for (size_t c = chunks[i].first; c < chunks[i].second; ++c) {
        profile_slots[c].reset();
      }
    }
  }

  // Merge profiles in candidate (= log) order.
  std::vector<AccessProfile> profiles;
  std::vector<int64_t> profile_ids;
  for (size_t c = 0; c < candidates.size(); ++c) {
    if (!profile_slots[c].has_value()) continue;
    profiles.push_back(std::move(*profile_slots[c]));
    profile_ids.push_back(log.Entry(candidates[c].log_index).id);
    ++report.num_executed;
  }
  report.exec_seconds = SecondsSince(stage_start);
  exec_stage_micros_->Observe(MicrosSince(stage_start));

  // --- Check stage: the batch verdict is one (cheap) serial call; the
  // per-query singleton checks fan out per candidate range; greedy
  // minimization stays serial because its drop order is part of the
  // output contract.
  stage_start = Clock::now();
  std::vector<const AccessProfile*> batch;
  batch.reserve(profiles.size());
  for (const auto& p : profiles) batch.push_back(&p);
  auto batch_result = audit::CheckBatchSuspicion(view, schemes,
                                                 expr.threshold,
                                                 expr.indispensable, batch,
                                                 options.suspicion);
  if (!batch_result.ok()) return batch_result.status();
  report.batch_suspicious = batch_result->suspicious;
  report.evidence = batch_result->Describe(view, schemes);

  if (options.per_query_verdicts && !profiles.empty()) {
    std::map<int64_t, size_t> verdict_of_id;
    for (size_t v = 0; v < report.verdicts.size(); ++v) {
      verdict_of_id[report.verdicts[v].query_id] = v;
    }
    std::vector<char> alone(profiles.size(), 0);
    auto chunks = Chunks(
        profiles.size(),
        EffectiveShard(profiles.size(), options_.exec_shard_size, threads));
    std::vector<std::function<Status()>> check_tasks;
    check_tasks.reserve(chunks.size());
    for (auto [begin, end] : chunks) {
      check_tasks.push_back([&, begin, end] {
        for (size_t p = begin; p < end; ++p) {
          AUDITDB_RETURN_IF_ERROR(ctx.Check());
          std::vector<const AccessProfile*> single{&profiles[p]};
          auto single_result = audit::CheckBatchSuspicion(
              view, schemes, expr.threshold, expr.indispensable, single,
              options.suspicion);
          if (!single_result.ok()) return single_result.status();
          alone[p] = single_result->suspicious;
        }
        return Status::Ok();
      });
    }
    shards_dispatched_->Increment(check_tasks.size());
    auto check_statuses = RunBatch(pool_, std::move(check_tasks), ctx);
    for (size_t i = 0; i < chunks.size(); ++i) {
      if (!check_statuses[i].ok()) {
        if (options_.fail_fast) return check_statuses[i];
        record_failure("check", i, check_statuses[i]);
        continue;
      }
      for (size_t p = chunks[i].first; p < chunks[i].second; ++p) {
        auto it = verdict_of_id.find(profile_ids[p]);
        if (it != verdict_of_id.end()) {
          report.verdicts[it->second].suspicious_alone = alone[p] != 0;
        }
      }
    }
  }

  if (options.minimize_batch && report.batch_suspicious) {
    auto minimal = audit::MinimizeBatch(
        view, schemes, expr, profiles, profile_ids, options.suspicion);
    if (!minimal.ok()) return minimal.status();
    report.minimal_batch = std::move(*minimal);
  }
  report.check_seconds = SecondsSince(stage_start);
  check_stage_micros_->Observe(MicrosSince(stage_start));

  return report;
}

std::vector<AuditScheduler::ExpressionScreening> AuditScheduler::ScreenLibrary(
    const Database& db, const Backlog& backlog, const QueryLog& log,
    const audit::ExpressionLibrary& library,
    const AuditOptions& options) const {
  // One pin for the whole screen: every library expression audits the
  // same consistent cut, and no shard blocks writers while it runs.
  audit::Auditor pinner(&db, &backlog, &log);
  return ScreenLibraryPinned(db, backlog, log, library, pinner.Pin(),
                             options);
}

std::vector<AuditScheduler::ExpressionScreening>
AuditScheduler::ScreenLibraryPinned(const Database& db,
                                    const Backlog& backlog,
                                    const QueryLog& log,
                                    const audit::ExpressionLibrary& library,
                                    const audit::AuditPin& pin,
                                    const AuditOptions& options) const {
  JobContext ctx = JobContext::WithDeadlineAfter(options_.job_deadline);
  ctx.cancel = options_.cancel;

  auto ids = library.ids();
  std::vector<ExpressionScreening> out(ids.size());

  audit::Auditor auditor(&db, &backlog, &log);

  std::vector<std::function<Status()>> tasks;
  tasks.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    out[i].expression_id = ids[i];
    tasks.push_back([&, i] {
      const AuditExpression* expr = library.Get(ids[i]);
      if (expr == nullptr) {
        out[i].status = Status::NotFound("expression evicted mid-screen");
        return out[i].status;
      }
      auto report = auditor.AuditPinned(*expr, options, pin);
      if (!report.ok()) {
        out[i].status = report.status();
        return out[i].status;
      }
      out[i].report = std::move(*report);
      return Status::Ok();
    });
  }
  shards_dispatched_->Increment(tasks.size());
  auto statuses = RunBatch(pool_, std::move(tasks), ctx);
  for (size_t i = 0; i < statuses.size(); ++i) {
    if (!statuses[i].ok()) {
      shards_failed_->Increment();
      out[i].status = statuses[i];
    }
  }
  return out;
}

}  // namespace service

namespace audit {

Result<AuditReport> Auditor::AuditParallel(const AuditExpression& expr,
                                           service::AuditScheduler* scheduler,
                                           const AuditOptions& options)
    const {
  if (scheduler == nullptr) {
    return Status::InvalidArgument("null scheduler");
  }
  return scheduler->Run(*db_, *backlog_, *log_, expr, options);
}

}  // namespace audit
}  // namespace auditdb
