#ifndef AUDITDB_SERVICE_AUDIT_SERVICE_H_
#define AUDITDB_SERVICE_AUDIT_SERVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/service/scheduler.h"

namespace auditdb {
namespace service {

struct AuditServiceOptions {
  ThreadPoolOptions pool;
  SchedulerOptions scheduler;
  /// Memoize static per-(query, expression) decisions across audit runs
  /// in a service-owned decision cache (audit_index.h). Ablation knob:
  /// results are byte-identical with it off.
  bool decision_cache_enabled = true;
  audit::DecisionCacheOptions decision_cache;
};

/// The deployable front door of concurrent auditing: owns a worker pool,
/// a scheduler, and a metrics registry, bound to one (database, backlog,
/// query log) triple. Intended lifecycle: construct once, serve many
/// audit runs, read metrics, destroy (joins workers).
class AuditService {
 public:
  /// All three stores must outlive the service.
  AuditService(const Database* db, const Backlog* backlog,
               const QueryLog* log,
               AuditServiceOptions options = AuditServiceOptions{});

  /// Parses (anchored at `now`) and audits in parallel. Identical output
  /// (AuditReport::CanonicalString) to the serial Auditor.
  Result<audit::AuditReport> Audit(const std::string& audit_text,
                                   Timestamp now,
                                   const audit::AuditOptions& options =
                                       audit::AuditOptions{},
                                   std::vector<ShardFailure>* failures =
                                       nullptr);

  /// Audits a parsed expression in parallel.
  Result<audit::AuditReport> Audit(const audit::AuditExpression& expr,
                                   const audit::AuditOptions& options =
                                       audit::AuditOptions{},
                                   std::vector<ShardFailure>* failures =
                                       nullptr);

  /// Screens every member of a standing-expression library against the
  /// bound log, one job per expression.
  std::vector<AuditScheduler::ExpressionScreening> ScreenLibrary(
      const audit::ExpressionLibrary& library,
      const audit::AuditOptions& options = audit::AuditOptions{});

  /// Captures a consistent pin of the bound stores: log and backlog
  /// prefix lengths plus a pinned snapshot of every table's current
  /// version. Cheap (no copies); the caller decides what lock, if any,
  /// makes the capture atomic against external state transitions.
  audit::AuditPin Pin() const;

  /// Audits against a caller-captured pin; the run never reads live
  /// state, so it can proceed with no external lock held while writers
  /// commit concurrently.
  Result<audit::AuditReport> AuditPinned(const std::string& audit_text,
                                         Timestamp now,
                                         const audit::AuditPin& pin,
                                         const audit::AuditOptions& options =
                                             audit::AuditOptions{},
                                         std::vector<ShardFailure>* failures =
                                             nullptr);

  /// ScreenLibrary against a caller-captured pin (see AuditPinned).
  std::vector<AuditScheduler::ExpressionScreening> ScreenLibraryPinned(
      const audit::ExpressionLibrary& library, const audit::AuditPin& pin,
      const audit::AuditOptions& options = audit::AuditOptions{});

  size_t num_threads() const { return pool_.num_threads(); }
  const MetricsRegistry& metrics() const { return metrics_; }
  /// Counters, gauges and latency histograms of the pool and scheduler
  /// as one JSON object.
  std::string MetricsJson() const { return metrics_.ToJson(); }

  ThreadPool* pool() { return &pool_; }
  AuditScheduler* scheduler() { return &scheduler_; }

  /// The service-owned decision cache; null when disabled. Shared_ptr so
  /// a database change listener can keep invalidating it safely even if
  /// the service is destroyed first.
  const std::shared_ptr<audit::DecisionCache>& decision_cache() const {
    return cache_;
  }

 private:
  /// `options` with the service cache injected (unless the caller bound
  /// its own, or the cache is disabled).
  audit::AuditOptions WithCache(const audit::AuditOptions& options) const;

  const Database* db_;
  const Backlog* backlog_;
  const QueryLog* log_;
  MetricsRegistry metrics_;
  ThreadPool pool_;
  AuditScheduler scheduler_;
  std::shared_ptr<audit::DecisionCache> cache_;
};

}  // namespace service
}  // namespace auditdb

#endif  // AUDITDB_SERVICE_AUDIT_SERVICE_H_
