#ifndef AUDITDB_SERVICE_AUDIT_SERVICE_H_
#define AUDITDB_SERVICE_AUDIT_SERVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/service/scheduler.h"

namespace auditdb {
namespace service {

struct AuditServiceOptions {
  ThreadPoolOptions pool;
  SchedulerOptions scheduler;
};

/// The deployable front door of concurrent auditing: owns a worker pool,
/// a scheduler, and a metrics registry, bound to one (database, backlog,
/// query log) triple. Intended lifecycle: construct once, serve many
/// audit runs, read metrics, destroy (joins workers).
class AuditService {
 public:
  /// All three stores must outlive the service.
  AuditService(const Database* db, const Backlog* backlog,
               const QueryLog* log,
               AuditServiceOptions options = AuditServiceOptions{});

  /// Parses (anchored at `now`) and audits in parallel. Identical output
  /// (AuditReport::CanonicalString) to the serial Auditor.
  Result<audit::AuditReport> Audit(const std::string& audit_text,
                                   Timestamp now,
                                   const audit::AuditOptions& options =
                                       audit::AuditOptions{},
                                   std::vector<ShardFailure>* failures =
                                       nullptr);

  /// Audits a parsed expression in parallel.
  Result<audit::AuditReport> Audit(const audit::AuditExpression& expr,
                                   const audit::AuditOptions& options =
                                       audit::AuditOptions{},
                                   std::vector<ShardFailure>* failures =
                                       nullptr);

  /// Screens every member of a standing-expression library against the
  /// bound log, one job per expression.
  std::vector<AuditScheduler::ExpressionScreening> ScreenLibrary(
      const audit::ExpressionLibrary& library,
      const audit::AuditOptions& options = audit::AuditOptions{});

  size_t num_threads() const { return pool_.num_threads(); }
  const MetricsRegistry& metrics() const { return metrics_; }
  /// Counters, gauges and latency histograms of the pool and scheduler
  /// as one JSON object.
  std::string MetricsJson() const { return metrics_.ToJson(); }

  ThreadPool* pool() { return &pool_; }
  AuditScheduler* scheduler() { return &scheduler_; }

 private:
  const Database* db_;
  const Backlog* backlog_;
  const QueryLog* log_;
  MetricsRegistry metrics_;
  ThreadPool pool_;
  AuditScheduler scheduler_;
};

}  // namespace service
}  // namespace auditdb

#endif  // AUDITDB_SERVICE_AUDIT_SERVICE_H_
