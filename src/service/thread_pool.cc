#include "src/service/thread_pool.h"

#include <condition_variable>
#include <mutex>

namespace auditdb {
namespace service {

namespace {

uint64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

ThreadPool::ThreadPool(ThreadPoolOptions options, MetricsRegistry* metrics)
    : owned_metrics_(metrics == nullptr
                         ? std::make_unique<MetricsRegistry>()
                         : nullptr),
      metrics_(metrics == nullptr ? owned_metrics_.get() : metrics),
      queue_(options.queue_capacity) {
  admission_ = options.admission;
  jobs_submitted_ = metrics_->counter("pool.jobs_submitted");
  jobs_completed_ = metrics_->counter("pool.jobs_completed");
  jobs_rejected_ = metrics_->counter("pool.jobs_rejected");
  depth_gauge_ = metrics_->gauge("pool.queue_depth");
  wait_micros_ = metrics_->histogram("pool.job_wait_micros");
  run_micros_ = metrics_->histogram("pool.job_run_micros");

  size_t n = options.num_threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

Status ThreadPool::Submit(std::function<void()> job) {
  return Enqueue(std::move(job),
                 /*allow_block=*/admission_ == AdmissionPolicy::kBlock);
}

Status ThreadPool::TrySubmit(std::function<void()> job) {
  return Enqueue(std::move(job), /*allow_block=*/false);
}

Status ThreadPool::Enqueue(std::function<void()> job, bool allow_block) {
  if (job == nullptr) {
    return Status::InvalidArgument("null job");
  }
  if (queue_.closed()) {
    return Status::InvalidArgument("thread pool is shut down");
  }
  QueuedJob queued{std::move(job), std::chrono::steady_clock::now()};
  // Count before the push: once a job is visible to a worker it must
  // already be outstanding, or WaitIdle could slip between.
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    ++outstanding_;
  }
  bool accepted = allow_block ? queue_.Push(std::move(queued))
                              : queue_.TryPush(std::move(queued));
  if (!accepted) {
    FinishJob();
    if (queue_.closed()) {
      return Status::InvalidArgument("thread pool is shut down");
    }
    jobs_rejected_->Increment();
    return Status::ResourceExhausted(
        "job queue full (capacity " + std::to_string(queue_.capacity()) +
        ")");
  }
  jobs_submitted_->Increment();
  depth_gauge_->Set(static_cast<int64_t>(queue_.depth()));
  return Status::Ok();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    auto queued = queue_.Pop();
    if (!queued.has_value()) return;  // closed and drained
    depth_gauge_->Set(static_cast<int64_t>(queue_.depth()));
    wait_micros_->Observe(MicrosSince(queued->enqueued));
    auto run_start = std::chrono::steady_clock::now();
    queued->fn();
    run_micros_->Observe(MicrosSince(run_start));
    jobs_completed_->Increment();
    FinishJob();
  }
}

void ThreadPool::FinishJob() {
  std::lock_guard<std::mutex> lock(idle_mutex_);
  if (--outstanding_ == 0) idle_cv_.notify_all();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

void ThreadPool::Shutdown() {
  queue_.Close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::vector<Status> RunBatch(ThreadPool* pool,
                             std::vector<std::function<Status()>> tasks,
                             const JobContext& context) {
  struct BatchState {
    std::mutex mutex;
    std::condition_variable done_cv;
    size_t remaining;
    std::vector<Status> statuses;
  };
  auto state = std::make_shared<BatchState>();
  state->remaining = tasks.size();
  state->statuses.resize(tasks.size());
  if (tasks.empty()) return {};

  auto run_one = [state, context](size_t i,
                                  const std::function<Status()>& task) {
    Status status = context.Check();
    if (status.ok()) status = task();
    std::lock_guard<std::mutex> lock(state->mutex);
    state->statuses[i] = std::move(status);
    if (--state->remaining == 0) state->done_cv.notify_all();
  };

  for (size_t i = 0; i < tasks.size(); ++i) {
    auto task = std::move(tasks[i]);
    Status submitted =
        pool->Submit([run_one, i, task] { run_one(i, task); });
    if (!submitted.ok()) {
      // Queue full (kReject) or pool unusable: degrade to inline
      // execution so the batch always completes.
      run_one(i, task);
    }
  }

  std::unique_lock<std::mutex> lock(state->mutex);
  state->done_cv.wait(lock, [&state] { return state->remaining == 0; });
  return std::move(state->statuses);
}

}  // namespace service
}  // namespace auditdb
