#ifndef AUDITDB_SERVICE_JOB_H_
#define AUDITDB_SERVICE_JOB_H_

#include <atomic>
#include <chrono>
#include <memory>

#include "src/common/status.h"

namespace auditdb {
namespace service {

/// Cooperative cancellation flag shared by every job of one audit run.
/// Cancel() is sticky; workers poll between (and long stages within)
/// jobs, so a cancelled run stops quickly without tearing down threads.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Execution context a scheduler job runs under: an optional wall-clock
/// deadline and an optional shared cancellation token. A job whose
/// context is expired or cancelled is not run; it completes with the
/// corresponding error so one late or poisoned shard degrades the run
/// instead of crashing or wedging it.
struct JobContext {
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;
  std::shared_ptr<CancellationToken> cancel;

  static JobContext WithDeadlineAfter(std::chrono::milliseconds budget) {
    JobContext ctx;
    if (budget.count() > 0) {
      ctx.deadline = std::chrono::steady_clock::now() + budget;
      ctx.has_deadline = true;
    }
    return ctx;
  }

  /// Ok while the job may keep running; Cancelled / DeadlineExceeded
  /// once it should stop.
  Status Check() const {
    if (cancel != nullptr && cancel->cancelled()) {
      return Status::Cancelled("audit run cancelled");
    }
    if (has_deadline && std::chrono::steady_clock::now() > deadline) {
      return Status::DeadlineExceeded("job deadline passed");
    }
    return Status::Ok();
  }
};

}  // namespace service
}  // namespace auditdb

#endif  // AUDITDB_SERVICE_JOB_H_
