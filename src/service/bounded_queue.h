#ifndef AUDITDB_SERVICE_BOUNDED_QUEUE_H_
#define AUDITDB_SERVICE_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace auditdb {
namespace service {

/// A bounded multi-producer / multi-consumer FIFO queue — the admission
/// point of the audit service. Capacity is fixed at construction; when the
/// queue is full, producers either block (Push) or are turned away
/// (TryPush), which is how backpressure propagates to callers. Close()
/// wakes everyone: pending Push calls give up, consumers drain the
/// remaining items and then see end-of-stream.
///
/// The queue also tracks its all-time high watermark, the signal the
/// service's admission control and metrics report on.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is space, then enqueues. Returns false iff the
  /// queue was closed (item not enqueued).
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    Enqueue(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Enqueues without blocking. Returns false when full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      Enqueue(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and*
  /// drained; nullopt means end-of-stream.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue: producers fail fast, consumers drain what is left.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  /// Largest depth ever observed (for the queue-depth watermark metric).
  size_t high_watermark() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return high_watermark_;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  void Enqueue(T item) {
    items_.push_back(std::move(item));
    if (items_.size() > high_watermark_) high_watermark_ = items_.size();
  }

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  size_t high_watermark_ = 0;
  bool closed_ = false;
};

}  // namespace service
}  // namespace auditdb

#endif  // AUDITDB_SERVICE_BOUNDED_QUEUE_H_
