#include "src/service/audit_service.h"

namespace auditdb {
namespace service {

AuditService::AuditService(const Database* db, const Backlog* backlog,
                           const QueryLog* log, AuditServiceOptions options)
    : db_(db),
      backlog_(backlog),
      log_(log),
      pool_(options.pool, &metrics_),
      scheduler_(&pool_, options.scheduler),
      cache_(options.decision_cache_enabled
                 ? std::make_shared<audit::DecisionCache>(
                       options.decision_cache)
                 : nullptr) {}

audit::AuditOptions AuditService::WithCache(
    const audit::AuditOptions& options) const {
  audit::AuditOptions effective = options;
  if (effective.cache == nullptr) effective.cache = cache_.get();
  return effective;
}

Result<audit::AuditReport> AuditService::Audit(
    const std::string& audit_text, Timestamp now,
    const audit::AuditOptions& options, std::vector<ShardFailure>* failures) {
  return scheduler_.Run(*db_, *backlog_, *log_, audit_text, now,
                        WithCache(options), failures);
}

Result<audit::AuditReport> AuditService::Audit(
    const audit::AuditExpression& expr, const audit::AuditOptions& options,
    std::vector<ShardFailure>* failures) {
  return scheduler_.Run(*db_, *backlog_, *log_, expr, WithCache(options),
                        failures);
}

std::vector<AuditScheduler::ExpressionScreening> AuditService::ScreenLibrary(
    const audit::ExpressionLibrary& library,
    const audit::AuditOptions& options) {
  return scheduler_.ScreenLibrary(*db_, *backlog_, *log_, library,
                                  WithCache(options));
}

audit::AuditPin AuditService::Pin() const {
  audit::AuditPin pin;
  // Capture order matters: log/backlog prefixes before the database
  // snapshot, so every pinned log entry's writes are in the pinned view.
  pin.log_size = log_->size();
  pin.backlog_events = backlog_->event_count();
  pin.db = db_->Snapshot();
  return pin;
}

Result<audit::AuditReport> AuditService::AuditPinned(
    const std::string& audit_text, Timestamp now, const audit::AuditPin& pin,
    const audit::AuditOptions& options, std::vector<ShardFailure>* failures) {
  auto expr = audit::ParseAudit(audit_text, now);
  if (!expr.ok()) return expr.status();
  return scheduler_.RunPinned(*db_, *backlog_, *log_, *expr, pin,
                              WithCache(options), failures);
}

std::vector<AuditScheduler::ExpressionScreening>
AuditService::ScreenLibraryPinned(const audit::ExpressionLibrary& library,
                                  const audit::AuditPin& pin,
                                  const audit::AuditOptions& options) {
  return scheduler_.ScreenLibraryPinned(*db_, *backlog_, *log_, library, pin,
                                        WithCache(options));
}

}  // namespace service
}  // namespace auditdb
