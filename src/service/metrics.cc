#include "src/service/metrics.h"

#include <cstdio>

namespace auditdb {
namespace service {

namespace {

/// Index of the power-of-two bucket holding `micros`.
size_t BucketIndex(uint64_t micros) {
  size_t i = 0;
  while (micros > 1 && i + 1 < Histogram::kNumBuckets) {
    micros >>= 1;
    ++i;
  }
  return i;
}

/// Upper bound of bucket i: 2^(i+1) - 1 µs.
uint64_t BucketUpperBound(size_t i) {
  return (uint64_t{1} << (i + 1)) - 1;
}

}  // namespace

void Histogram::Observe(uint64_t micros) {
  buckets_[BucketIndex(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(micros, std::memory_order_relaxed);
}

double Histogram::mean_micros() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum_micros()) /
                            static_cast<double>(n);
}

uint64_t Histogram::QuantileUpperBound(double q) const {
  uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketUpperBound(i);
  }
  return BucketUpperBound(kNumBuckets - 1);
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{";
  bool first = true;
  auto append = [&out, &first](const std::string& key,
                               const std::string& value) {
    if (!first) out += ",";
    first = false;
    out += "\"" + key + "\":" + value;
  };
  for (const auto& [name, c] : counters_) {
    append(name, std::to_string(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    append(name, "{\"value\":" + std::to_string(g->value()) +
                     ",\"max\":" + std::to_string(g->max()) + "}");
  }
  for (const auto& [name, h] : histograms_) {
    char mean[32];
    std::snprintf(mean, sizeof(mean), "%.1f", h->mean_micros());
    append(name,
           "{\"count\":" + std::to_string(h->count()) +
               ",\"sum_micros\":" + std::to_string(h->sum_micros()) +
               ",\"mean_micros\":" + mean +
               ",\"p50_micros\":" +
               std::to_string(h->QuantileUpperBound(0.50)) +
               ",\"p95_micros\":" +
               std::to_string(h->QuantileUpperBound(0.95)) +
               ",\"p99_micros\":" +
               std::to_string(h->QuantileUpperBound(0.99)) + "}");
  }
  out += "}";
  return out;
}

}  // namespace service
}  // namespace auditdb
