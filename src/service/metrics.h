#ifndef AUDITDB_SERVICE_METRICS_H_
#define AUDITDB_SERVICE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace auditdb {
namespace service {

/// Monotonically increasing event count (jobs submitted, completed,
/// rejected, ...). Lock-free; safe to bump from any worker.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, in-flight jobs) with an
/// all-time maximum, so watermarks survive the moment that caused them.
class Gauge {
 public:
  void Set(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    UpdateMax(v);
  }
  void Add(int64_t delta) {
    int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    UpdateMax(now);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  void UpdateMax(int64_t v) {
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Latency distribution over power-of-two microsecond buckets: bucket i
/// holds observations in [2^i, 2^(i+1)) µs (bucket 0 also takes 0).
/// Cheap enough for per-job timing; quantiles are read off the bucket
/// upper bounds, which is plenty for a stage-latency dashboard.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 40;

  void Observe(uint64_t micros);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_micros() const {
    return sum_.load(std::memory_order_relaxed);
  }
  double mean_micros() const;
  /// Upper bound (µs) of the bucket containing quantile `q` in [0,1];
  /// 0 when empty.
  uint64_t QuantileUpperBound(double q) const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Named metrics for one service instance. Instruments are created on
/// first use and live as long as the registry; returned pointers are
/// stable, so hot paths resolve a name once and bump the pointer.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// One JSON object, keys sorted: counters as numbers, gauges as
  /// {"value","max"}, histograms as {"count","sum_micros","mean_micros",
  /// "p50_micros","p95_micros","p99_micros"}.
  std::string ToJson() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace service
}  // namespace auditdb

#endif  // AUDITDB_SERVICE_METRICS_H_
