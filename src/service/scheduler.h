#ifndef AUDITDB_SERVICE_SCHEDULER_H_
#define AUDITDB_SERVICE_SCHEDULER_H_

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "src/audit/auditor.h"
#include "src/audit/expression_library.h"
#include "src/service/thread_pool.h"

namespace auditdb {
namespace service {

struct SchedulerOptions {
  /// Log entries per static-screening shard; the scheduler may shrink
  /// this to keep every worker busy on small logs. Shard boundaries never
  /// affect output (results merge in log order).
  size_t static_shard_size = 256;
  /// Candidates per execution / suspicion-check shard.
  size_t exec_shard_size = 32;
  /// Wall-clock budget for each job of a run; zero = none. An expired
  /// job completes with DeadlineExceeded instead of running.
  std::chrono::milliseconds job_deadline{0};
  /// Cooperative cancellation shared by all jobs of a run (optional).
  std::shared_ptr<CancellationToken> cancel;
  /// When true (default) the run stops at the first shard error, exactly
  /// like the serial Auditor. When false, a poisoned shard only degrades
  /// the run: its queries drop out of the report and the failure is
  /// recorded in `failures`.
  bool fail_fast = true;
};

/// One shard's failure (stage name, shard index within the stage, error).
struct ShardFailure {
  std::string stage;
  size_t shard = 0;
  Status status;
};

/// Shards an audit run into independent jobs along the paper's natural
/// parallel axes — (standing expression) × (query-log range) × (database
/// version) — fans them out over a ThreadPool, and merges per-shard
/// results deterministically:
///
///   static   one job per contiguous log range (admission + parse +
///            static candidacy); the target-view job runs concurrently;
///   exec     one job per database version (snapshot reconstruction),
///            then one job per candidate range (re-execution with
///            lineage) against the shared read-only snapshots;
///   check    one job per candidate range for per-query suspicion; the
///            batch verdict and greedy minimization stay serial (the
///            greedy order is part of the output contract).
///
/// Every merge happens in log order into pre-sized slots, so the report
/// is byte-identical (AuditReport::CanonicalString) to the serial
/// Auditor's at any thread count.
class AuditScheduler {
 public:
  /// `pool` must outlive the scheduler; metrics land in the pool's
  /// registry under "scheduler.*".
  explicit AuditScheduler(ThreadPool* pool,
                          SchedulerOptions options = SchedulerOptions{});

  /// Parallel counterpart of Auditor::Audit over explicit stores. When
  /// `failures` is non-null, degraded shards (fail_fast = false) are
  /// reported there; a clean run leaves it empty.
  Result<audit::AuditReport> Run(const Database& db, const Backlog& backlog,
                                 const QueryLog& log,
                                 const audit::AuditExpression& expr,
                                 const audit::AuditOptions& options =
                                     audit::AuditOptions{},
                                 std::vector<ShardFailure>* failures =
                                     nullptr) const;

  /// Parses (anchored at `now`) and runs.
  Result<audit::AuditReport> Run(const Database& db, const Backlog& backlog,
                                 const QueryLog& log,
                                 const std::string& audit_text, Timestamp now,
                                 const audit::AuditOptions& options =
                                     audit::AuditOptions{},
                                 std::vector<ShardFailure>* failures =
                                     nullptr) const;

  /// Run against a caller-captured pin instead of pinning at entry — for
  /// callers that must make the pin capture atomic with respect to state
  /// transitions the stores themselves don't order (e.g. the server pins
  /// under a brief shared lock so a concurrent dump load stays atomic,
  /// then audits with no lock held at all). `db` is only consulted for
  /// the wholesale-invalidation ablation's global state key; all data is
  /// read from `pin`.
  Result<audit::AuditReport> RunPinned(const Database& db,
                                       const Backlog& backlog,
                                       const QueryLog& log,
                                       const audit::AuditExpression& expr,
                                       const audit::AuditPin& pin,
                                       const audit::AuditOptions& options =
                                           audit::AuditOptions{},
                                       std::vector<ShardFailure>* failures =
                                           nullptr) const;

  /// Outcome of screening one library member.
  struct ExpressionScreening {
    int expression_id = 0;
    Status status;
    /// Valid iff status.ok().
    audit::AuditReport report;
  };

  /// Batch screening along the expression axis: audits every member of
  /// `library` against the same log, one job per expression, results in
  /// ascending id order. A failed expression degrades (its status is
  /// recorded), never crashes the sweep.
  std::vector<ExpressionScreening> ScreenLibrary(
      const Database& db, const Backlog& backlog, const QueryLog& log,
      const audit::ExpressionLibrary& library,
      const audit::AuditOptions& options = audit::AuditOptions{}) const;

  /// ScreenLibrary against a caller-captured pin (see RunPinned).
  std::vector<ExpressionScreening> ScreenLibraryPinned(
      const Database& db, const Backlog& backlog, const QueryLog& log,
      const audit::ExpressionLibrary& library, const audit::AuditPin& pin,
      const audit::AuditOptions& options = audit::AuditOptions{}) const;

  ThreadPool* pool() const { return pool_; }
  const SchedulerOptions& options() const { return options_; }

 private:
  ThreadPool* pool_;
  SchedulerOptions options_;

  Counter* runs_;
  Counter* shards_dispatched_;
  Counter* shards_failed_;
  Histogram* static_stage_micros_;
  Histogram* exec_stage_micros_;
  Histogram* check_stage_micros_;
};

}  // namespace service
}  // namespace auditdb

#endif  // AUDITDB_SERVICE_SCHEDULER_H_
