#include "src/policy/rule_config.h"

#include <set>

#include "src/common/string_util.h"

namespace auditdb {
namespace policy {

const char* QueryClassName(QueryClass c) {
  switch (c) {
    case QueryClass::kSelect: return "select";
    case QueryClass::kDml: return "dml";
    case QueryClass::kDdl: return "ddl";
    case QueryClass::kError: return "error";
  }
  return "unknown";
}

const char* AuditDetailName(AuditDetail d) {
  switch (d) {
    case AuditDetail::kNone: return "none";
    case AuditDetail::kLogOnly: return "log-only";
    case AuditDetail::kStaticScreen: return "static-screen";
    case AuditDetail::kFullAudit: return "full-audit";
  }
  return "unknown";
}

const RuleConfig* PolicyConfig::FindRule(const std::string& name) const {
  for (const auto& rule : rules) {
    if (rule.name == name) return &rule;
  }
  return nullptr;
}

namespace {

Status LineError(size_t line_no, const std::string& msg) {
  return Status::ParseError("policy config line " + std::to_string(line_no) +
                            ": " + msg);
}

/// Comma-splits a value, trimming pieces; empty pieces are errors
/// (signalled by an empty result plus `error` set).
Result<std::vector<std::string>> SplitList(const std::string& value,
                                           size_t line_no) {
  std::vector<std::string> out;
  for (const auto& piece : Split(value, ',')) {
    std::string item(Trim(piece));
    if (item.empty()) {
      return LineError(line_no, "empty element in list '" + value + "'");
    }
    out.push_back(std::move(item));
  }
  return out;
}

/// Parses a role-purpose pattern list: `(role,purpose), (r2,-)`.
Result<std::vector<RolePurposePattern>> ParsePatternList(
    const std::string& value, size_t line_no) {
  std::vector<RolePurposePattern> out;
  size_t i = 0;
  const size_t n = value.size();
  while (i < n) {
    while (i < n && (value[i] == ' ' || value[i] == '\t' || value[i] == ','))
      ++i;
    if (i >= n) break;
    if (value[i] != '(') {
      return LineError(line_no,
                       "expected '(' in role-purpose list '" + value + "'");
    }
    size_t close = value.find(')', i);
    if (close == std::string::npos) {
      return LineError(line_no, "unbalanced '(' in role-purpose list");
    }
    std::string inner = value.substr(i + 1, close - i - 1);
    auto parts = Split(inner, ',');
    if (parts.size() != 2) {
      return LineError(line_no,
                       "role-purpose pattern '(" + inner +
                           ")' must have exactly two elements");
    }
    RolePurposePattern pattern;
    pattern.role = std::string(Trim(parts[0]));
    pattern.purpose = std::string(Trim(parts[1]));
    if (pattern.role.empty() || pattern.purpose.empty()) {
      return LineError(line_no, "empty side in role-purpose pattern '(" +
                                    inner + ")' (use '-' for any)");
    }
    out.push_back(std::move(pattern));
    i = close + 1;
  }
  if (out.empty()) {
    return LineError(line_no, "empty role-purpose list");
  }
  return out;
}

/// `during = TS .. TS` (closed interval, same timestamp syntax as the
/// audit grammar, `now()` allowed).
Result<TimeInterval> ParseDuring(const std::string& value, Timestamp now,
                                 size_t line_no) {
  size_t sep = value.find("..");
  if (sep == std::string::npos) {
    return LineError(line_no,
                     "during needs 'START .. END', got '" + value + "'");
  }
  std::string start_text(Trim(value.substr(0, sep)));
  std::string end_text(Trim(value.substr(sep + 2)));
  auto start = Timestamp::Parse(start_text, now);
  if (!start.ok()) return LineError(line_no, start.status().message());
  auto end = Timestamp::Parse(end_text, now);
  if (!end.ok()) return LineError(line_no, end.status().message());
  if (*end < *start) {
    return LineError(line_no, "during interval ends before it starts");
  }
  return TimeInterval{*start, *end};
}

Result<uint32_t> ParseClassMask(const std::string& value, size_t line_no) {
  auto items = SplitList(value, line_no);
  if (!items.ok()) return items.status();
  uint32_t mask = 0;
  for (const auto& item : *items) {
    std::string c = ToLower(item);
    if (c == "select" || c == "read") {
      mask |= QueryClassBit(QueryClass::kSelect);
    } else if (c == "dml" || c == "write") {
      mask |= QueryClassBit(QueryClass::kDml);
    } else if (c == "ddl") {
      mask |= QueryClassBit(QueryClass::kDdl);
    } else if (c == "error") {
      mask |= QueryClassBit(QueryClass::kError);
    } else if (c == "all") {
      mask |= kAllClassesMask;
    } else {
      return LineError(line_no, "unknown query class '" + item +
                                    "' (select|dml|ddl|error|all)");
    }
  }
  return mask;
}

Result<AuditDetail> ParseDetail(const std::string& value, size_t line_no) {
  std::string d = ToLower(std::string(Trim(value)));
  if (d == "none") return AuditDetail::kNone;
  if (d == "log-only" || d == "log") return AuditDetail::kLogOnly;
  if (d == "static-screen" || d == "static") return AuditDetail::kStaticScreen;
  if (d == "full-audit" || d == "full") return AuditDetail::kFullAudit;
  return LineError(line_no, "unknown detail '" + value +
                                "' (none|log-only|static-screen|full-audit)");
}

}  // namespace

Result<PolicyConfig> ParsePolicyConfig(const std::string& text,
                                       Timestamp now) {
  PolicyConfig config;
  RuleConfig* current = nullptr;
  std::set<std::string> seen_keys;   // per current section
  std::set<std::string> seen_names;  // rule names, for duplicate detection

  size_t line_no = 0;
  for (const auto& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string line(raw_line);
    // '#' starts a comment anywhere on the line (values therefore cannot
    // contain '#'; none of the matched fields legitimately do).
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::string trimmed(Trim(line));
    if (trimmed.empty()) continue;

    if (trimmed.front() == '[') {
      if (trimmed.back() != ']') {
        return LineError(line_no, "unterminated section header '" + trimmed +
                                      "'");
      }
      std::string header(Trim(trimmed.substr(1, trimmed.size() - 2)));
      if (!StartsWith(header, "rule ") && header != "rule") {
        return LineError(line_no,
                         "section must be '[rule NAME]', got '[" + header +
                             "]'");
      }
      std::string name(Trim(header.substr(4)));
      if (name.empty()) {
        return LineError(line_no, "rule section needs a name");
      }
      if (!seen_names.insert(name).second) {
        return LineError(line_no, "duplicate rule name '" + name + "'");
      }
      config.rules.emplace_back();
      current = &config.rules.back();
      current->name = name;
      seen_keys.clear();
      continue;
    }

    size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      return LineError(line_no, "expected 'key = value', got '" + trimmed +
                                    "'");
    }
    if (current == nullptr) {
      return LineError(line_no, "key outside any [rule ...] section");
    }
    std::string key = ToLower(std::string(Trim(trimmed.substr(0, eq))));
    std::string value(Trim(trimmed.substr(eq + 1)));
    if (key.empty()) return LineError(line_no, "empty key");
    if (value.empty()) {
      return LineError(line_no, "empty value for key '" + key + "'");
    }
    if (!seen_keys.insert(key).second) {
      return LineError(line_no, "duplicate key '" + key + "' in rule '" +
                                    current->name + "'");
    }

    if (key == "class") {
      auto mask = ParseClassMask(value, line_no);
      if (!mask.ok()) return mask.status();
      current->class_mask = *mask;
    } else if (key == "user") {
      auto items = SplitList(value, line_no);
      if (!items.ok()) return items.status();
      current->filter.pos_users = std::move(*items);
    } else if (key == "not-user") {
      auto items = SplitList(value, line_no);
      if (!items.ok()) return items.status();
      current->filter.neg_users = std::move(*items);
    } else if (key == "role") {
      auto items = SplitList(value, line_no);
      if (!items.ok()) return items.status();
      for (auto& role : *items) {
        current->filter.pos_role_purpose.push_back(
            RolePurposePattern{std::move(role), "-"});
      }
    } else if (key == "not-role") {
      auto items = SplitList(value, line_no);
      if (!items.ok()) return items.status();
      for (auto& role : *items) {
        current->filter.neg_role_purpose.push_back(
            RolePurposePattern{std::move(role), "-"});
      }
    } else if (key == "purpose") {
      auto items = SplitList(value, line_no);
      if (!items.ok()) return items.status();
      for (auto& purpose : *items) {
        current->filter.pos_role_purpose.push_back(
            RolePurposePattern{"-", std::move(purpose)});
      }
    } else if (key == "not-purpose") {
      auto items = SplitList(value, line_no);
      if (!items.ok()) return items.status();
      for (auto& purpose : *items) {
        current->filter.neg_role_purpose.push_back(
            RolePurposePattern{"-", std::move(purpose)});
      }
    } else if (key == "role-purpose") {
      auto patterns = ParsePatternList(value, line_no);
      if (!patterns.ok()) return patterns.status();
      for (auto& p : *patterns) {
        current->filter.pos_role_purpose.push_back(std::move(p));
      }
    } else if (key == "not-role-purpose") {
      auto patterns = ParsePatternList(value, line_no);
      if (!patterns.ok()) return patterns.status();
      for (auto& p : *patterns) {
        current->filter.neg_role_purpose.push_back(std::move(p));
      }
    } else if (key == "during") {
      auto interval = ParseDuring(value, now, line_no);
      if (!interval.ok()) return interval.status();
      current->filter.during = *interval;
    } else if (key == "database") {
      auto items = SplitList(value, line_no);
      if (!items.ok()) return items.status();
      current->databases = std::move(*items);
    } else if (key == "table") {
      auto items = SplitList(value, line_no);
      if (!items.ok()) return items.status();
      current->tables = std::move(*items);
    } else if (key == "remote") {
      auto items = SplitList(value, line_no);
      if (!items.ok()) return items.status();
      current->remotes = std::move(*items);
    } else if (key == "detail") {
      auto detail = ParseDetail(value, line_no);
      if (!detail.ok()) return detail.status();
      current->detail = *detail;
    } else if (key == "log-class") {
      std::string log_class(Trim(value));
      if (log_class.find('|') != std::string::npos ||
          log_class.find(' ') != std::string::npos) {
        return LineError(line_no,
                         "log-class must be a single bare token, got '" +
                             log_class + "'");
      }
      current->log_class = std::move(log_class);
    } else if (key == "redact") {
      auto items = SplitList(value, line_no);
      if (!items.ok()) return items.status();
      current->redact = std::move(*items);
    } else if (key == "sink") {
      auto items = SplitList(value, line_no);
      if (!items.ok()) return items.status();
      current->sinks = std::move(*items);
    } else {
      return LineError(line_no, "unknown key '" + key + "'");
    }
  }

  // Defaults + hot-path compilation.
  for (auto& rule : config.rules) {
    if (rule.sinks.empty()) rule.sinks.push_back("metrics");
    rule.filter.Compile();
  }
  return config;
}

}  // namespace policy
}  // namespace auditdb
