#ifndef AUDITDB_POLICY_POLICY_ENGINE_H_
#define AUDITDB_POLICY_POLICY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/common/timestamp.h"
#include "src/io/file.h"
#include "src/policy/redaction.h"
#include "src/policy/rule_config.h"
#include "src/policy/sink.h"
#include "src/service/metrics.h"

namespace auditdb {
namespace policy {

/// Everything the engine knows about one query when deciding which rule
/// applies. `tables` may be empty when the statement did not parse
/// (table-constrained rules then never match); `remote` empty means the
/// peer is local/unknown.
struct QueryContext {
  std::string sql;
  std::string user;
  std::string role;
  std::string purpose;
  Timestamp timestamp;
  std::string remote;
  QueryClass query_class = QueryClass::kSelect;
  std::vector<std::string> tables;
};

/// Classifies a statement by its leading keyword: SELECT -> kSelect,
/// INSERT/UPDATE/DELETE -> kDml, CREATE/DROP/ALTER -> kDdl, anything
/// else (or `execute_failed`) -> kError.
QueryClass ClassifySql(const std::string& sql, bool execute_failed);

/// FROM-clause table names of a statement (empty when it does not lex
/// or has no FROM clause).
std::vector<std::string> ExtractTables(const std::string& sql);

struct PolicyEngineOptions {
  /// The database name rule `database =` clauses are matched against.
  std::string database_name = "auditdb";
};

/// The pgaudit-style policy engine: holds an immutable compiled config
/// snapshot, swapped atomically on (re)load so concurrent Decide calls
/// never observe a half-loaded config; a failed reload keeps the old
/// snapshot live. Rules evaluate in file order, first match wins.
///
/// Thread safety: Decide/Emit/RedactForDisplay/MetricsJson may race
/// LoadText/LoadFile/Reload and each other. Sinks must be attached
/// before the engine is shared across threads.
class PolicyEngine {
 public:
  explicit PolicyEngine(PolicyEngineOptions options = PolicyEngineOptions{});

  /// Registers a sink under its name(); AlreadyExists on duplicates.
  /// A "metrics" sink (backed by this engine's registry) is attached
  /// by the constructor.
  Status AttachSink(std::unique_ptr<PolicySink> sink);
  PolicySink* FindSink(const std::string& name) const;

  /// Parses and atomically installs `text`. On any error the previous
  /// config stays live and `policy.reload_failures` is bumped.
  Status LoadText(const std::string& text, Timestamp now);

  /// LoadText from a file; remembers the path for Reload.
  Status LoadFile(io::Env* env, const std::string& path, Timestamp now);

  /// Re-reads the LoadFile path (the SIGHUP handler calls this).
  Status Reload(Timestamp now);

  /// The outcome of matching one query against the live config. Holds
  /// the config snapshot, so the rule pointer stays valid across a
  /// concurrent reload.
  struct Decision {
    bool matched = false;
    AuditDetail detail = AuditDetail::kNone;
    const RuleConfig* rule = nullptr;
    size_t rule_index = 0;

    std::shared_ptr<const struct CompiledConfig> snapshot;
  };

  /// First-match-wins rule lookup. Also bumps decision/suppression
  /// counters.
  Decision Decide(const QueryContext& ctx) const;

  /// Applies the matched rule's action: redacts `ctx.sql` per the rule,
  /// builds a SinkRecord, and writes it to every sink the rule routes
  /// to. `note` carries detail-level payload. Sink write failures are
  /// counted (`policy.sink_errors`) and the first is returned, but all
  /// sinks are attempted.
  Status Emit(const Decision& decision, const QueryContext& ctx,
              int64_t log_id, const std::string& note);

  /// Redacts a query for display/wire echo using the union of every
  /// rule's redaction set (conservative: a displayed log line never
  /// leaks a literal any rule marks). No-op when no rule redacts.
  std::string RedactForDisplay(const std::string& sql) const;
  bool HasDisplayRedactions() const;

  /// Whether any live rule constrains on FROM-clause tables. Callers
  /// may skip ExtractTables for the QueryContext when false — table
  /// names are then only needed for emitted sink records, which the
  /// server fills in post-match (misses never pay the extra lex).
  bool NeedsTables() const;

  /// Flushes every attached sink; first error wins.
  Status FlushSinks();

  /// The "policy" metrics section (per-rule hits, redactions,
  /// suppressed logs, reload counts, sink records).
  std::string MetricsJson() const;
  service::MetricsRegistry* metrics() { return &metrics_; }

  size_t rule_count() const;
  /// Monotonic config generation; bumps on each successful load.
  uint64_t generation() const;
  const std::string& config_path() const { return config_path_; }

 private:
  Status Install(PolicyConfig config);

  const PolicyEngineOptions options_;

  mutable std::shared_mutex snapshot_mutex_;
  std::shared_ptr<const CompiledConfig> snapshot_;

  std::vector<std::unique_ptr<PolicySink>> sinks_;

  io::Env* config_env_ = nullptr;
  std::string config_path_;

  mutable service::MetricsRegistry metrics_;
  service::Counter* decisions_;
  service::Counter* no_match_;
  service::Counter* suppressed_;
  service::Counter* redactions_;
  service::Counter* display_redactions_;
  service::Counter* records_;
  service::Counter* sink_errors_;
  service::Counter* reloads_;
  service::Counter* reload_failures_;
  service::Gauge* rules_gauge_;
  service::Gauge* generation_gauge_;
};

/// A fully parsed + resolved config the engine swaps in one shot.
/// Immutable after construction; shared by every in-flight Decision.
struct CompiledConfig {
  PolicyConfig config;
  /// Per-rule compiled redaction sets, by rule index.
  std::vector<RedactionSet> rule_redactions;
  /// Union of all rules' redaction sets (display path).
  RedactionSet display_redactions;
  /// Per-rule resolved sink pointers (into PolicyEngine::sinks_).
  std::vector<std::vector<PolicySink*>> rule_sinks;
  /// Per-rule hit counters resolved once at load.
  std::vector<service::Counter*> rule_hits;
  /// Per-rule table membership (exact-name) for fast matching.
  std::vector<std::unordered_set<std::string>> rule_tables;
  /// Rules whose `database =` clause excludes this engine's database
  /// are disabled wholesale at load time.
  std::vector<bool> rule_enabled;
  /// Candidate prefilter: a rule with a positive `user =` clause can
  /// only match those users, so Decide walks user_rules[ctx.user]
  /// merged with open_rules (rules any user could match) instead of
  /// every rule. Both lists hold enabled rule indices in file order,
  /// preserving first-match-wins; a 0%-hit workload against user-keyed
  /// rules costs one hash lookup, not a full scan.
  std::unordered_map<std::string, std::vector<size_t>> user_rules;
  std::vector<size_t> open_rules;
  /// Any enabled rule with a `table =` clause (see NeedsTables()).
  bool needs_tables = false;
  uint64_t generation = 0;
};

}  // namespace policy
}  // namespace auditdb

#endif  // AUDITDB_POLICY_POLICY_ENGINE_H_
