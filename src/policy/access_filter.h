#ifndef AUDITDB_POLICY_ACCESS_FILTER_H_
#define AUDITDB_POLICY_ACCESS_FILTER_H_

#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/common/timestamp.h"
#include "src/querylog/query_log.h"

namespace auditdb {

/// A (role, purpose) selector from the audit grammar's Pos-/Neg-Role-Purpose
/// clauses. Either side may be the wildcard "-": (r,-) matches any purpose,
/// (-,pr) any role.
struct RolePurposePattern {
  std::string role;     // "-" = any
  std::string purpose;  // "-" = any

  bool Matches(const std::string& r, const std::string& pr) const {
    return (role == "-" || role == r) && (purpose == "-" || purpose == pr);
  }

  std::string ToString() const { return "(" + role + "," + purpose + ")"; }

  bool operator==(const RolePurposePattern& other) const {
    return role == other.role && purpose == other.purpose;
  }
};

/// The limiting parameters of an audit expression (Section 3.3 of the
/// paper): positive and negative role/purpose and user-identity selectors
/// plus the DURING interval. Negative clauses take precedence over
/// positive ones on conflict, exactly as the paper resolves it.
struct AccessFilter {
  std::vector<RolePurposePattern> neg_role_purpose;
  std::vector<RolePurposePattern> pos_role_purpose;
  std::vector<std::string> neg_users;
  std::vector<std::string> pos_users;
  /// DURING interval for the user accesses; unset = no time restriction
  /// (the grammar's default is "current day", applied by the parser).
  std::optional<TimeInterval> during;

  /// Whether the logged query survives all limiting clauses and should be
  /// considered for auditing.
  bool Admits(const LoggedQuery& query) const;

  /// Builds O(1) membership indexes over the user lists. Admits falls
  /// back to a linear scan until this is called, so aggregate-initialized
  /// filters keep working; callers on hot paths (the audit parser, the
  /// policy engine) compile once after filling the public fields. Call
  /// again after mutating the user lists.
  void Compile();

  /// Whether any clause is set at all.
  bool IsTrivial() const {
    return neg_role_purpose.empty() && pos_role_purpose.empty() &&
           neg_users.empty() && pos_users.empty() && !during.has_value();
  }

 private:
  std::unordered_set<std::string> pos_user_set_;
  std::unordered_set<std::string> neg_user_set_;
  bool compiled_ = false;
};

}  // namespace auditdb

#endif  // AUDITDB_POLICY_ACCESS_FILTER_H_
