#include "src/policy/redaction.h"

#include <algorithm>
#include <cctype>

#include "src/common/string_util.h"
#include "src/sql/lexer.h"

namespace auditdb {
namespace policy {

void RedactionSet::Add(const std::string& column_spec) {
  std::string spec = ToLower(std::string(Trim(column_spec)));
  if (spec.empty()) return;
  size_t dot = spec.find('.');
  if (dot == std::string::npos) {
    bare_.insert(spec);
  } else {
    qualified_.insert(spec);
    qualified_columns_.insert(spec.substr(dot + 1));
  }
}

void RedactionSet::AddAll(const std::vector<std::string>& specs) {
  for (const auto& spec : specs) Add(spec);
}

void RedactionSet::MergeFrom(const RedactionSet& other) {
  bare_.insert(other.bare_.begin(), other.bare_.end());
  qualified_.insert(other.qualified_.begin(), other.qualified_.end());
  qualified_columns_.insert(other.qualified_columns_.begin(),
                            other.qualified_columns_.end());
}

bool RedactionSet::Matches(const std::string& table,
                           const std::string& column) const {
  std::string col = ToLower(column);
  if (bare_.count(col) > 0) return true;
  if (table.empty()) {
    // Unqualified use: a qualified entry for this column name matches
    // too — without binding we cannot rule its table out.
    return qualified_columns_.count(col) > 0;
  }
  return qualified_.count(ToLower(table) + "." + col) > 0;
}

namespace {

using sql::Token;
using sql::TokenKind;

bool IsLiteral(const Token& tok) {
  return tok.kind == TokenKind::kString || tok.kind == TokenKind::kInt ||
         tok.kind == TokenKind::kDouble || tok.kind == TokenKind::kTimestamp;
}

bool IsComparison(const Token& tok) {
  switch (tok.kind) {
    case TokenKind::kEq:
    case TokenKind::kNe:
    case TokenKind::kLt:
    case TokenKind::kLe:
    case TokenKind::kGt:
    case TokenKind::kGe:
      return true;
    default:
      return false;
  }
}

/// A column reference at token `i`: bare identifier or `table.column`.
/// `next` is the index just past the reference.
struct ColumnRef {
  std::string table;
  std::string column;
  size_t next = 0;
};

bool TryColumnRef(const std::vector<Token>& toks, size_t i, ColumnRef* out) {
  if (toks[i].kind != TokenKind::kIdentifier) return false;
  if (i + 2 < toks.size() && toks[i + 1].kind == TokenKind::kDot &&
      toks[i + 2].kind == TokenKind::kIdentifier) {
    out->table = toks[i].text;
    out->column = toks[i + 2].text;
    out->next = i + 3;
  } else {
    out->table.clear();
    out->column = toks[i].text;
    out->next = i + 1;
  }
  return true;
}

/// Marks the literal at token index `idx` for redaction; if it is
/// preceded by a unary minus, the minus is swallowed too.
void MarkLiteral(const std::vector<Token>& toks, size_t idx,
                 std::vector<bool>* redact_token,
                 std::vector<bool>* swallow_minus) {
  (*redact_token)[idx] = true;
  if (idx > 0 && toks[idx - 1].kind == TokenKind::kMinus) {
    // Unary if the minus is not after an operand.
    if (idx < 2 ||
        (!IsLiteral(toks[idx - 2]) &&
         toks[idx - 2].kind != TokenKind::kIdentifier &&
         toks[idx - 2].kind != TokenKind::kRParen)) {
      (*swallow_minus)[idx - 1] = true;
    }
  }
}

}  // namespace

RedactResult RedactSql(const std::string& sql, const RedactionSet& set) {
  if (set.empty()) return {sql, 0};

  auto lexed = sql::Lex(sql);
  if (!lexed.ok()) {
    return {kRedactedQueryToken, 1};
  }
  const std::vector<Token>& toks = *lexed;  // ends with kEnd (offset = size)
  std::vector<bool> redact_token(toks.size(), false);
  std::vector<bool> swallow_minus(toks.size(), false);

  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    // lit OP col — scan literal-first comparisons.
    if (IsLiteral(toks[i]) && IsComparison(toks[i + 1])) {
      ColumnRef ref;
      if (i + 2 < toks.size() && TryColumnRef(toks, i + 2, &ref) &&
          set.Matches(ref.table, ref.column)) {
        MarkLiteral(toks, i, &redact_token, &swallow_minus);
      }
      continue;
    }

    ColumnRef ref;
    if (!TryColumnRef(toks, i, &ref)) continue;
    size_t k = ref.next;
    bool marked = set.Matches(ref.table, ref.column);
    if (k >= toks.size()) break;

    auto literal_at = [&](size_t idx) {
      if (idx >= toks.size()) return false;
      if (IsLiteral(toks[idx])) return true;
      // Unary minus ahead of a number.
      return toks[idx].kind == TokenKind::kMinus && idx + 1 < toks.size() &&
             IsLiteral(toks[idx + 1]);
    };
    auto literal_idx = [&](size_t idx) {
      return toks[idx].kind == TokenKind::kMinus ? idx + 1 : idx;
    };

    if (IsComparison(toks[k]) && literal_at(k + 1)) {
      if (marked) {
        MarkLiteral(toks, literal_idx(k + 1), &redact_token, &swallow_minus);
      }
    } else if (toks[k].IsKeyword("LIKE") && literal_at(k + 1)) {
      if (marked) {
        MarkLiteral(toks, literal_idx(k + 1), &redact_token, &swallow_minus);
      }
    } else if (toks[k].IsKeyword("BETWEEN") && literal_at(k + 1)) {
      size_t lo = literal_idx(k + 1);
      if (marked) MarkLiteral(toks, lo, &redact_token, &swallow_minus);
      if (lo + 1 < toks.size() && toks[lo + 1].IsKeyword("AND") &&
          literal_at(lo + 2)) {
        if (marked) {
          MarkLiteral(toks, literal_idx(lo + 2), &redact_token,
                      &swallow_minus);
        }
      }
    } else if (toks[k].IsKeyword("IN") && k + 1 < toks.size() &&
               toks[k + 1].kind == TokenKind::kLParen) {
      for (size_t j = k + 2;
           j < toks.size() && toks[j].kind != TokenKind::kRParen; ++j) {
        if (marked && IsLiteral(toks[j])) {
          MarkLiteral(toks, j, &redact_token, &swallow_minus);
        }
      }
    }
    // Advance past multi-token refs so `t.c` is not re-scanned at `c`.
    i = ref.next - 1;
  }

  // Splice: copy the source, replacing each marked literal's byte span
  // (offset .. next token's offset, right-trimmed) with the token.
  std::string out;
  out.reserve(sql.size());
  size_t copied = 0;  // source bytes emitted so far
  size_t redactions = 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!redact_token[i]) continue;
    size_t begin = toks[i].offset;
    if (i > 0 && swallow_minus[i - 1]) begin = toks[i - 1].offset;
    size_t end = (i + 1 < toks.size()) ? toks[i + 1].offset : sql.size();
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(sql[end - 1]))) {
      --end;
    }
    out.append(sql, copied, begin - copied);
    out.append(kRedactedToken);
    copied = end;
    ++redactions;
  }
  out.append(sql, copied, sql.size() - copied);
  return {std::move(out), redactions};
}

}  // namespace policy
}  // namespace auditdb
