#include "src/policy/access_filter.h"

#include <algorithm>

namespace auditdb {

void AccessFilter::Compile() {
  pos_user_set_ = std::unordered_set<std::string>(pos_users.begin(),
                                                  pos_users.end());
  neg_user_set_ = std::unordered_set<std::string>(neg_users.begin(),
                                                  neg_users.end());
  compiled_ = true;
}

bool AccessFilter::Admits(const LoggedQuery& query) const {
  if (during.has_value() && !during->Contains(query.timestamp)) {
    return false;
  }
  // Negative clauses first: they win over positive ones on conflict.
  if (compiled_ ? neg_user_set_.count(query.user) > 0
                : std::find(neg_users.begin(), neg_users.end(), query.user) !=
                      neg_users.end()) {
    return false;
  }
  for (const auto& pattern : neg_role_purpose) {
    if (pattern.Matches(query.role, query.purpose)) return false;
  }
  // Positive clauses restrict to the listed parameters when present.
  if (!pos_users.empty() &&
      (compiled_ ? pos_user_set_.count(query.user) == 0
                 : std::find(pos_users.begin(), pos_users.end(),
                             query.user) == pos_users.end())) {
    return false;
  }
  if (!pos_role_purpose.empty()) {
    bool matched = false;
    for (const auto& pattern : pos_role_purpose) {
      if (pattern.Matches(query.role, query.purpose)) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

}  // namespace auditdb
