#ifndef AUDITDB_POLICY_POLICY_H_
#define AUDITDB_POLICY_POLICY_H_

#include <set>
#include <string>
#include <vector>

#include "src/catalog/schema.h"

namespace auditdb {

/// One rule of a Hippocratic privacy policy: a (role, purpose) pair is
/// authorized to read the listed columns. Column sets are per-table;
/// an empty column set means the whole table.
struct PolicyRule {
  std::string role;
  std::string purpose;
  std::string table;
  std::set<std::string> columns;  // empty = all columns of the table
};

/// A permissive column-level privacy policy. Anything not covered by a
/// rule is denied. Used by the workload generator and examples to produce
/// realistic "authorized" query logs that the auditor then combs for
/// disclosures that were technically authorized but violate a disclosure
/// review (the paper's setting: audits run over policy-compliant logs).
class PrivacyPolicy {
 public:
  PrivacyPolicy() = default;

  void AddRule(PolicyRule rule) { rules_.push_back(std::move(rule)); }

  const std::vector<PolicyRule>& rules() const { return rules_; }

  /// Whether (role, purpose) may read column `col`.
  bool Allows(const std::string& role, const std::string& purpose,
              const ColumnRef& col) const;

  /// Whether (role, purpose) may read every column in `cols`.
  bool AllowsAll(const std::string& role, const std::string& purpose,
                 const std::set<ColumnRef>& cols) const;

 private:
  std::vector<PolicyRule> rules_;
};

}  // namespace auditdb

#endif  // AUDITDB_POLICY_POLICY_H_
