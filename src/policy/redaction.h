#ifndef AUDITDB_POLICY_REDACTION_H_
#define AUDITDB_POLICY_REDACTION_H_

#include <string>
#include <unordered_set>
#include <vector>

namespace auditdb {
namespace policy {

/// The fixed token substituted for a redacted comparison literal. It is
/// quoted so redacted text still lexes as a string literal (displayed
/// queries stay parseable-looking), and contains no pipe so sink lines
/// keep their field structure.
inline constexpr char kRedactedToken[] = "'[REDACTED]'";

/// Replacement for an entire query whose text could not be lexed (we
/// cannot locate literals, so the conservative move is to hide it all).
inline constexpr char kRedactedQueryToken[] = "[REDACTED-QUERY]";

/// A compiled set of redaction-marked columns. Entries come from rule
/// `redact =` clauses as `column` or `Table.column`; matching is
/// case-insensitive. A bare entry matches the column under any table; a
/// qualified entry also matches bare uses of its column name in query
/// text (we cannot resolve which table an unqualified identifier binds
/// to without a catalog, so we over-redact rather than leak).
class RedactionSet {
 public:
  void Add(const std::string& column_spec);
  void AddAll(const std::vector<std::string>& specs);
  void MergeFrom(const RedactionSet& other);

  bool empty() const { return bare_.empty() && qualified_.empty(); }

  /// Whether a reference (table may be "" for unqualified uses) is
  /// marked for redaction.
  bool Matches(const std::string& table, const std::string& column) const;

 private:
  std::unordered_set<std::string> bare_;               // lowercase column
  std::unordered_set<std::string> qualified_;          // "table.column"
  std::unordered_set<std::string> qualified_columns_;  // column side of ^
};

struct RedactResult {
  std::string text;
  size_t redactions = 0;
};

/// Replaces constant literals compared against marked columns with
/// kRedactedToken, preserving all other bytes of the query (the literal
/// spans are located by lexer offsets and spliced in place). Handles
/// `col OP lit`, `lit OP col`, `col LIKE lit`, `col BETWEEN lit AND
/// lit`, and `col IN (lit, ...)`; unary minus ahead of a redacted
/// number is swallowed into the replacement. Unlexable input returns
/// kRedactedQueryToken when any column is marked (conservative), the
/// original text otherwise.
RedactResult RedactSql(const std::string& sql, const RedactionSet& set);

}  // namespace policy
}  // namespace auditdb

#endif  // AUDITDB_POLICY_REDACTION_H_
