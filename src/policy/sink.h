#ifndef AUDITDB_POLICY_SINK_H_
#define AUDITDB_POLICY_SINK_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/timestamp.h"
#include "src/io/file.h"
#include "src/service/metrics.h"

namespace auditdb {
namespace policy {

/// One policy-audit record as emitted to sinks. `sql` is already
/// redacted per the matching rule; `note` carries detail-level payload
/// (accessed columns, fired-expression summary, or the error message).
struct SinkRecord {
  Timestamp timestamp;
  int64_t log_id = 0;  // 0 = not logged (e.g. rejected statements)
  std::string rule;
  std::string log_class;
  std::string query_class;  // select|dml|ddl|error
  std::string user;
  std::string role;
  std::string purpose;
  std::string remote;  // empty = local/unknown
  std::string tables;  // comma-joined FROM tables
  std::string sql;     // redacted text
  std::string note;
};

/// Pipe-separated line protocol (fields escaped like the dump format):
///   AUDIT ts|log_id|rule|log_class|query_class|user|role|purpose|remote|tables|sql|note
std::string FormatSinkLine(const SinkRecord& record);

/// Inverse of FormatSinkLine; rejects lines with the wrong prefix or
/// field count (the CI integrity check parses every emitted line).
Result<SinkRecord> ParseSinkLine(const std::string& line);

/// Destination for policy-audit records. Implementations must tolerate
/// concurrent Write calls (the server emits from handler threads).
class PolicySink {
 public:
  virtual ~PolicySink() = default;

  /// Stable name rules reference in their `sink =` clause.
  virtual const std::string& name() const = 0;

  virtual Status Write(const SinkRecord& record) = 0;

  /// Flushes buffered records to the backing store (fsync for files).
  virtual Status Flush() = 0;
};

/// Appends FormatSinkLine records to a file via io::WritableFile.
class FileSink : public PolicySink {
 public:
  /// Opens (appends to) `path`; any directory component must exist.
  static Result<std::unique_ptr<FileSink>> Open(io::Env* env,
                                                const std::string& path,
                                                std::string name = "file");

  const std::string& name() const override { return name_; }
  const std::string& path() const { return path_; }
  Status Write(const SinkRecord& record) override;
  Status Flush() override;

 private:
  FileSink(std::string name, std::string path,
           std::unique_ptr<io::WritableFile> file);

  const std::string name_;
  const std::string path_;
  std::mutex mutex_;
  std::unique_ptr<io::WritableFile> file_;
};

/// Syslog-style single-line sink: RFC3164-flavored header followed by
/// key=value pairs, written to an arbitrary FILE stream (stderr by
/// default, so `auditd --audit-sink-syslog=-` interleaves with server
/// logs the way syslog daemons tail /dev/log).
class SyslogLineSink : public PolicySink {
 public:
  /// `path` of "-" writes to stderr; otherwise appends to the file.
  static Result<std::unique_ptr<SyslogLineSink>> Open(
      io::Env* env, const std::string& path, std::string name = "syslog",
      std::string tag = "auditd");

  const std::string& name() const override { return name_; }
  Status Write(const SinkRecord& record) override;
  Status Flush() override;

  /// The rendered line for a record (exposed for tests).
  static std::string FormatLine(const std::string& tag,
                                const SinkRecord& record);

 private:
  SyslogLineSink(std::string name, std::string tag,
                 std::unique_ptr<io::WritableFile> file);

  const std::string name_;
  const std::string tag_;
  std::mutex mutex_;
  std::unique_ptr<io::WritableFile> file_;  // null = stderr
};

/// Counts records per log-class into the engine's metrics registry —
/// the "existing metrics JSON" sink: no record body leaves the process,
/// only counters surface in the `policy` metrics section.
class MetricsSink : public PolicySink {
 public:
  explicit MetricsSink(service::MetricsRegistry* registry,
                       std::string name = "metrics");

  const std::string& name() const override { return name_; }
  Status Write(const SinkRecord& record) override;
  Status Flush() override { return Status::Ok(); }

 private:
  const std::string name_;
  service::MetricsRegistry* registry_;
};

}  // namespace policy
}  // namespace auditdb

#endif  // AUDITDB_POLICY_SINK_H_
