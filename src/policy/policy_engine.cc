#include "src/policy/policy_engine.h"

#include <algorithm>
#include <mutex>

#include "src/common/string_util.h"
#include "src/sql/lexer.h"

namespace auditdb {
namespace policy {

QueryClass ClassifySql(const std::string& sql, bool execute_failed) {
  if (execute_failed) return QueryClass::kError;
  auto lexed = sql::Lex(sql);
  if (!lexed.ok() || lexed->empty()) return QueryClass::kError;
  const sql::Token& head = (*lexed)[0];
  if (head.IsKeyword("SELECT")) return QueryClass::kSelect;
  if (head.IsKeyword("INSERT") || head.IsKeyword("UPDATE") ||
      head.IsKeyword("DELETE")) {
    return QueryClass::kDml;
  }
  if (head.IsKeyword("CREATE") || head.IsKeyword("DROP") ||
      head.IsKeyword("ALTER")) {
    return QueryClass::kDdl;
  }
  return QueryClass::kError;
}

std::vector<std::string> ExtractTables(const std::string& sql) {
  std::vector<std::string> tables;
  auto lexed = sql::Lex(sql);
  if (!lexed.ok()) return tables;
  const auto& toks = *lexed;
  size_t i = 0;
  while (i < toks.size() && !toks[i].IsKeyword("FROM")) ++i;
  if (i >= toks.size()) return tables;
  ++i;
  // Comma-separated table names until WHERE / end / any non-identifier.
  while (i < toks.size() && toks[i].kind == sql::TokenKind::kIdentifier &&
         !toks[i].IsKeyword("WHERE")) {
    tables.push_back(toks[i].text);
    ++i;
    if (i < toks.size() && toks[i].kind == sql::TokenKind::kComma) {
      ++i;
    } else {
      break;
    }
  }
  return tables;
}

PolicyEngine::PolicyEngine(PolicyEngineOptions options)
    : options_(std::move(options)),
      decisions_(metrics_.counter("decisions")),
      no_match_(metrics_.counter("no_match")),
      suppressed_(metrics_.counter("suppressed_logs")),
      redactions_(metrics_.counter("redactions")),
      display_redactions_(metrics_.counter("display_redactions")),
      records_(metrics_.counter("records")),
      sink_errors_(metrics_.counter("sink_errors")),
      reloads_(metrics_.counter("reloads")),
      reload_failures_(metrics_.counter("reload_failures")),
      rules_gauge_(metrics_.gauge("rules")),
      generation_gauge_(metrics_.gauge("generation")) {
  sinks_.push_back(std::make_unique<MetricsSink>(&metrics_));
  // Start with an installed empty config so Decide works before any
  // Load (nothing matches).
  Status installed = Install(PolicyConfig{});
  (void)installed;  // empty config cannot fail to resolve
}

Status PolicyEngine::AttachSink(std::unique_ptr<PolicySink> sink) {
  if (FindSink(sink->name()) != nullptr) {
    return Status::AlreadyExists("sink '" + sink->name() +
                                 "' already attached");
  }
  sinks_.push_back(std::move(sink));
  return Status::Ok();
}

PolicySink* PolicyEngine::FindSink(const std::string& name) const {
  for (const auto& sink : sinks_) {
    if (sink->name() == name) return sink.get();
  }
  return nullptr;
}

Status PolicyEngine::Install(PolicyConfig config) {
  auto compiled = std::make_shared<CompiledConfig>();
  const size_t n = config.rules.size();
  compiled->rule_redactions.resize(n);
  compiled->rule_sinks.resize(n);
  compiled->rule_hits.resize(n);
  compiled->rule_tables.resize(n);
  compiled->rule_enabled.assign(n, true);

  for (size_t i = 0; i < n; ++i) {
    const RuleConfig& rule = config.rules[i];
    compiled->rule_redactions[i].AddAll(rule.redact);
    compiled->display_redactions.AddAll(rule.redact);
    for (const auto& table : rule.tables) {
      compiled->rule_tables[i].insert(table);
    }
    if (!rule.databases.empty() &&
        std::find(rule.databases.begin(), rule.databases.end(),
                  options_.database_name) == rule.databases.end()) {
      compiled->rule_enabled[i] = false;
    }
    for (const auto& sink_name : rule.sinks) {
      PolicySink* sink = FindSink(sink_name);
      if (sink == nullptr) {
        return Status::InvalidArgument("rule '" + rule.name +
                                       "' routes to unattached sink '" +
                                       sink_name + "'");
      }
      compiled->rule_sinks[i].push_back(sink);
    }
    compiled->rule_hits[i] = metrics_.counter("rule_hits." + rule.name);
    if (compiled->rule_enabled[i]) {
      if (rule.filter.pos_users.empty()) {
        compiled->open_rules.push_back(i);
      } else {
        for (const auto& user : rule.filter.pos_users) {
          auto& slots = compiled->user_rules[user];
          if (slots.empty() || slots.back() != i) slots.push_back(i);
        }
      }
      if (!rule.tables.empty()) compiled->needs_tables = true;
    }
  }
  compiled->config = std::move(config);

  std::unique_lock<std::shared_mutex> lock(snapshot_mutex_);
  compiled->generation = (snapshot_ ? snapshot_->generation : 0) + 1;
  snapshot_ = std::move(compiled);
  rules_gauge_->Set(static_cast<int64_t>(snapshot_->config.rules.size()));
  generation_gauge_->Set(static_cast<int64_t>(snapshot_->generation));
  return Status::Ok();
}

Status PolicyEngine::LoadText(const std::string& text, Timestamp now) {
  auto parsed = ParsePolicyConfig(text, now);
  if (!parsed.ok()) {
    reload_failures_->Increment();
    return parsed.status();
  }
  Status installed = Install(std::move(*parsed));
  if (!installed.ok()) {
    reload_failures_->Increment();
    return installed;
  }
  reloads_->Increment();
  return Status::Ok();
}

Status PolicyEngine::LoadFile(io::Env* env, const std::string& path,
                              Timestamp now) {
  auto text = env->ReadFileToString(path);
  if (!text.ok()) {
    reload_failures_->Increment();
    return text.status();
  }
  Status loaded = LoadText(*text, now);
  if (loaded.ok()) {
    config_env_ = env;
    config_path_ = path;
  }
  return loaded;
}

Status PolicyEngine::Reload(Timestamp now) {
  if (config_env_ == nullptr) {
    return Status::NotFound("no rules file loaded; nothing to reload");
  }
  auto text = config_env_->ReadFileToString(config_path_);
  if (!text.ok()) {
    reload_failures_->Increment();
    return text.status();
  }
  return LoadText(*text, now);
}

PolicyEngine::Decision PolicyEngine::Decide(const QueryContext& ctx) const {
  std::shared_ptr<const CompiledConfig> snapshot;
  {
    std::shared_lock<std::shared_mutex> lock(snapshot_mutex_);
    snapshot = snapshot_;
  }
  decisions_->Increment();

  LoggedQuery probe;
  bool probe_built = false;

  const uint32_t class_bit = QueryClassBit(ctx.query_class);
  const auto& rules = snapshot->config.rules;
  // Merge the user-keyed candidates with the open rules in file order
  // (both lists are ascending), so first-match-wins is unchanged while
  // rules keyed on other users are never even looked at.
  static const std::vector<size_t> kNoCandidates;
  const std::vector<size_t>* keyed = &kNoCandidates;
  auto candidates = snapshot->user_rules.find(ctx.user);
  if (candidates != snapshot->user_rules.end()) keyed = &candidates->second;
  const std::vector<size_t>& open = snapshot->open_rules;
  size_t ki = 0, oi = 0;
  while (ki < keyed->size() || oi < open.size()) {
    size_t i;
    if (oi >= open.size() ||
        (ki < keyed->size() && (*keyed)[ki] < open[oi])) {
      i = (*keyed)[ki++];
    } else {
      i = open[oi++];
    }
    if (!snapshot->rule_enabled[i]) continue;
    const RuleConfig& rule = rules[i];
    if ((rule.class_mask & class_bit) == 0) continue;
    if (!probe_built) {
      probe.sql = ctx.sql;
      probe.timestamp = ctx.timestamp;
      probe.user = ctx.user;
      probe.role = ctx.role;
      probe.purpose = ctx.purpose;
      probe_built = true;
    }
    if (!rule.filter.Admits(probe)) continue;
    if (!snapshot->rule_tables[i].empty()) {
      bool any = false;
      for (const auto& table : ctx.tables) {
        if (snapshot->rule_tables[i].count(table) > 0) {
          any = true;
          break;
        }
      }
      if (!any) continue;
    }
    if (!rule.remotes.empty()) {
      if (ctx.remote.empty()) continue;
      bool any = false;
      for (const auto& remote : rule.remotes) {
        bool is_prefix = !remote.empty() && remote.back() == '.';
        if (is_prefix ? StartsWith(ctx.remote, remote)
                      : ctx.remote == remote) {
          any = true;
          break;
        }
      }
      if (!any) continue;
    }

    snapshot->rule_hits[i]->Increment();
    if (rule.detail == AuditDetail::kNone) suppressed_->Increment();
    Decision decision;
    decision.matched = true;
    decision.detail = rule.detail;
    decision.rule = &rule;
    decision.rule_index = i;
    decision.snapshot = std::move(snapshot);
    return decision;
  }

  no_match_->Increment();
  Decision decision;
  decision.snapshot = std::move(snapshot);
  return decision;
}

Status PolicyEngine::Emit(const Decision& decision, const QueryContext& ctx,
                          int64_t log_id, const std::string& note) {
  if (!decision.matched || decision.rule == nullptr ||
      decision.detail == AuditDetail::kNone) {
    return Status::Ok();
  }
  const CompiledConfig& compiled = *decision.snapshot;
  const RuleConfig& rule = *decision.rule;

  RedactResult redacted =
      RedactSql(ctx.sql, compiled.rule_redactions[decision.rule_index]);
  if (redacted.redactions > 0) redactions_->Increment(redacted.redactions);

  SinkRecord record;
  record.timestamp = ctx.timestamp;
  record.log_id = log_id;
  record.rule = rule.name;
  record.log_class = rule.log_class;
  record.query_class = QueryClassName(ctx.query_class);
  record.user = ctx.user;
  record.role = ctx.role;
  record.purpose = ctx.purpose;
  record.remote = ctx.remote;
  record.tables = Join(ctx.tables, ",");
  record.sql = std::move(redacted.text);
  record.note = note;

  Status first_error = Status::Ok();
  for (PolicySink* sink : compiled.rule_sinks[decision.rule_index]) {
    Status written = sink->Write(record);
    if (!written.ok()) {
      sink_errors_->Increment();
      if (first_error.ok()) first_error = written;
    }
  }
  records_->Increment();
  return first_error;
}

std::string PolicyEngine::RedactForDisplay(const std::string& sql) const {
  std::shared_ptr<const CompiledConfig> snapshot;
  {
    std::shared_lock<std::shared_mutex> lock(snapshot_mutex_);
    snapshot = snapshot_;
  }
  if (snapshot->display_redactions.empty()) return sql;
  RedactResult redacted = RedactSql(sql, snapshot->display_redactions);
  if (redacted.redactions > 0) {
    display_redactions_->Increment(redacted.redactions);
  }
  return std::move(redacted.text);
}

bool PolicyEngine::HasDisplayRedactions() const {
  std::shared_lock<std::shared_mutex> lock(snapshot_mutex_);
  return !snapshot_->display_redactions.empty();
}

bool PolicyEngine::NeedsTables() const {
  std::shared_lock<std::shared_mutex> lock(snapshot_mutex_);
  return snapshot_->needs_tables;
}

Status PolicyEngine::FlushSinks() {
  Status first_error = Status::Ok();
  for (const auto& sink : sinks_) {
    Status flushed = sink->Flush();
    if (!flushed.ok() && first_error.ok()) first_error = flushed;
  }
  return first_error;
}

std::string PolicyEngine::MetricsJson() const { return metrics_.ToJson(); }

size_t PolicyEngine::rule_count() const {
  std::shared_lock<std::shared_mutex> lock(snapshot_mutex_);
  return snapshot_->config.rules.size();
}

uint64_t PolicyEngine::generation() const {
  std::shared_lock<std::shared_mutex> lock(snapshot_mutex_);
  return snapshot_->generation;
}

}  // namespace policy
}  // namespace auditdb
