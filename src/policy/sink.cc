#include "src/policy/sink.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "src/common/string_util.h"
#include "src/io/dump.h"

namespace auditdb {
namespace policy {

namespace {

constexpr char kLinePrefix[] = "AUDIT ";
constexpr size_t kNumFields = 12;

bool ParseInt64(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

}  // namespace

std::string FormatSinkLine(const SinkRecord& record) {
  std::vector<std::string> fields = {
      std::to_string(record.timestamp.micros()),
      std::to_string(record.log_id),
      io::EscapeField(record.rule),
      io::EscapeField(record.log_class),
      io::EscapeField(record.query_class),
      io::EscapeField(record.user),
      io::EscapeField(record.role),
      io::EscapeField(record.purpose),
      io::EscapeField(record.remote),
      io::EscapeField(record.tables),
      io::EscapeField(record.sql),
      io::EscapeField(record.note),
  };
  return kLinePrefix + Join(fields, "|");
}

Result<SinkRecord> ParseSinkLine(const std::string& line) {
  if (!StartsWith(line, kLinePrefix)) {
    return Status::ParseError("sink line lacks AUDIT prefix: '" + line + "'");
  }
  auto fields = Split(line.substr(sizeof(kLinePrefix) - 1), '|');
  if (fields.size() != kNumFields) {
    return Status::ParseError("sink line has " +
                              std::to_string(fields.size()) + " fields, want " +
                              std::to_string(kNumFields));
  }
  SinkRecord record;
  int64_t micros = 0;
  if (!ParseInt64(fields[0], &micros) ||
      !ParseInt64(fields[1], &record.log_id)) {
    return Status::ParseError("sink line has non-numeric ts/log_id");
  }
  record.timestamp = Timestamp(micros);
  auto unescape = [&](size_t i) { return io::UnescapeField(fields[i]); };
  auto rule = unescape(2);
  if (!rule.ok()) return rule.status();
  record.rule = std::move(*rule);
  auto log_class = unescape(3);
  if (!log_class.ok()) return log_class.status();
  record.log_class = std::move(*log_class);
  auto query_class = unescape(4);
  if (!query_class.ok()) return query_class.status();
  record.query_class = std::move(*query_class);
  auto user = unescape(5);
  if (!user.ok()) return user.status();
  record.user = std::move(*user);
  auto role = unescape(6);
  if (!role.ok()) return role.status();
  record.role = std::move(*role);
  auto purpose = unescape(7);
  if (!purpose.ok()) return purpose.status();
  record.purpose = std::move(*purpose);
  auto remote = unescape(8);
  if (!remote.ok()) return remote.status();
  record.remote = std::move(*remote);
  auto tables = unescape(9);
  if (!tables.ok()) return tables.status();
  record.tables = std::move(*tables);
  auto sql = unescape(10);
  if (!sql.ok()) return sql.status();
  record.sql = std::move(*sql);
  auto note = unescape(11);
  if (!note.ok()) return note.status();
  record.note = std::move(*note);
  return record;
}

// FileSink ---------------------------------------------------------------

FileSink::FileSink(std::string name, std::string path,
                   std::unique_ptr<io::WritableFile> file)
    : name_(std::move(name)), path_(std::move(path)), file_(std::move(file)) {}

Result<std::unique_ptr<FileSink>> FileSink::Open(io::Env* env,
                                                 const std::string& path,
                                                 std::string name) {
  AUDITDB_ASSIGN_OR_RETURN(auto file,
                           env->NewWritableFile(path, /*truncate=*/false));
  return std::unique_ptr<FileSink>(
      new FileSink(std::move(name), path, std::move(file)));
}

Status FileSink::Write(const SinkRecord& record) {
  std::string line = FormatSinkLine(record) + "\n";
  std::lock_guard<std::mutex> lock(mutex_);
  return file_->Append(line);
}

Status FileSink::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  return file_->Sync();
}

// SyslogLineSink ---------------------------------------------------------

SyslogLineSink::SyslogLineSink(std::string name, std::string tag,
                               std::unique_ptr<io::WritableFile> file)
    : name_(std::move(name)), tag_(std::move(tag)), file_(std::move(file)) {}

Result<std::unique_ptr<SyslogLineSink>> SyslogLineSink::Open(
    io::Env* env, const std::string& path, std::string name,
    std::string tag) {
  std::unique_ptr<io::WritableFile> file;
  if (path != "-") {
    AUDITDB_ASSIGN_OR_RETURN(file,
                             env->NewWritableFile(path, /*truncate=*/false));
  }
  return std::unique_ptr<SyslogLineSink>(
      new SyslogLineSink(std::move(name), std::move(tag), std::move(file)));
}

std::string SyslogLineSink::FormatLine(const std::string& tag,
                                       const SinkRecord& record) {
  // Syslog messages are single-line; squash any embedded newlines.
  auto squash = [](std::string text) {
    for (char& c : text) {
      if (c == '\n' || c == '\r') c = ' ';
    }
    return text;
  };
  std::string line = "<134>" + record.timestamp.ToString() + " " + tag +
                     ": class=" + squash(record.log_class) +
                     " rule=" + squash(record.rule) +
                     " qclass=" + record.query_class +
                     " log_id=" + std::to_string(record.log_id) +
                     " user=" + squash(record.user) +
                     " role=" + squash(record.role) +
                     " purpose=" + squash(record.purpose);
  if (!record.remote.empty()) line += " remote=" + squash(record.remote);
  if (!record.tables.empty()) line += " tables=" + squash(record.tables);
  line += " sql=\"" + squash(record.sql) + "\"";
  if (!record.note.empty()) line += " note=\"" + squash(record.note) + "\"";
  return line;
}

Status SyslogLineSink::Write(const SinkRecord& record) {
  std::string line = FormatLine(tag_, record) + "\n";
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) {
    fputs(line.c_str(), stderr);
    return Status::Ok();
  }
  return file_->Append(line);
}

Status SyslogLineSink::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) {
    fflush(stderr);
    return Status::Ok();
  }
  return file_->Sync();
}

// MetricsSink ------------------------------------------------------------

MetricsSink::MetricsSink(service::MetricsRegistry* registry, std::string name)
    : name_(std::move(name)), registry_(registry) {}

Status MetricsSink::Write(const SinkRecord& record) {
  registry_->counter("sink.metrics.records")->Increment();
  registry_->counter("sink.metrics.class." + record.log_class)->Increment();
  return Status::Ok();
}

}  // namespace policy
}  // namespace auditdb
