#include "src/policy/policy.h"

namespace auditdb {

bool PrivacyPolicy::Allows(const std::string& role, const std::string& purpose,
                           const ColumnRef& col) const {
  for (const auto& rule : rules_) {
    if (rule.role != role || rule.purpose != purpose) continue;
    if (rule.table != col.table) continue;
    if (rule.columns.empty() || rule.columns.count(col.column) > 0) {
      return true;
    }
  }
  return false;
}

bool PrivacyPolicy::AllowsAll(const std::string& role,
                              const std::string& purpose,
                              const std::set<ColumnRef>& cols) const {
  for (const auto& col : cols) {
    if (!Allows(role, purpose, col)) return false;
  }
  return true;
}

}  // namespace auditdb
