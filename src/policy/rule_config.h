#ifndef AUDITDB_POLICY_RULE_CONFIG_H_
#define AUDITDB_POLICY_RULE_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/timestamp.h"
#include "src/policy/access_filter.h"

namespace auditdb {
namespace policy {

/// Coarse query classification used by rule `class` clauses, in the
/// spirit of pgaudit's log classes (READ/WRITE/DDL/ERROR). Our dialect
/// is SELECT-only today, so DML/DDL mostly classify *attempted*
/// statements; ERROR covers statements the executor rejected.
enum class QueryClass : uint8_t {
  kSelect = 0,
  kDml = 1,
  kDdl = 2,
  kError = 3,
};

/// Bit in a class mask for `c`.
inline uint32_t QueryClassBit(QueryClass c) {
  return 1u << static_cast<uint32_t>(c);
}

/// Mask with every class set (the default when a rule has no `class` key).
constexpr uint32_t kAllClassesMask = 0xF;

const char* QueryClassName(QueryClass c);

/// How much audit work a matching rule requests for the query.
enum class AuditDetail : uint8_t {
  /// Suppress policy logging entirely (the query still executes and is
  /// still appended to the internal query log — policy governs *audit
  /// output*, not the durable log the paper's auditor replays).
  kNone = 0,
  /// Emit a sink record with the (redacted) query text and annotations.
  kLogOnly = 1,
  /// Log-only plus the statically accessed columns (the paper's static
  /// screen input), recorded in the sink line.
  kStaticScreen = 2,
  /// Static-screen plus an online observation against the standing
  /// audit expressions; the sink line records how many fired.
  kFullAudit = 3,
};

const char* AuditDetailName(AuditDetail d);

/// One `[rule NAME]` section of a policy config. Match clauses are
/// conjunctive; list-valued clauses match when any element matches.
/// Empty clauses do not constrain. Principal/time matching (user, role,
/// purpose, during, and their negations) reuses AccessFilter, so
/// negative clauses take precedence exactly as in audit expressions.
struct RuleConfig {
  std::string name;

  /// Principal + time-range matcher (users, role/purpose patterns,
  /// negations, DURING interval).
  AccessFilter filter;

  /// Query classes this rule applies to (default: all).
  uint32_t class_mask = kAllClassesMask;

  /// Databases the rule applies to; empty = any. The engine serves one
  /// database, so non-matching entries disable the rule at load time.
  std::vector<std::string> databases;

  /// Tables: rule matches when any FROM table of the query is listed.
  /// Empty = any. A query whose tables are unknown (e.g. it failed to
  /// parse) does not match a table-constrained rule.
  std::vector<std::string> tables;

  /// Remote hosts: exact peer address, or a prefix when the entry ends
  /// with '.' (e.g. "10.0."). Empty = any; a query with no known peer
  /// (local/in-process) does not match a remote-constrained rule.
  std::vector<std::string> remotes;

  /// Action -----------------------------------------------------------

  AuditDetail detail = AuditDetail::kLogOnly;

  /// Free-form class label stamped on every sink record this rule
  /// emits (pgaudit's AUDIT_TYPE field; useful for grepping sinks).
  std::string log_class = "audit";

  /// Columns whose comparison literals are replaced by the redaction
  /// token in sink records and display/wire renderings. Entries are
  /// `column` or `Table.column`.
  std::vector<std::string> redact;

  /// Sink names this rule routes to (default: {"metrics"}). Names are
  /// resolved against the engine's attached sinks at load time.
  std::vector<std::string> sinks;
};

/// A parsed policy file: ordered rules (first match wins).
struct PolicyConfig {
  std::vector<RuleConfig> rules;

  const RuleConfig* FindRule(const std::string& name) const;
};

/// Parses the pgaudit-style rule config:
///
///   # comment
///   [rule clerk-exports]
///   class        = select, error
///   user         = mallory            # any of a comma list
///   not-user     = admin
///   role         = clerk, contractor  # sugar for role-purpose (r,-)
///   purpose      = export
///   not-role-purpose = (intern,-), (-,debug)
///   during       = 1/1/2008 .. 31/12/2008:23-59-59
///   database     = auditdb
///   table        = P-Health, P-Employ
///   remote       = 10.0., 127.0.0.1
///   detail       = static-screen     # none|log-only|static-screen|full-audit
///   log-class    = export-watch
///   redact       = disease, P-Employ.salary
///   sink         = file, metrics
///
/// Keys may appear once per section; unknown keys, duplicate rule
/// names, keys before any section, and malformed values are errors
/// (with line numbers). `now` anchors relative timestamps (`now()`)
/// in `during` clauses. An empty file parses to zero rules.
Result<PolicyConfig> ParsePolicyConfig(const std::string& text,
                                       Timestamp now);

}  // namespace policy
}  // namespace auditdb

#endif  // AUDITDB_POLICY_RULE_CONFIG_H_
