#include "src/types/value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace auditdb {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kTimestamp:
      return "TIMESTAMP";
  }
  return "UNKNOWN";
}

namespace {

int Sign(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }

int CompareInt64(int64_t a, int64_t b) { return a < b ? -1 : (a > b ? 1 : 0); }

}  // namespace

// The paper writes zipcode both as '118701' and 145568; coercion must be
// identical wherever a STRING meets a numeric.
bool TryParseNumericString(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

Result<int> Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    // NULL equals NULL, otherwise incomparable-as-unequal: callers treat
    // nonzero as "not equal"; ordering with NULL sorts NULL first.
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (type() == other.type()) {
    switch (type()) {
      case ValueType::kBool:
        return CompareInt64(bool_value(), other.bool_value());
      case ValueType::kInt:
        return CompareInt64(int_value(), other.int_value());
      case ValueType::kDouble:
        return Sign(double_value() - other.double_value());
      case ValueType::kString:
        return string_value().compare(other.string_value()) < 0
                   ? -1
                   : (string_value() == other.string_value() ? 0 : 1);
      case ValueType::kTimestamp:
        return CompareInt64(time_value().micros(),
                            other.time_value().micros());
      default:
        break;
    }
  }
  if (IsNumeric() && other.IsNumeric()) {
    return Sign(AsDouble() - other.AsDouble());
  }
  // STRING vs numeric: coerce the string if it is entirely numeric.
  if (type() == ValueType::kString && other.IsNumeric()) {
    double v;
    if (TryParseNumericString(string_value(), &v)) {
      return Sign(v - other.AsDouble());
    }
  }
  if (IsNumeric() && other.type() == ValueType::kString) {
    double v;
    if (TryParseNumericString(other.string_value(), &v)) {
      return Sign(AsDouble() - v);
    }
  }
  return Status::TypeError(std::string("cannot compare ") +
                           ValueTypeName(type()) + " with " +
                           ValueTypeName(other.type()));
}

bool Value::operator<(const Value& other) const {
  if (type() != other.type()) {
    if (IsNumeric() && other.IsNumeric()) {
      double a = AsDouble(), b = other.AsDouble();
      if (a != b) return a < b;
    }
    return static_cast<int>(type()) < static_cast<int>(other.type());
  }
  switch (type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kBool:
      return bool_value() < other.bool_value();
    case ValueType::kInt:
      return int_value() < other.int_value();
    case ValueType::kDouble:
      return double_value() < other.double_value();
    case ValueType::kString:
      return string_value() < other.string_value();
    case ValueType::kTimestamp:
      return time_value() < other.time_value();
  }
  return false;
}

size_t Value::Hash() const {
  auto fnv = [](const void* data, size_t n, size_t seed) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    size_t h = seed;
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
    return h;
  };
  size_t seed = 1469598103934665603ULL + static_cast<size_t>(type());
  switch (type()) {
    case ValueType::kNull:
      return seed;
    case ValueType::kBool: {
      bool b = bool_value();
      return fnv(&b, sizeof(b), seed);
    }
    case ValueType::kInt: {
      int64_t i = int_value();
      return fnv(&i, sizeof(i), seed);
    }
    case ValueType::kDouble: {
      double d = double_value();
      if (d == 0.0) d = 0.0;  // normalize -0.0
      return fnv(&d, sizeof(d), seed);
    }
    case ValueType::kString:
      return fnv(string_value().data(), string_value().size(), seed);
    case ValueType::kTimestamp: {
      int64_t m = time_value().micros();
      return fnv(&m, sizeof(m), seed);
    }
  }
  return seed;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return bool_value() ? "TRUE" : "FALSE";
    case ValueType::kInt:
      return std::to_string(int_value());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", double_value());
      return buf;
    }
    case ValueType::kString:
      return "'" + string_value() + "'";
    case ValueType::kTimestamp:
      return time_value().ToString();
  }
  return "?";
}

std::string Value::ToDisplayString() const {
  if (type() == ValueType::kString) return string_value();
  return ToString();
}

}  // namespace auditdb
