#include "src/types/column_vector.h"

namespace auditdb {

std::vector<size_t> NonNullRows(const Batch& batch,
                                const std::vector<size_t>& columns) {
  std::vector<size_t> out;
  out.reserve(batch.num_rows);
  // Fast path: none of the screened columns has a NULL anywhere.
  bool any_nulls = false;
  for (size_t c : columns) {
    if (batch.columns[c].has_nulls()) {
      any_nulls = true;
      break;
    }
  }
  if (!any_nulls) {
    for (size_t i = 0; i < batch.num_rows; ++i) out.push_back(i);
    return out;
  }
  for (size_t i = 0; i < batch.num_rows; ++i) {
    bool valid = true;
    for (size_t c : columns) {
      if (batch.columns[c].IsNull(i)) {
        valid = false;
        break;
      }
    }
    if (valid) out.push_back(i);
  }
  return out;
}

TidBitmap NonNullBitmap(const Batch& batch,
                        const std::vector<size_t>& columns) {
  TidBitmap out;
  bool any_nulls = false;
  for (size_t c : columns) {
    if (batch.columns[c].has_nulls()) {
      any_nulls = true;
      break;
    }
  }
  if (!any_nulls) {
    // No NULLs anywhere: materialize whole chunks word-at-a-time.
    out.AddRange(0, static_cast<int64_t>(batch.num_rows));
    return out;
  }
  for (size_t i = 0; i < batch.num_rows; ++i) {
    bool valid = true;
    for (size_t c : columns) {
      if (batch.columns[c].IsNull(i)) {
        valid = false;
        break;
      }
    }
    // Rows arrive ascending, so every Add hits the append fast path.
    if (valid) out.Add(static_cast<int64_t>(i));
  }
  return out;
}

}  // namespace auditdb
