#include "src/types/column_vector.h"

namespace auditdb {

std::vector<size_t> NonNullRows(const Batch& batch,
                                const std::vector<size_t>& columns) {
  std::vector<size_t> out;
  out.reserve(batch.num_rows);
  // Fast path: none of the screened columns has a NULL anywhere.
  bool any_nulls = false;
  for (size_t c : columns) {
    if (batch.columns[c].has_nulls()) {
      any_nulls = true;
      break;
    }
  }
  if (!any_nulls) {
    for (size_t i = 0; i < batch.num_rows; ++i) out.push_back(i);
    return out;
  }
  for (size_t i = 0; i < batch.num_rows; ++i) {
    bool valid = true;
    for (size_t c : columns) {
      if (batch.columns[c].IsNull(i)) {
        valid = false;
        break;
      }
    }
    if (valid) out.push_back(i);
  }
  return out;
}

}  // namespace auditdb
