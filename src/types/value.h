#ifndef AUDITDB_TYPES_VALUE_H_
#define AUDITDB_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "src/common/status.h"
#include "src/common/timestamp.h"

namespace auditdb {

/// Column / value type tags.
enum class ValueType {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
  kTimestamp,
};

/// Name of a ValueType ("INT", "STRING", ...).
const char* ValueTypeName(ValueType type);

/// Parses a string that is entirely a decimal number (SQL-style coercion
/// when comparing a STRING with a numeric). Shared by Value::Compare and
/// the compiled predicate programs so both coerce identically.
bool TryParseNumericString(const std::string& s, double* out);

/// A dynamically typed SQL value. Numeric comparisons are cross-type
/// (INT vs DOUBLE compare numerically); all other cross-type comparisons
/// are a type error. NULL compares equal only to NULL (the audit engine
/// uses two-valued logic over complete tuples; base data never stores NULL
/// unless a column is explicitly nullable).
class Value {
 public:
  /// NULL value.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Rep(b)); }
  static Value Int(int64_t i) { return Value(Rep(i)); }
  static Value Double(double d) { return Value(Rep(d)); }
  static Value String(std::string s) { return Value(Rep(std::move(s))); }
  static Value Time(Timestamp t) { return Value(Rep(t)); }

  ValueType type() const {
    return static_cast<ValueType>(rep_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  bool bool_value() const { return std::get<bool>(rep_); }
  int64_t int_value() const { return std::get<int64_t>(rep_); }
  double double_value() const { return std::get<double>(rep_); }
  const std::string& string_value() const { return std::get<std::string>(rep_); }
  Timestamp time_value() const { return std::get<Timestamp>(rep_); }

  /// Numeric view of an INT or DOUBLE value.
  double AsDouble() const {
    return type() == ValueType::kInt ? static_cast<double>(int_value())
                                     : double_value();
  }
  bool IsNumeric() const {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }

  /// Three-way comparison: negative / zero / positive. Type error for
  /// incomparable types (e.g. STRING vs INT).
  Result<int> Compare(const Value& other) const;

  /// Strict equality used by containers: same type and same value
  /// (INT 1 != DOUBLE 1.0 here, unlike SQL `=` which goes via Compare).
  bool operator==(const Value& other) const { return rep_ == other.rep_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order over all values (by type tag, then value); gives
  /// containers a deterministic order even across types.
  bool operator<(const Value& other) const;

  /// Stable hash (FNV-1a based) consistent with operator==.
  size_t Hash() const;

  /// SQL-ish rendering: strings quoted ('abc'), timestamps in the paper's
  /// notation, NULL as "NULL".
  std::string ToString() const;
  /// Raw rendering without quotes (used when printing result tables).
  std::string ToDisplayString() const;

 private:
  using Rep = std::variant<std::monostate, bool, int64_t, double, std::string,
                           Timestamp>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

}  // namespace auditdb

namespace std {

/// Hash delegating to Value::Hash(), consistent with operator==; lets
/// Value key std::unordered_map/set directly.
template <>
struct hash<auditdb::Value> {
  size_t operator()(const auditdb::Value& v) const noexcept {
    return v.Hash();
  }
};

}  // namespace std

#endif  // AUDITDB_TYPES_VALUE_H_
