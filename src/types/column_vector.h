#ifndef AUDITDB_TYPES_COLUMN_VECTOR_H_
#define AUDITDB_TYPES_COLUMN_VECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/tid_bitmap.h"
#include "src/types/value.h"

namespace auditdb {

/// Columnar projection of one column: the cells of a table (or of a
/// materialized fact set) stored contiguously by physical type, so batch
/// operators can run tight typed loops instead of touching a
/// std::variant per cell. A column whose non-null cells all share one
/// type is stored specialized; anything mixed falls back to a generic
/// Value array (same semantics, slower path).
class ColumnVector {
 public:
  /// Physical layout of the cells.
  enum class Layout : uint8_t {
    kInt64,      // INT, in ints()
    kDouble,     // DOUBLE, in doubles()
    kString,     // STRING, in strings()
    kBool,       // BOOL, in ints() as 0/1
    kTimestamp,  // TIMESTAMP, in ints() as micros
    kGeneric,    // mixed types, in generics()
  };

  ColumnVector() = default;

  /// Builds from `n` cells produced by `get(i)` (a const Value&).
  template <typename GetFn>
  static ColumnVector Gather(size_t n, GetFn get) {
    ColumnVector out;
    out.size_ = n;
    // One uniform non-null type -> specialized layout; otherwise generic.
    ValueType uniform = ValueType::kNull;
    bool mixed = false;
    for (size_t i = 0; i < n; ++i) {
      const Value& v = get(i);
      if (v.is_null()) continue;
      if (uniform == ValueType::kNull) {
        uniform = v.type();
      } else if (v.type() != uniform) {
        mixed = true;
        break;
      }
    }
    if (mixed || uniform == ValueType::kNull) {
      // Mixed-typed and all-null columns: no typed array to scan.
      out.layout_ = Layout::kGeneric;
      out.generics_.reserve(n);
      for (size_t i = 0; i < n; ++i) out.generics_.push_back(get(i));
      out.has_nulls_ = false;
      out.nulls_.assign(n, 0);
      for (size_t i = 0; i < n; ++i) {
        if (get(i).is_null()) {
          out.nulls_[i] = 1;
          out.has_nulls_ = true;
        }
      }
      return out;
    }
    out.nulls_.assign(n, 0);
    switch (uniform) {
      case ValueType::kInt:
        out.layout_ = Layout::kInt64;
        out.ints_.resize(n, 0);
        for (size_t i = 0; i < n; ++i) {
          const Value& v = get(i);
          if (v.is_null()) {
            out.nulls_[i] = 1;
            out.has_nulls_ = true;
          } else {
            out.ints_[i] = v.int_value();
          }
        }
        break;
      case ValueType::kDouble:
        out.layout_ = Layout::kDouble;
        out.doubles_.resize(n, 0);
        for (size_t i = 0; i < n; ++i) {
          const Value& v = get(i);
          if (v.is_null()) {
            out.nulls_[i] = 1;
            out.has_nulls_ = true;
          } else {
            out.doubles_[i] = v.double_value();
          }
        }
        break;
      case ValueType::kString:
        out.layout_ = Layout::kString;
        out.strings_.resize(n);
        for (size_t i = 0; i < n; ++i) {
          const Value& v = get(i);
          if (v.is_null()) {
            out.nulls_[i] = 1;
            out.has_nulls_ = true;
          } else {
            out.strings_[i] = v.string_value();
          }
        }
        break;
      case ValueType::kBool:
        out.layout_ = Layout::kBool;
        out.ints_.resize(n, 0);
        for (size_t i = 0; i < n; ++i) {
          const Value& v = get(i);
          if (v.is_null()) {
            out.nulls_[i] = 1;
            out.has_nulls_ = true;
          } else {
            out.ints_[i] = v.bool_value() ? 1 : 0;
          }
        }
        break;
      case ValueType::kTimestamp:
        out.layout_ = Layout::kTimestamp;
        out.ints_.resize(n, 0);
        for (size_t i = 0; i < n; ++i) {
          const Value& v = get(i);
          if (v.is_null()) {
            out.nulls_[i] = 1;
            out.has_nulls_ = true;
          } else {
            out.ints_[i] = v.time_value().micros();
          }
        }
        break;
      default:
        break;
    }
    return out;
  }

  /// Builds from an already materialized value column.
  static ColumnVector FromValues(const std::vector<Value>& column) {
    return Gather(column.size(),
                  [&](size_t i) -> const Value& { return column[i]; });
  }

  Layout layout() const { return layout_; }
  size_t size() const { return size_; }
  bool has_nulls() const { return has_nulls_; }
  bool IsNull(size_t i) const { return nulls_[i] != 0; }

  /// Typed array views; valid only for the matching layout.
  const int64_t* ints() const { return ints_.data(); }
  const double* doubles() const { return doubles_.data(); }
  const std::string* strings() const { return strings_.data(); }
  const Value* generics() const { return generics_.data(); }

  /// Reconstructs the cell as a dynamically typed Value.
  Value ValueAt(size_t i) const {
    if (nulls_[i]) return Value::Null();
    switch (layout_) {
      case Layout::kInt64:
        return Value::Int(ints_[i]);
      case Layout::kDouble:
        return Value::Double(doubles_[i]);
      case Layout::kString:
        return Value::String(strings_[i]);
      case Layout::kBool:
        return Value::Bool(ints_[i] != 0);
      case Layout::kTimestamp:
        return Value::Time(Timestamp(ints_[i]));
      case Layout::kGeneric:
        return generics_[i];
    }
    return Value::Null();
  }

  /// Cell type as the evaluator would see it (kNull for NULL cells).
  ValueType TypeAt(size_t i) const {
    if (nulls_[i]) return ValueType::kNull;
    switch (layout_) {
      case Layout::kInt64:
        return ValueType::kInt;
      case Layout::kDouble:
        return ValueType::kDouble;
      case Layout::kString:
        return ValueType::kString;
      case Layout::kBool:
        return ValueType::kBool;
      case Layout::kTimestamp:
        return ValueType::kTimestamp;
      case Layout::kGeneric:
        return generics_[i].type();
    }
    return ValueType::kNull;
  }

 private:
  Layout layout_ = Layout::kGeneric;
  size_t size_ = 0;
  bool has_nulls_ = false;
  std::vector<uint8_t> nulls_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<Value> generics_;
};

/// A batch of rows in columnar form: one ColumnVector per column plus the
/// row identifiers. This is the unit the scan layer evaluates compiled
/// predicate programs over.
struct Batch {
  size_t num_rows = 0;
  /// Tid of each row; empty for fact batches that have no single tid.
  std::vector<int64_t> tids;
  std::vector<ColumnVector> columns;

  const ColumnVector& column(size_t i) const { return columns[i]; }
  size_t num_columns() const { return columns.size(); }
};

/// Ascending indices of the rows whose cells are non-NULL in every listed
/// column (the audit layers' validity screen for granule schemes).
std::vector<size_t> NonNullRows(const Batch& batch,
                                const std::vector<size_t>& columns);

/// Same validity screen as a compressed row bitmap (row index as tid).
/// Iterates ascending, so converting back to indices reproduces
/// NonNullRows exactly.
TidBitmap NonNullBitmap(const Batch& batch,
                        const std::vector<size_t>& columns);

}  // namespace auditdb

#endif  // AUDITDB_TYPES_COLUMN_VECTOR_H_
