#include "src/backlog/snapshot.h"

namespace auditdb {

Result<Table*> Snapshot::AddTable(TableSchema schema) {
  std::string name = schema.name();
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table already in snapshot: " + name);
  }
  auto table = std::make_unique<Table>(std::move(schema));
  Table* ptr = table.get();
  tables_.emplace(std::move(name), std::move(table));
  return ptr;
}

Result<const Table*> Snapshot::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such table in snapshot: " + name);
  }
  return const_cast<const Table*>(it->second.get());
}

Result<Table*> Snapshot::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such table in snapshot: " + name);
  }
  return it->second.get();
}

DatabaseView Snapshot::View() const {
  DatabaseView view;
  for (const auto& [name, table] : tables_) view.AddTable(table.get());
  return view;
}

}  // namespace auditdb
