#include "src/backlog/backlog.h"

#include <algorithm>

namespace auditdb {

void Backlog::Attach(Database* db) {
  db_ = db;
  db->AddChangeListener(
      [this](const ChangeEvent& event) { events_.Append(event); });
}

std::vector<ChangeEvent> Backlog::EventsForTable(const std::string& table,
                                                 size_t limit) const {
  size_t n = ClampLimit(limit);
  std::vector<ChangeEvent> out;
  for (size_t i = 0; i < n; ++i) {
    const ChangeEvent& e = events_.At(i);
    if (e.table == table) out.push_back(e);
  }
  return out;
}

Result<Snapshot> Backlog::SnapshotAt(Timestamp t, size_t limit) const {
  if (db_ == nullptr) {
    return Status::Internal("backlog not attached to a database");
  }
  size_t n = ClampLimit(limit);
  Snapshot snapshot(t);
  // Create every table the pinned live view knows about (schemas are
  // immutable once created, so the live catalog is authoritative). Going
  // through a pinned Snapshot() keeps this safe against concurrent
  // writers.
  DatabaseView live = db_->Snapshot();
  for (const auto& name : live.TableNames()) {
    auto version = live.GetTable(name);
    if (!version.ok()) return version.status();
    auto added = snapshot.AddTable((*version)->schema());
    if (!added.ok()) return added.status();
  }
  for (size_t i = 0; i < n; ++i) {
    const ChangeEvent& event = events_.At(i);
    if (event.timestamp > t) continue;
    auto table = snapshot.GetTable(event.table);
    if (!table.ok()) return table.status();
    switch (event.op) {
      case ChangeEvent::Op::kInsert:
        AUDITDB_RETURN_IF_ERROR(
            (*table)->InsertWithTid(event.row.tid, event.row.values));
        break;
      case ChangeEvent::Op::kUpdate:
        AUDITDB_RETURN_IF_ERROR(
            (*table)->Update(event.row.tid, event.row.values));
        break;
      case ChangeEvent::Op::kDelete: {
        auto removed = (*table)->Delete(event.row.tid);
        if (!removed.ok()) return removed.status();
        break;
      }
    }
  }
  // Mirror the live tables' secondary indexes (built in bulk after
  // replay), so historical audits get the same access paths.
  for (const auto& name : live.TableNames()) {
    auto version = live.GetTable(name);
    if (!version.ok()) return version.status();
    auto table = snapshot.GetTable(name);
    if (!table.ok()) return table.status();
    for (const auto& column : (*version)->IndexedColumns()) {
      AUDITDB_RETURN_IF_ERROR((*table)->CreateIndex(column));
    }
  }
  return snapshot;
}

Result<std::unique_ptr<Table>> Backlog::MaterializeBacklogTable(
    const std::string& table_name, size_t limit) const {
  if (db_ == nullptr) {
    return Status::Internal("backlog not attached to a database");
  }
  size_t n = ClampLimit(limit);
  DatabaseView live = db_->Snapshot();
  auto base = live.GetTable(table_name);
  if (!base.ok()) return base.status();

  std::vector<Column> columns = {{"op", ValueType::kString},
                                 {"ts", ValueType::kTimestamp},
                                 {"tid", ValueType::kInt}};
  for (const auto& col : (*base)->schema().columns()) {
    columns.push_back(col);
  }
  auto backlog_table = std::make_unique<Table>(
      TableSchema("b-" + table_name, std::move(columns)));
  for (size_t i = 0; i < n; ++i) {
    const ChangeEvent& event = events_.At(i);
    if (event.table != table_name) continue;
    const char* op = event.op == ChangeEvent::Op::kInsert   ? "insert"
                     : event.op == ChangeEvent::Op::kUpdate ? "update"
                                                            : "delete";
    std::vector<Value> row = {Value::String(op), Value::Time(event.timestamp),
                              Value::Int(event.row.tid)};
    row.insert(row.end(), event.row.values.begin(), event.row.values.end());
    auto inserted = backlog_table->Insert(std::move(row));
    if (!inserted.ok()) return inserted.status();
  }
  return backlog_table;
}

size_t Backlog::EventCountAt(Timestamp t, size_t limit) const {
  size_t n = ClampLimit(limit);
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (events_.At(i).timestamp <= t) ++count;
  }
  return count;
}

std::vector<Timestamp> Backlog::VersionTimestamps(const TimeInterval& interval,
                                                  size_t limit) const {
  size_t n = ClampLimit(limit);
  std::vector<Timestamp> stamps;
  stamps.push_back(interval.start);
  for (size_t i = 0; i < n; ++i) {
    const ChangeEvent& event = events_.At(i);
    if (event.timestamp > interval.start && event.timestamp <= interval.end) {
      stamps.push_back(event.timestamp);
    }
  }
  std::sort(stamps.begin(), stamps.end());
  stamps.erase(std::unique(stamps.begin(), stamps.end()), stamps.end());
  return stamps;
}

}  // namespace auditdb
