#include "src/backlog/backlog.h"

#include <algorithm>

namespace auditdb {

void Backlog::Attach(Database* db) {
  db_ = db;
  db->AddChangeListener(
      [this](const ChangeEvent& event) { events_.push_back(event); });
}

std::vector<ChangeEvent> Backlog::EventsForTable(
    const std::string& table) const {
  std::vector<ChangeEvent> out;
  for (const auto& e : events_) {
    if (e.table == table) out.push_back(e);
  }
  return out;
}

Result<Snapshot> Backlog::SnapshotAt(Timestamp t) const {
  if (db_ == nullptr) {
    return Status::Internal("backlog not attached to a database");
  }
  Snapshot snapshot(t);
  // Create every table the live database knows about (schemas are
  // immutable once created, so the live catalog is authoritative).
  for (const auto& name : db_->TableNames()) {
    auto table = db_->GetTable(name);
    if (!table.ok()) return table.status();
    auto added = snapshot.AddTable((*table)->schema());
    if (!added.ok()) return added.status();
  }
  for (const auto& event : events_) {
    if (event.timestamp > t) continue;
    auto table = snapshot.GetTable(event.table);
    if (!table.ok()) return table.status();
    switch (event.op) {
      case ChangeEvent::Op::kInsert:
        AUDITDB_RETURN_IF_ERROR(
            (*table)->InsertWithTid(event.row.tid, event.row.values));
        break;
      case ChangeEvent::Op::kUpdate:
        AUDITDB_RETURN_IF_ERROR(
            (*table)->Update(event.row.tid, event.row.values));
        break;
      case ChangeEvent::Op::kDelete: {
        auto removed = (*table)->Delete(event.row.tid);
        if (!removed.ok()) return removed.status();
        break;
      }
    }
  }
  // Mirror the live tables' secondary indexes (built in bulk after
  // replay), so historical audits get the same access paths.
  for (const auto& name : db_->TableNames()) {
    auto live = db_->GetTable(name);
    if (!live.ok()) return live.status();
    auto table = snapshot.GetTable(name);
    if (!table.ok()) return table.status();
    for (const auto& column : (*live)->IndexedColumns()) {
      AUDITDB_RETURN_IF_ERROR((*table)->CreateIndex(column));
    }
  }
  return snapshot;
}

Result<Table> Backlog::MaterializeBacklogTable(
    const std::string& table_name) const {
  if (db_ == nullptr) {
    return Status::Internal("backlog not attached to a database");
  }
  auto base = db_->GetTable(table_name);
  if (!base.ok()) return base.status();

  std::vector<Column> columns = {{"op", ValueType::kString},
                                 {"ts", ValueType::kTimestamp},
                                 {"tid", ValueType::kInt}};
  for (const auto& col : (*base)->schema().columns()) {
    columns.push_back(col);
  }
  Table backlog_table(TableSchema("b-" + table_name, std::move(columns)));
  for (const auto& event : events_) {
    if (event.table != table_name) continue;
    const char* op = event.op == ChangeEvent::Op::kInsert   ? "insert"
                     : event.op == ChangeEvent::Op::kUpdate ? "update"
                                                            : "delete";
    std::vector<Value> row = {Value::String(op), Value::Time(event.timestamp),
                              Value::Int(event.row.tid)};
    row.insert(row.end(), event.row.values.begin(), event.row.values.end());
    auto inserted = backlog_table.Insert(std::move(row));
    if (!inserted.ok()) return inserted.status();
  }
  return backlog_table;
}

size_t Backlog::EventCountAt(Timestamp t) const {
  size_t count = 0;
  for (const auto& event : events_) {
    if (event.timestamp <= t) ++count;
  }
  return count;
}

std::vector<Timestamp> Backlog::VersionTimestamps(
    const TimeInterval& interval) const {
  std::vector<Timestamp> stamps;
  stamps.push_back(interval.start);
  for (const auto& event : events_) {
    if (event.timestamp > interval.start &&
        event.timestamp <= interval.end) {
      stamps.push_back(event.timestamp);
    }
  }
  std::sort(stamps.begin(), stamps.end());
  stamps.erase(std::unique(stamps.begin(), stamps.end()), stamps.end());
  return stamps;
}

}  // namespace auditdb
