#ifndef AUDITDB_BACKLOG_SNAPSHOT_H_
#define AUDITDB_BACKLOG_SNAPSHOT_H_

#include <map>
#include <memory>
#include <string>

#include "src/common/timestamp.h"
#include "src/storage/database.h"

namespace auditdb {

/// A materialized past database state, reconstructed by the backlog. Owns
/// its tables; View() exposes them to the executor exactly like a live
/// database, so queries and audit target views run unchanged on history.
class Snapshot {
 public:
  explicit Snapshot(Timestamp time) : time_(time) {}

  Snapshot(Snapshot&&) = default;
  Snapshot& operator=(Snapshot&&) = default;

  Timestamp time() const { return time_; }

  /// Adds an (empty) table with the given schema; returns it for filling.
  Result<Table*> AddTable(TableSchema schema);

  Result<const Table*> GetTable(const std::string& name) const;
  Result<Table*> GetTable(const std::string& name);

  /// Read view over all tables in the snapshot.
  DatabaseView View() const;

 private:
  Timestamp time_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace auditdb

#endif  // AUDITDB_BACKLOG_SNAPSHOT_H_
