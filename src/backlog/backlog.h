#ifndef AUDITDB_BACKLOG_BACKLOG_H_
#define AUDITDB_BACKLOG_BACKLOG_H_

#include <string>
#include <vector>

#include "src/backlog/snapshot.h"
#include "src/common/timestamp.h"
#include "src/storage/database.h"

namespace auditdb {

/// The paper's backlog mechanism: database triggers record every insert,
/// update and delete into per-table backlog relations (b-<table>), from
/// which the state of the database at any past point in time can be
/// recovered. Attach() must run before data is loaded so the event stream
/// is complete.
class Backlog {
 public:
  Backlog() = default;
  Backlog(const Backlog&) = delete;
  Backlog& operator=(const Backlog&) = delete;

  /// Hooks this backlog into `db`'s trigger stream and remembers `db` for
  /// schema lookup. `db` must outlive the backlog.
  void Attach(Database* db);

  /// All captured events, in capture order (timestamps are monotone
  /// per well-behaved callers, but replay uses capture order so equal
  /// timestamps are handled deterministically).
  const std::vector<ChangeEvent>& events() const { return events_; }

  /// Events for one table, in capture order — the contents of the paper's
  /// b-<table> backlog relation.
  std::vector<ChangeEvent> EventsForTable(const std::string& table) const;

  /// Materializes the paper's b-<table> backlog relation as an ordinary
  /// queryable table named `b-<table>`, with schema
  ///   (op STRING, ts TIMESTAMP, tid INT, <original columns>)
  /// and one row per captured event (the after-image for inserts and
  /// updates, the before-image for deletes). The auditor's queries like
  /// `SELECT zipcode FROM b-Patients` run on it through the normal
  /// executor via View()/DatabaseView.
  Result<Table> MaterializeBacklogTable(const std::string& table) const;

  /// Reconstructs the state of every table at time `t` (all events with
  /// timestamp <= t applied, in capture order).
  Result<Snapshot> SnapshotAt(Timestamp t) const;

  /// Number of captured events with timestamp <= t. Two timestamps with
  /// equal counts see the identical database state, so this is a cheap
  /// snapshot-cache key for the auditor.
  size_t EventCountAt(Timestamp t) const;

  /// The timestamps at which a distinct database version exists within the
  /// closed interval: the state at `interval.start` plus the state after
  /// each captured change in (start, end]. This is the version set the
  /// audit DATA-INTERVAL clause ranges over.
  std::vector<Timestamp> VersionTimestamps(const TimeInterval& interval) const;

 private:
  Database* db_ = nullptr;
  std::vector<ChangeEvent> events_;
};

}  // namespace auditdb

#endif  // AUDITDB_BACKLOG_BACKLOG_H_
