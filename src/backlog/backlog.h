#ifndef AUDITDB_BACKLOG_BACKLOG_H_
#define AUDITDB_BACKLOG_BACKLOG_H_

#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/backlog/snapshot.h"
#include "src/common/append_log.h"
#include "src/common/timestamp.h"
#include "src/storage/database.h"

namespace auditdb {

/// The paper's backlog mechanism: database triggers record every insert,
/// update and delete into per-table backlog relations (b-<table>), from
/// which the state of the database at any past point in time can be
/// recovered. Attach() must run before data is loaded so the event stream
/// is complete.
///
/// Events live in an append-only chunked log: audits read any prefix
/// wait-free while the writer keeps appending. A pinned audit captures
/// event_count() once and passes it as `limit` to the replay entry points
/// below, so the whole audit sees one frozen backlog no matter how many
/// writes land meanwhile.
class Backlog {
 public:
  /// "No limit": read the backlog up to its current published size.
  static constexpr size_t kNoLimit = std::numeric_limits<size_t>::max();

  Backlog() = default;
  Backlog(const Backlog&) = delete;
  Backlog& operator=(const Backlog&) = delete;

  /// Hooks this backlog into `db`'s trigger stream and remembers `db` for
  /// schema lookup. `db` must outlive the backlog.
  void Attach(Database* db);

  /// Number of events captured so far. Everything below this index is
  /// immutable and safe to read concurrently with appends.
  size_t event_count() const { return events_.size(); }

  /// Event `i` (capture order); the caller must have observed
  /// event_count() > i.
  const ChangeEvent& EventAt(size_t i) const { return events_.At(i); }

  /// Events for one table, in capture order — the contents of the paper's
  /// b-<table> backlog relation. Only the first min(limit, event_count())
  /// events are considered.
  std::vector<ChangeEvent> EventsForTable(const std::string& table,
                                          size_t limit = kNoLimit) const;

  /// Materializes the paper's b-<table> backlog relation as an ordinary
  /// queryable table named `b-<table>`, with schema
  ///   (op STRING, ts TIMESTAMP, tid INT, <original columns>)
  /// and one row per captured event (the after-image for inserts and
  /// updates, the before-image for deletes). The auditor's queries like
  /// `SELECT zipcode FROM b-Patients` run on it through the normal
  /// executor via View()/DatabaseView.
  Result<std::unique_ptr<Table>> MaterializeBacklogTable(
      const std::string& table, size_t limit = kNoLimit) const;

  /// Reconstructs the state of every table at time `t` (all events with
  /// timestamp <= t applied, in capture order, drawn from the first
  /// min(limit, event_count()) events).
  Result<Snapshot> SnapshotAt(Timestamp t, size_t limit = kNoLimit) const;

  /// Number of captured events with timestamp <= t among the first
  /// min(limit, event_count()). Two timestamps with equal counts see the
  /// identical database state, so this is a cheap snapshot-cache key for
  /// the auditor.
  size_t EventCountAt(Timestamp t, size_t limit = kNoLimit) const;

  /// The timestamps at which a distinct database version exists within the
  /// closed interval: the state at `interval.start` plus the state after
  /// each captured change in (start, end]. This is the version set the
  /// audit DATA-INTERVAL clause ranges over.
  std::vector<Timestamp> VersionTimestamps(const TimeInterval& interval,
                                           size_t limit = kNoLimit) const;

 private:
  size_t ClampLimit(size_t limit) const {
    size_t published = events_.size();
    return limit < published ? limit : published;
  }

  Database* db_ = nullptr;
  AppendOnlyLog<ChangeEvent> events_;
};

}  // namespace auditdb

#endif  // AUDITDB_BACKLOG_BACKLOG_H_
