#include "src/storage/table.h"

#include <algorithm>

namespace auditdb {

std::string TidToString(Tid tid) { return "t" + std::to_string(tid); }

Status Table::CheckArity(const std::vector<Value>& values) const {
  if (values.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(values.size()) + " does not match " +
        schema_.name() + " schema arity " +
        std::to_string(schema_.num_columns()));
  }
  return Status::Ok();
}

void Table::InvalidateColumnar() {
  ++mutation_count_;
  if (!columnar_) return;  // moved-from shell
  std::lock_guard<std::mutex> lock(columnar_->mu);
  columnar_->batch.reset();
}

std::shared_ptr<const Batch> Table::Columnar() const {
  if (!columnar_) columnar_ = std::make_shared<ColumnarSlot>();
  std::lock_guard<std::mutex> lock(columnar_->mu);
  if (!columnar_->batch) {
    auto batch = std::make_shared<Batch>();
    batch->num_rows = rows_.size();
    batch->tids.reserve(rows_.size());
    for (const Row& row : rows_) batch->tids.push_back(row.tid);
    batch->columns.reserve(schema_.num_columns());
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      batch->columns.push_back(ColumnVector::Gather(
          rows_.size(),
          [&](size_t i) -> const Value& { return rows_[i].values[c]; }));
    }
    columnar_->batch = std::move(batch);
  }
  return columnar_->batch;
}

Result<Tid> Table::Insert(std::vector<Value> values) {
  AUDITDB_RETURN_IF_ERROR(CheckArity(values));
  Tid tid = next_tid_++;
  index_[tid] = rows_.size();
  rows_.push_back(Row{tid, std::move(values)});
  IndexInsert(rows_.back());
  InvalidateColumnar();
  return tid;
}

Status Table::InsertWithTid(Tid tid, std::vector<Value> values) {
  AUDITDB_RETURN_IF_ERROR(CheckArity(values));
  if (index_.count(tid) > 0) {
    return Status::AlreadyExists("tid " + TidToString(tid) +
                                 " already present in " + schema_.name());
  }
  index_[tid] = rows_.size();
  rows_.push_back(Row{tid, std::move(values)});
  if (tid >= next_tid_) next_tid_ = tid + 1;
  IndexInsert(rows_.back());
  InvalidateColumnar();
  return Status::Ok();
}

Status Table::Update(Tid tid, std::vector<Value> values) {
  AUDITDB_RETURN_IF_ERROR(CheckArity(values));
  auto it = index_.find(tid);
  if (it == index_.end()) {
    return Status::NotFound("no tid " + TidToString(tid) + " in " +
                            schema_.name());
  }
  IndexRemove(rows_[it->second]);
  rows_[it->second].values = std::move(values);
  IndexInsert(rows_[it->second]);
  InvalidateColumnar();
  return Status::Ok();
}

Status Table::UpdateColumn(Tid tid, const std::string& column, Value value) {
  auto col = schema_.FindColumn(column);
  if (!col.has_value()) {
    return Status::NotFound("no column '" + column + "' in " +
                            schema_.name());
  }
  auto it = index_.find(tid);
  if (it == index_.end()) {
    return Status::NotFound("no tid " + TidToString(tid) + " in " +
                            schema_.name());
  }
  IndexRemove(rows_[it->second]);
  rows_[it->second].values[*col] = std::move(value);
  IndexInsert(rows_[it->second]);
  InvalidateColumnar();
  return Status::Ok();
}

Result<Row> Table::Delete(Tid tid) {
  auto it = index_.find(tid);
  if (it == index_.end()) {
    return Status::NotFound("no tid " + TidToString(tid) + " in " +
                            schema_.name());
  }
  size_t pos = it->second;
  IndexRemove(rows_[pos]);
  Row before = std::move(rows_[pos]);
  // Stable removal: keeps insertion order deterministic (result sets and
  // granule listings are order-sensitive in tests and paper artifacts).
  rows_.erase(rows_.begin() + static_cast<ptrdiff_t>(pos));
  index_.erase(it);
  for (auto& [t, p] : index_) {
    if (p > pos) --p;
  }
  InvalidateColumnar();
  return before;
}

Result<const Row*> Table::Get(Tid tid) const {
  auto it = index_.find(tid);
  if (it == index_.end()) {
    return Status::NotFound("no tid " + TidToString(tid) + " in " +
                            schema_.name());
  }
  return &rows_[it->second];
}

void Table::ReserveTidsThrough(Tid tid) {
  if (tid >= next_tid_) next_tid_ = tid + 1;
}

std::vector<std::string> Table::IndexedColumns() const {
  std::vector<std::string> out;
  out.reserve(secondary_.size());
  for (const auto& [column, by_value] : secondary_) out.push_back(column);
  return out;
}

Status Table::CreateIndex(const std::string& column) {
  auto col = schema_.FindColumn(column);
  if (!col.has_value()) {
    return Status::NotFound("no column '" + column + "' in " +
                            schema_.name());
  }
  if (secondary_.count(column) > 0) return Status::Ok();
  auto& by_value = secondary_[column];
  for (const auto& row : rows_) {
    by_value[row.values[*col]].push_back(row.tid);
  }
  return Status::Ok();
}

void Table::IndexInsert(const Row& row) {
  for (auto& [column, by_value] : secondary_) {
    auto col = schema_.FindColumn(column);
    if (col.has_value()) by_value[row.values[*col]].push_back(row.tid);
  }
}

void Table::IndexRemove(const Row& row) {
  for (auto& [column, by_value] : secondary_) {
    auto col = schema_.FindColumn(column);
    if (!col.has_value()) continue;
    auto it = by_value.find(row.values[*col]);
    if (it == by_value.end()) continue;
    auto& tids = it->second;
    tids.erase(std::remove(tids.begin(), tids.end(), row.tid), tids.end());
    if (tids.empty()) by_value.erase(it);
  }
}

std::vector<Tid> Table::InRowOrder(std::vector<Tid> tids) const {
  std::sort(tids.begin(), tids.end(), [this](Tid a, Tid b) {
    return index_.at(a) < index_.at(b);
  });
  return tids;
}

Result<std::vector<Tid>> Table::IndexLookupEq(const std::string& column,
                                              const Value& value) const {
  auto it = secondary_.find(column);
  if (it == secondary_.end()) {
    return Status::NotFound("no index on " + schema_.name() + "." + column);
  }
  auto hit = it->second.find(value);
  if (hit == it->second.end()) return std::vector<Tid>{};
  return InRowOrder(hit->second);
}

Result<std::vector<Tid>> Table::IndexLookupRange(
    const std::string& column, const std::optional<IndexBound>& lower,
    const std::optional<IndexBound>& upper) const {
  auto it = secondary_.find(column);
  if (it == secondary_.end()) {
    return Status::NotFound("no index on " + schema_.name() + "." + column);
  }
  const auto& by_value = it->second;
  auto begin = by_value.begin();
  auto end = by_value.end();
  if (lower.has_value()) {
    begin = lower->strict ? by_value.upper_bound(lower->value)
                          : by_value.lower_bound(lower->value);
  }
  std::vector<Tid> tids;
  for (auto cursor = begin; cursor != end; ++cursor) {
    if (upper.has_value()) {
      auto cmp = cursor->first.Compare(upper->value);
      if (!cmp.ok()) break;  // heterogeneous tail: stop (same-typed only)
      if (*cmp > 0 || (*cmp == 0 && upper->strict)) break;
    }
    tids.insert(tids.end(), cursor->second.begin(), cursor->second.end());
  }
  return InRowOrder(tids);
}

}  // namespace auditdb
