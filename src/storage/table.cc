#include "src/storage/table.h"

#include <algorithm>

namespace auditdb {

std::string TidToString(Tid tid) { return "t" + std::to_string(tid); }

// ---------------------------------------------------------------------------
// RowStore

void RowStore::ChargeCopy(const Segment& segment) {
  if (!stats_) return;
  uint64_t bytes = 0;
  for (const Row& row : segment.rows) {
    bytes += sizeof(Row) + row.values.size() * sizeof(Value);
  }
  stats_->cow_rows.fetch_add(segment.rows.size(), std::memory_order_relaxed);
  stats_->cow_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

RowStore::Segment* RowStore::Owned(size_t index) {
  std::shared_ptr<Segment>& slot = segments_[index];
  // use_count() > 1 means a published TableVersion still shares this
  // segment. Safe as a discriminator: mutators are serialized against
  // version publishing by the Database writer lock, and a version that
  // pinned the segment keeps the count above 1 for as long as it is alive
  // (a concurrent reader-side release can at worst leave the count
  // transiently high, causing a harmless extra copy).
  if (slot.use_count() > 1) {
    auto copy = std::make_shared<Segment>();
    copy->rows.reserve(kSegmentRows);
    copy->rows.insert(copy->rows.end(), slot->rows.begin(), slot->rows.end());
    ChargeCopy(*copy);
    slot = std::move(copy);
  }
  return slot.get();
}

void RowStore::PushBack(Row row) {
  size_t seg_index = size_ >> kSegmentBits;
  if (seg_index == segments_.size()) {
    auto segment = std::make_shared<Segment>();
    segment->rows.reserve(kSegmentRows);
    segments_.push_back(std::move(segment));
  }
  Owned(seg_index)->rows.push_back(std::move(row));
  ++size_;
}

Row& RowStore::MutableAt(size_t pos) {
  return Owned(pos >> kSegmentBits)->rows[pos & kSegmentMask];
}

void RowStore::EraseStable(size_t pos) {
  for (size_t p = pos; p + 1 < size_; ++p) {
    MutableAt(p) = std::move(MutableAt(p + 1));
  }
  Segment* last = Owned((size_ - 1) >> kSegmentBits);
  last->rows.pop_back();
  --size_;
  if (last->rows.empty()) segments_.pop_back();
}

// ---------------------------------------------------------------------------
// Shared index-lookup machinery (Table and TableVersion expose identical
// read paths over the same map structures).

namespace {

std::vector<Tid> InRowOrder(const TidIndex& index, std::vector<Tid> tids) {
  std::sort(tids.begin(), tids.end(),
            [&index](Tid a, Tid b) { return index.at(a) < index.at(b); });
  return tids;
}

std::vector<std::string> IndexedColumnNames(const SecondaryIndexes& secondary) {
  std::vector<std::string> out;
  out.reserve(secondary.size());
  for (const auto& [column, by_value] : secondary) out.push_back(column);
  return out;
}

Result<std::vector<Tid>> LookupEq(const SecondaryIndexes& secondary,
                                  const TidIndex& index,
                                  const std::string& table_name,
                                  const std::string& column,
                                  const Value& value) {
  auto it = secondary.find(column);
  if (it == secondary.end()) {
    return Status::NotFound("no index on " + table_name + "." + column);
  }
  auto hit = it->second.find(value);
  if (hit == it->second.end()) return std::vector<Tid>{};
  return InRowOrder(index, hit->second);
}

Result<std::vector<Tid>> LookupRange(const SecondaryIndexes& secondary,
                                     const TidIndex& index,
                                     const std::string& table_name,
                                     const std::string& column,
                                     const std::optional<IndexBound>& lower,
                                     const std::optional<IndexBound>& upper) {
  auto it = secondary.find(column);
  if (it == secondary.end()) {
    return Status::NotFound("no index on " + table_name + "." + column);
  }
  const auto& by_value = it->second;
  auto begin = by_value.begin();
  auto end = by_value.end();
  if (lower.has_value()) {
    begin = lower->strict ? by_value.upper_bound(lower->value)
                          : by_value.lower_bound(lower->value);
  }
  std::vector<Tid> tids;
  for (auto cursor = begin; cursor != end; ++cursor) {
    if (upper.has_value()) {
      auto cmp = cursor->first.Compare(upper->value);
      if (!cmp.ok()) break;  // heterogeneous tail: stop (same-typed only)
      if (*cmp > 0 || (*cmp == 0 && upper->strict)) break;
    }
    tids.insert(tids.end(), cursor->second.begin(), cursor->second.end());
  }
  return InRowOrder(index, tids);
}

std::shared_ptr<const Batch> BuildColumnar(const TableSchema& schema,
                                           const RowStore& rows) {
  auto batch = std::make_shared<Batch>();
  batch->num_rows = rows.size();
  batch->tids.reserve(rows.size());
  for (const Row& row : rows) batch->tids.push_back(row.tid);
  batch->columns.reserve(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    batch->columns.push_back(ColumnVector::Gather(
        rows.size(), [&](size_t i) -> const Value& { return rows[i].values[c]; }));
  }
  return batch;
}

}  // namespace

// ---------------------------------------------------------------------------
// Table (write side)

Table::Table(TableSchema schema)
    : schema_(std::make_shared<const TableSchema>(std::move(schema))),
      index_(std::make_shared<TidIndex>()),
      secondary_(std::make_shared<SecondaryIndexes>()),
      stats_(std::make_shared<TableStats>()) {
  rows_.SetStats(stats_);
}

Status Table::CheckArity(const std::vector<Value>& values) const {
  if (values.size() != schema_->num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(values.size()) + " does not match " +
        schema_->name() + " schema arity " +
        std::to_string(schema_->num_columns()));
  }
  return Status::Ok();
}

void Table::BeginWrite() {
  // Retire the cached current version before touching storage: if no
  // audit pinned it, this drops the version's shared handles and the
  // mutation below can work in place instead of copying.
  std::lock_guard<std::mutex> lock(version_mu_);
  current_.reset();
}

void Table::BumpEpoch() {
  // Release pairs with the acquire in epoch(): a reader that observed
  // epoch E sees the storage effects of the first E mutations.
  epoch_.fetch_add(1, std::memory_order_release);
}

TidIndex* Table::OwnedIndex() {
  if (index_.use_count() > 1) {
    index_ = std::make_shared<TidIndex>(*index_);
  }
  return index_.get();
}

SecondaryIndexes* Table::OwnedSecondary() {
  if (secondary_.use_count() > 1) {
    secondary_ = std::make_shared<SecondaryIndexes>(*secondary_);
  }
  return secondary_.get();
}

std::shared_ptr<const TableVersion> Table::CurrentVersion() const {
  std::lock_guard<std::mutex> lock(version_mu_);
  if (!current_) {
    stats_->versions_published.fetch_add(1, std::memory_order_relaxed);
    current_ = std::make_shared<const TableVersion>(
        schema_, epoch_.load(std::memory_order_acquire), rows_, index_,
        secondary_, stats_);
  }
  return current_;
}

std::shared_ptr<const Batch> Table::Columnar() const {
  return CurrentVersion()->Columnar();
}

Result<Tid> Table::Insert(std::vector<Value> values) {
  AUDITDB_RETURN_IF_ERROR(CheckArity(values));
  BeginWrite();
  Tid tid = next_tid_++;
  (*OwnedIndex())[tid] = rows_.size();
  rows_.PushBack(Row{tid, std::move(values)});
  IndexInsert(rows_[rows_.size() - 1]);
  BumpEpoch();
  return tid;
}

Status Table::InsertWithTid(Tid tid, std::vector<Value> values) {
  AUDITDB_RETURN_IF_ERROR(CheckArity(values));
  if (index_->count(tid) > 0) {
    return Status::AlreadyExists("tid " + TidToString(tid) +
                                 " already present in " + schema_->name());
  }
  BeginWrite();
  (*OwnedIndex())[tid] = rows_.size();
  rows_.PushBack(Row{tid, std::move(values)});
  if (tid >= next_tid_) next_tid_ = tid + 1;
  IndexInsert(rows_[rows_.size() - 1]);
  BumpEpoch();
  return Status::Ok();
}

Status Table::Update(Tid tid, std::vector<Value> values) {
  AUDITDB_RETURN_IF_ERROR(CheckArity(values));
  auto it = index_->find(tid);
  if (it == index_->end()) {
    return Status::NotFound("no tid " + TidToString(tid) + " in " +
                            schema_->name());
  }
  size_t pos = it->second;
  BeginWrite();
  IndexRemove(rows_[pos]);
  rows_.MutableAt(pos).values = std::move(values);
  IndexInsert(rows_[pos]);
  BumpEpoch();
  return Status::Ok();
}

Status Table::UpdateColumn(Tid tid, const std::string& column, Value value) {
  auto col = schema_->FindColumn(column);
  if (!col.has_value()) {
    return Status::NotFound("no column '" + column + "' in " +
                            schema_->name());
  }
  auto it = index_->find(tid);
  if (it == index_->end()) {
    return Status::NotFound("no tid " + TidToString(tid) + " in " +
                            schema_->name());
  }
  size_t pos = it->second;
  BeginWrite();
  IndexRemove(rows_[pos]);
  rows_.MutableAt(pos).values[*col] = std::move(value);
  IndexInsert(rows_[pos]);
  BumpEpoch();
  return Status::Ok();
}

Result<Row> Table::Delete(Tid tid) {
  auto it = index_->find(tid);
  if (it == index_->end()) {
    return Status::NotFound("no tid " + TidToString(tid) + " in " +
                            schema_->name());
  }
  size_t pos = it->second;
  BeginWrite();
  IndexRemove(rows_[pos]);
  Row before = std::move(rows_.MutableAt(pos));
  // Stable removal: keeps insertion order deterministic (result sets and
  // granule listings are order-sensitive in tests and paper artifacts).
  rows_.EraseStable(pos);
  TidIndex* index = OwnedIndex();
  index->erase(tid);
  for (auto& [t, p] : *index) {
    if (p > pos) --p;
  }
  BumpEpoch();
  return before;
}

Result<const Row*> Table::Get(Tid tid) const {
  auto it = index_->find(tid);
  if (it == index_->end()) {
    return Status::NotFound("no tid " + TidToString(tid) + " in " +
                            schema_->name());
  }
  return &rows_[it->second];
}

void Table::ReserveTidsThrough(Tid tid) {
  if (tid >= next_tid_) next_tid_ = tid + 1;
}

std::vector<std::string> Table::IndexedColumns() const {
  return IndexedColumnNames(*secondary_);
}

Status Table::CreateIndex(const std::string& column) {
  auto col = schema_->FindColumn(column);
  if (!col.has_value()) {
    return Status::NotFound("no column '" + column + "' in " +
                            schema_->name());
  }
  if (secondary_->count(column) > 0) return Status::Ok();
  // Retire the cached version so new snapshots see the index, but keep the
  // epoch: building an access path changes no data, so epoch-keyed
  // decisions stay valid.
  BeginWrite();
  auto& by_value = (*OwnedSecondary())[column];
  for (const auto& row : rows_) {
    by_value[row.values[*col]].push_back(row.tid);
  }
  return Status::Ok();
}

void Table::IndexInsert(const Row& row) {
  if (secondary_->empty()) return;
  for (auto& [column, by_value] : *OwnedSecondary()) {
    auto col = schema_->FindColumn(column);
    if (col.has_value()) by_value[row.values[*col]].push_back(row.tid);
  }
}

void Table::IndexRemove(const Row& row) {
  if (secondary_->empty()) return;
  for (auto& [column, by_value] : *OwnedSecondary()) {
    auto col = schema_->FindColumn(column);
    if (!col.has_value()) continue;
    auto it = by_value.find(row.values[*col]);
    if (it == by_value.end()) continue;
    auto& tids = it->second;
    tids.erase(std::remove(tids.begin(), tids.end(), row.tid), tids.end());
    if (tids.empty()) by_value.erase(it);
  }
}

Result<std::vector<Tid>> Table::IndexLookupEq(const std::string& column,
                                              const Value& value) const {
  return LookupEq(*secondary_, *index_, schema_->name(), column, value);
}

Result<std::vector<Tid>> Table::IndexLookupRange(
    const std::string& column, const std::optional<IndexBound>& lower,
    const std::optional<IndexBound>& upper) const {
  return LookupRange(*secondary_, *index_, schema_->name(), column, lower,
                     upper);
}

// ---------------------------------------------------------------------------
// TableVersion (read side)

TableVersion::TableVersion(std::shared_ptr<const TableSchema> schema,
                           uint64_t epoch, RowStore rows,
                           std::shared_ptr<const TidIndex> index,
                           std::shared_ptr<const SecondaryIndexes> secondary,
                           std::shared_ptr<TableStats> stats)
    : schema_(std::move(schema)),
      epoch_(epoch),
      rows_(std::move(rows)),
      index_(std::move(index)),
      secondary_(std::move(secondary)),
      stats_(std::move(stats)) {
  if (stats_) stats_->live_versions.fetch_add(1, std::memory_order_relaxed);
}

TableVersion::~TableVersion() {
  if (stats_) stats_->live_versions.fetch_sub(1, std::memory_order_relaxed);
}

Result<const Row*> TableVersion::Get(Tid tid) const {
  auto it = index_->find(tid);
  if (it == index_->end()) {
    return Status::NotFound("no tid " + TidToString(tid) + " in " +
                            schema_->name());
  }
  return &rows_[it->second];
}

Result<size_t> TableVersion::GetPosition(Tid tid) const {
  auto it = index_->find(tid);
  if (it == index_->end()) {
    return Status::NotFound("no tid " + TidToString(tid) + " in " +
                            schema_->name());
  }
  return it->second;
}

std::shared_ptr<const Batch> TableVersion::Columnar() const {
  std::lock_guard<std::mutex> lock(columnar_mu_);
  if (!batch_) {
    batch_ = BuildColumnar(*schema_, rows_);
    if (stats_) {
      stats_->columnar_builds.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (stats_) {
    stats_->columnar_hits.fetch_add(1, std::memory_order_relaxed);
  }
  return batch_;
}

std::vector<std::string> TableVersion::IndexedColumns() const {
  return IndexedColumnNames(*secondary_);
}

Result<std::vector<Tid>> TableVersion::IndexLookupEq(
    const std::string& column, const Value& value) const {
  return LookupEq(*secondary_, *index_, schema_->name(), column, value);
}

Result<std::vector<Tid>> TableVersion::IndexLookupRange(
    const std::string& column, const std::optional<IndexBound>& lower,
    const std::optional<IndexBound>& upper) const {
  return LookupRange(*secondary_, *index_, schema_->name(), column, lower,
                     upper);
}

}  // namespace auditdb
