#include "src/storage/database.h"

#include <algorithm>
#include <mutex>

#include "src/common/hashing.h"

namespace auditdb {

void DatabaseView::AddTable(std::shared_ptr<const TableVersion> version) {
  const std::string& name = version->name();
  // Duplicate registration of the same schema is an internal error surfaced
  // by AddTable's status; views are built by trusted code, so drop it.
  catalog_.AddTable(version->schema());
  tables_[name] = std::move(version);
}

void DatabaseView::AddTable(const Table* table) {
  AddTable(table->CurrentVersion());
}

Result<const TableVersion*> DatabaseView::GetTable(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such table in view: " + name);
  }
  return it->second.get();
}

std::vector<std::string> DatabaseView::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

uint64_t DatabaseView::EpochFingerprint(
    const std::vector<std::string>& tables) const {
  std::vector<std::string> sorted(tables);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  uint64_t h = 0x9d3f'70a2'4c81'e5b7ULL;
  h = HashCombine(h, catalog_epoch_);
  std::hash<std::string> name_hash;
  for (const std::string& name : sorted) {
    h = HashCombine(h, name_hash(name));
    auto it = tables_.find(name);
    // Absent tables hash distinctly from any epoch, so views that
    // disagree about a table's existence never share a fingerprint.
    h = HashCombine(h, it == tables_.end() ? 0xdeadULL
                                           : it->second->epoch() + 1);
  }
  return h;
}

Status Database::CreateTable(TableSchema schema) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (tables_.count(schema.name()) > 0) {
    return Status::AlreadyExists("table already exists: " + schema.name());
  }
  AUDITDB_RETURN_IF_ERROR(catalog_.AddTable(schema));
  std::string name = schema.name();
  tables_.emplace(name, std::make_unique<Table>(std::move(schema)));
  // Schema changes invalidate catalog-dependent cached decisions just
  // like row changes do, even though no row trigger fires.
  mutation_count_.fetch_add(1, std::memory_order_acq_rel);
  catalog_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::Ok();
}

Result<Table*> Database::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return it->second.get();
}

Result<Table*> Database::GetTable(const std::string& name) {
  return FindTable(name);
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto t = FindTable(name);
  if (!t.ok()) return t.status();
  return const_cast<const Table*>(*t);
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

void Database::AddChangeListener(ChangeListener listener) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  listeners_.push_back(std::move(listener));
}

void Database::Emit(const ChangeEvent& event) {
  mutation_count_.fetch_add(1, std::memory_order_acq_rel);
  for (const auto& listener : listeners_) listener(event);
}

Result<Tid> Database::Insert(const std::string& table,
                             std::vector<Value> values, Timestamp ts) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto t = FindTable(table);
  if (!t.ok()) return t.status();
  auto tid = (*t)->Insert(values);
  if (!tid.ok()) return tid.status();
  Emit(ChangeEvent{table, ChangeEvent::Op::kInsert, ts,
                   Row{*tid, std::move(values)}});
  return *tid;
}

Status Database::InsertWithTid(const std::string& table, Tid tid,
                               std::vector<Value> values, Timestamp ts) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto t = FindTable(table);
  if (!t.ok()) return t.status();
  AUDITDB_RETURN_IF_ERROR((*t)->InsertWithTid(tid, values));
  Emit(ChangeEvent{table, ChangeEvent::Op::kInsert, ts,
                   Row{tid, std::move(values)}});
  return Status::Ok();
}

Status Database::Update(const std::string& table, Tid tid,
                        std::vector<Value> values, Timestamp ts) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto t = FindTable(table);
  if (!t.ok()) return t.status();
  AUDITDB_RETURN_IF_ERROR((*t)->Update(tid, values));
  Emit(ChangeEvent{table, ChangeEvent::Op::kUpdate, ts,
                   Row{tid, std::move(values)}});
  return Status::Ok();
}

Status Database::UpdateColumn(const std::string& table, Tid tid,
                              const std::string& column, Value value,
                              Timestamp ts) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto t = FindTable(table);
  if (!t.ok()) return t.status();
  AUDITDB_RETURN_IF_ERROR((*t)->UpdateColumn(tid, column, std::move(value)));
  auto row = (*t)->Get(tid);
  if (!row.ok()) return row.status();
  Emit(ChangeEvent{table, ChangeEvent::Op::kUpdate, ts, **row});
  return Status::Ok();
}

Status Database::Delete(const std::string& table, Tid tid, Timestamp ts) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto t = FindTable(table);
  if (!t.ok()) return t.status();
  auto before = (*t)->Delete(tid);
  if (!before.ok()) return before.status();
  Emit(ChangeEvent{table, ChangeEvent::Op::kDelete, ts, std::move(*before)});
  return Status::Ok();
}

DatabaseView Database::Snapshot() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  DatabaseView view;
  for (const auto& [name, table] : tables_) {
    view.AddTable(table->CurrentVersion());
  }
  view.set_catalog_epoch(catalog_epoch_.load(std::memory_order_acquire));
  return view;
}

}  // namespace auditdb
