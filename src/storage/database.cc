#include "src/storage/database.h"

namespace auditdb {

void DatabaseView::AddTable(const Table* table) {
  tables_[table->name()] = table;
  // Duplicate registration of the same schema is an internal error surfaced
  // by AddTable's status; views are built by trusted code, so drop it.
  catalog_.AddTable(table->schema());
}

Result<const Table*> DatabaseView::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such table in view: " + name);
  }
  return it->second;
}

std::vector<std::string> DatabaseView::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Status Database::CreateTable(TableSchema schema) {
  if (tables_.count(schema.name()) > 0) {
    return Status::AlreadyExists("table already exists: " + schema.name());
  }
  AUDITDB_RETURN_IF_ERROR(catalog_.AddTable(schema));
  std::string name = schema.name();
  tables_.emplace(name, std::make_unique<Table>(std::move(schema)));
  // Schema changes invalidate catalog-dependent cached decisions just
  // like row changes do, even though no row trigger fires.
  mutation_count_.fetch_add(1, std::memory_order_acq_rel);
  return Status::Ok();
}

Result<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return it->second.get();
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return const_cast<const Table*>(it->second.get());
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

void Database::Emit(const ChangeEvent& event) {
  mutation_count_.fetch_add(1, std::memory_order_acq_rel);
  for (const auto& listener : listeners_) listener(event);
}

Result<Tid> Database::Insert(const std::string& table,
                             std::vector<Value> values, Timestamp ts) {
  auto t = GetTable(table);
  if (!t.ok()) return t.status();
  auto tid = (*t)->Insert(values);
  if (!tid.ok()) return tid.status();
  Emit(ChangeEvent{table, ChangeEvent::Op::kInsert, ts,
                   Row{*tid, std::move(values)}});
  return *tid;
}

Status Database::InsertWithTid(const std::string& table, Tid tid,
                               std::vector<Value> values, Timestamp ts) {
  auto t = GetTable(table);
  if (!t.ok()) return t.status();
  AUDITDB_RETURN_IF_ERROR((*t)->InsertWithTid(tid, values));
  Emit(ChangeEvent{table, ChangeEvent::Op::kInsert, ts,
                   Row{tid, std::move(values)}});
  return Status::Ok();
}

Status Database::Update(const std::string& table, Tid tid,
                        std::vector<Value> values, Timestamp ts) {
  auto t = GetTable(table);
  if (!t.ok()) return t.status();
  AUDITDB_RETURN_IF_ERROR((*t)->Update(tid, values));
  Emit(ChangeEvent{table, ChangeEvent::Op::kUpdate, ts,
                   Row{tid, std::move(values)}});
  return Status::Ok();
}

Status Database::UpdateColumn(const std::string& table, Tid tid,
                              const std::string& column, Value value,
                              Timestamp ts) {
  auto t = GetTable(table);
  if (!t.ok()) return t.status();
  AUDITDB_RETURN_IF_ERROR((*t)->UpdateColumn(tid, column, std::move(value)));
  auto row = (*t)->Get(tid);
  if (!row.ok()) return row.status();
  Emit(ChangeEvent{table, ChangeEvent::Op::kUpdate, ts, **row});
  return Status::Ok();
}

Status Database::Delete(const std::string& table, Tid tid, Timestamp ts) {
  auto t = GetTable(table);
  if (!t.ok()) return t.status();
  auto before = (*t)->Delete(tid);
  if (!before.ok()) return before.status();
  Emit(ChangeEvent{table, ChangeEvent::Op::kDelete, ts, std::move(*before)});
  return Status::Ok();
}

DatabaseView Database::View() const {
  DatabaseView view;
  for (const auto& [name, table] : tables_) view.AddTable(table.get());
  return view;
}

}  // namespace auditdb
