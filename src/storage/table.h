#ifndef AUDITDB_STORAGE_TABLE_H_
#define AUDITDB_STORAGE_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/catalog/schema.h"
#include "src/common/status.h"
#include "src/common/timestamp.h"
#include "src/types/column_vector.h"
#include "src/types/value.h"

namespace auditdb {

/// System tuple identifier. Unique within a table for the table's lifetime:
/// updates keep the tid (a new *version* of the same tuple), deletes retire
/// it. Printed as `t<N>` to match the paper's notation (t11, t24, ...).
using Tid = int64_t;

/// Renders a tid the way the paper writes them ("t12").
std::string TidToString(Tid tid);

/// One stored tuple: system tid + column values in schema order.
struct Row {
  Tid tid = 0;
  std::vector<Value> values;

  bool operator==(const Row& other) const {
    return tid == other.tid && values == other.values;
  }
};

/// A change to a base table, as captured by the storage triggers that feed
/// the backlog (the paper's b-<table> backlog tables).
struct ChangeEvent {
  enum class Op { kInsert, kUpdate, kDelete };

  std::string table;
  Op op = Op::kInsert;
  Timestamp timestamp;
  /// After-image for insert/update; before-image for delete.
  Row row;
};

/// An in-memory heap table. Rows are kept in insertion order; lookups by
/// tid go through a side index. Mutations produce ChangeEvents via the
/// owning Database's trigger hook.
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }

  /// Live rows in insertion order.
  const std::vector<Row>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }

  /// Inserts with an auto-assigned tid; returns the tid.
  Result<Tid> Insert(std::vector<Value> values);

  /// Inserts with a caller-chosen tid (used to mirror the paper's t11..t34
  /// numbering and to materialize snapshots). Fails if the tid is in use.
  Status InsertWithTid(Tid tid, std::vector<Value> values);

  /// Replaces the full row image of `tid` (a new version of the tuple).
  Status Update(Tid tid, std::vector<Value> values);

  /// Updates a single column of `tid`.
  Status UpdateColumn(Tid tid, const std::string& column, Value value);

  /// Removes the row; the before-image is returned for backlogging.
  Result<Row> Delete(Tid tid);

  /// Live row by tid, or NotFound.
  Result<const Row*> Get(Tid tid) const;

  bool Contains(Tid tid) const { return index_.count(tid) > 0; }

  /// Next tid the auto-assigner would use.
  Tid next_tid() const { return next_tid_; }
  /// Raises the auto-assign floor (after explicit-tid inserts).
  void ReserveTidsThrough(Tid tid);

  /// --- Columnar projection cache ------------------------------------
  /// A columnar copy of the live rows for batch scans, built lazily on
  /// first use and invalidated by every mutation. Concurrent readers are
  /// safe (the build is mutex-guarded and the result is shared); the
  /// returned batch stays valid after later mutations (readers keep
  /// their shared_ptr; the table just stops handing it out). Live tables
  /// and backlog snapshots share this path, so historical states scan
  /// exactly like current ones.
  std::shared_ptr<const Batch> Columnar() const;

  /// Bumped on every mutation; lets callers detect staleness cheaply.
  uint64_t mutation_count() const { return mutation_count_; }

  /// --- Secondary indexes -------------------------------------------
  /// An ordered value index over one column, maintained across
  /// mutations. The executor uses it to prefilter scans for
  /// `col = literal` and range predicates when the literal's type
  /// matches the column's (mixed-type comparisons coerce and must go
  /// through a scan).

  /// Builds an index over `column` (idempotent).
  Status CreateIndex(const std::string& column);
  bool HasIndex(const std::string& column) const {
    return secondary_.count(column) > 0;
  }
  /// Names of indexed columns (snapshots mirror the live table's
  /// indexes so audits of historical states get the same access paths).
  std::vector<std::string> IndexedColumns() const;

  /// Tids whose `column` equals `value` exactly (same type), in
  /// insertion order.
  Result<std::vector<Tid>> IndexLookupEq(const std::string& column,
                                         const Value& value) const;

  /// Tids whose `column` lies in the given range (either bound optional;
  /// bounds must be same-typed with the column), in insertion order.
  struct IndexBound {
    Value value;
    bool strict = false;
  };
  Result<std::vector<Tid>> IndexLookupRange(
      const std::string& column, const std::optional<IndexBound>& lower,
      const std::optional<IndexBound>& upper) const;

 private:
  Status CheckArity(const std::vector<Value>& values) const;
  void IndexInsert(const Row& row);
  void IndexRemove(const Row& row);
  /// Drops the cached columnar projection (called by every mutation).
  void InvalidateColumnar();
  /// Sorts tids into row (insertion) order so index-driven scans emit
  /// rows in the same order as full scans.
  std::vector<Tid> InRowOrder(std::vector<Tid> tids) const;

  TableSchema schema_;
  std::vector<Row> rows_;
  std::map<Tid, size_t> index_;  // tid -> position in rows_
  /// column name -> (value -> tids with that value).
  std::map<std::string, std::map<Value, std::vector<Tid>>> secondary_;
  Tid next_tid_ = 1;

  /// Guarded lazily built columnar projection. Held behind a shared slot
  /// so Table stays movable (the mutex lives in the slot, not the table).
  struct ColumnarSlot {
    std::mutex mu;
    std::shared_ptr<const Batch> batch;
  };
  mutable std::shared_ptr<ColumnarSlot> columnar_ =
      std::make_shared<ColumnarSlot>();
  uint64_t mutation_count_ = 0;
};

}  // namespace auditdb

#endif  // AUDITDB_STORAGE_TABLE_H_
