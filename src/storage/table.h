#ifndef AUDITDB_STORAGE_TABLE_H_
#define AUDITDB_STORAGE_TABLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/catalog/schema.h"
#include "src/common/status.h"
#include "src/common/timestamp.h"
#include "src/types/column_vector.h"
#include "src/types/value.h"

namespace auditdb {

/// System tuple identifier. Unique within a table for the table's lifetime:
/// updates keep the tid (a new *version* of the same tuple), deletes retire
/// it. Printed as `t<N>` to match the paper's notation (t11, t24, ...).
using Tid = int64_t;

/// Renders a tid the way the paper writes them ("t12").
std::string TidToString(Tid tid);

/// One stored tuple: system tid + column values in schema order.
struct Row {
  Tid tid = 0;
  std::vector<Value> values;

  bool operator==(const Row& other) const {
    return tid == other.tid && values == other.values;
  }
};

/// A change to a base table, as captured by the storage triggers that feed
/// the backlog (the paper's b-<table> backlog tables).
struct ChangeEvent {
  enum class Op { kInsert, kUpdate, kDelete };

  std::string table;
  Op op = Op::kInsert;
  Timestamp timestamp;
  /// After-image for insert/update; before-image for delete.
  Row row;
};

/// Bound of an index range lookup (either end optional at the call site;
/// bounds must be same-typed with the column).
struct IndexBound {
  Value value;
  bool strict = false;
};

/// tid -> position in the row store.
using TidIndex = std::map<Tid, size_t>;
/// column name -> (value -> tids with that value).
using SecondaryIndexes =
    std::map<std::string, std::map<Value, std::vector<Tid>>>;

/// Monotonic per-table counters of the MVCC machinery: how many versions
/// are pinned right now, how much copy-on-write actually copied, and how
/// the per-version columnar cache behaves. Shared between a Table and all
/// of its published TableVersions (a version may outlive its table), and
/// surfaced as the auditd "versions" metrics section.
struct TableStats {
  /// TableVersions currently alive (published and still referenced).
  std::atomic<int64_t> live_versions{0};
  /// Versions ever published (CurrentVersion() builds).
  std::atomic<uint64_t> versions_published{0};
  /// Rows copied because a mutation touched storage shared with a version.
  std::atomic<uint64_t> cow_rows{0};
  /// Estimated bytes those copies moved (row header + value slots).
  std::atomic<uint64_t> cow_bytes{0};
  /// Columnar builds (one per version that was actually scanned) and
  /// reuses of an already-built per-version batch.
  std::atomic<uint64_t> columnar_builds{0};
  std::atomic<uint64_t> columnar_hits{0};
};

/// Segmented copy-on-write row storage. Rows live in fixed-size segments
/// held by shared_ptr; publishing a version shares the segment vector, and
/// a later mutation copies only the touched segment (plus, for stable
/// deletes, the tail it shifts). Invariant: every segment except the last
/// holds exactly kSegmentRows rows, so position p lives at
/// segment[p >> kSegmentBits][p & kSegmentMask].
///
/// Read API mirrors std::vector<Row> (size / operator[] / iteration), so
/// scan loops are unchanged; only .data() pointer arithmetic is gone.
class RowStore {
 public:
  static constexpr size_t kSegmentBits = 10;
  static constexpr size_t kSegmentRows = size_t{1} << kSegmentBits;
  static constexpr size_t kSegmentMask = kSegmentRows - 1;

  RowStore() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const Row& operator[](size_t pos) const {
    return segments_[pos >> kSegmentBits]->rows[pos & kSegmentMask];
  }

  /// Forward iteration in position order (segment-walking).
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Row;
    using difference_type = ptrdiff_t;
    using pointer = const Row*;
    using reference = const Row&;

    const_iterator() = default;
    const_iterator(const RowStore* store, size_t pos)
        : store_(store), pos_(pos) {}

    const Row& operator*() const { return (*store_)[pos_]; }
    const Row* operator->() const { return &(*store_)[pos_]; }
    const_iterator& operator++() {
      ++pos_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator out = *this;
      ++pos_;
      return out;
    }
    bool operator==(const const_iterator& other) const {
      return pos_ == other.pos_;
    }
    bool operator!=(const const_iterator& other) const {
      return pos_ != other.pos_;
    }

   private:
    const RowStore* store_ = nullptr;
    size_t pos_ = 0;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size_); }

  /// --- Write side (Table only; externally serialized) ----------------

  /// Appends a row, copying the last segment first if it is shared.
  void PushBack(Row row);

  /// Mutable row at `pos`, copying the containing segment first if shared.
  Row& MutableAt(size_t pos);

  /// Stable (order-preserving) erase: shifts everything after `pos` left
  /// by one, copying every touched shared segment.
  void EraseStable(size_t pos);

  /// Accounting sink for COW copies (may be null).
  void SetStats(std::shared_ptr<TableStats> stats) {
    stats_ = std::move(stats);
  }

 private:
  struct Segment {
    std::vector<Row> rows;
  };

  /// Ensures segments_[index] is uniquely owned, copying (and charging
  /// the copy to stats_) when a published version still shares it.
  Segment* Owned(size_t index);
  void ChargeCopy(const Segment& segment);

  std::vector<std::shared_ptr<Segment>> segments_;
  size_t size_ = 0;
  std::shared_ptr<TableStats> stats_;
};

class TableVersion;

/// An in-memory heap table: the *write side* of the MVCC pair. Rows are
/// kept in insertion order inside copy-on-write segments; lookups by tid
/// go through a side index. Mutations produce ChangeEvents via the owning
/// Database's trigger hook and advance the table's epoch; readers pin an
/// immutable TableVersion (CurrentVersion()) and are never blocked or
/// invalidated by later writes.
///
/// Thread-safety contract: mutators and CurrentVersion() must be mutually
/// excluded by the caller (the Database's internal writer lock does this);
/// published TableVersions are immutable and safe to read from any thread.
class Table {
 public:
  explicit Table(TableSchema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  /// Not movable: readers hold shared state (versions, stats) handed out
  /// by this object, and a moved-from table would strand them against a
  /// hollow shell. Tables live behind unique_ptr everywhere.
  Table(Table&&) = delete;
  Table& operator=(Table&&) = delete;

  const TableSchema& schema() const { return *schema_; }
  const std::string& name() const { return schema_->name(); }

  /// Live rows in insertion order.
  const RowStore& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }

  /// Inserts with an auto-assigned tid; returns the tid.
  Result<Tid> Insert(std::vector<Value> values);

  /// Inserts with a caller-chosen tid (used to mirror the paper's t11..t34
  /// numbering and to materialize snapshots). Fails if the tid is in use.
  Status InsertWithTid(Tid tid, std::vector<Value> values);

  /// Replaces the full row image of `tid` (a new version of the tuple).
  Status Update(Tid tid, std::vector<Value> values);

  /// Updates a single column of `tid`.
  Status UpdateColumn(Tid tid, const std::string& column, Value value);

  /// Removes the row; the before-image is returned for backlogging.
  Result<Row> Delete(Tid tid);

  /// Live row by tid, or NotFound.
  Result<const Row*> Get(Tid tid) const;

  bool Contains(Tid tid) const { return index_->count(tid) > 0; }

  /// Next tid the auto-assigner would use.
  Tid next_tid() const { return next_tid_; }
  /// Raises the auto-assign floor (after explicit-tid inserts).
  void ReserveTidsThrough(Tid tid);

  /// --- MVCC versions -------------------------------------------------
  /// The current immutable version: schema, rows, indexes and epoch,
  /// sharing this table's storage (no copying at publish time; a later
  /// mutation copies only what it touches). Published lazily and cached
  /// until the next mutation, so back-to-back snapshots of a quiet table
  /// pin the same version object (and its built-once columnar batch).
  std::shared_ptr<const TableVersion> CurrentVersion() const;

  /// Monotonic version counter: bumped by every mutation with
  /// release ordering, so a reader that observed epoch E (acquire) sees
  /// all storage effects of the first E mutations. This is the per-table
  /// cache key the audit layers use in place of the old global mutation
  /// count.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Legacy alias for epoch() (the pre-MVCC per-table staleness counter).
  uint64_t mutation_count() const { return epoch(); }

  /// --- Columnar projection cache ------------------------------------
  /// The columnar batch of the current version (built once per version,
  /// never invalidated — a new version simply has its own batch). Readers
  /// keep their shared_ptr across later mutations.
  std::shared_ptr<const Batch> Columnar() const;

  /// Version/COW counters shared with every published version.
  const TableStats& stats() const { return *stats_; }

  /// --- Secondary indexes -------------------------------------------
  /// An ordered value index over one column, maintained across
  /// mutations. The executor uses it to prefilter scans for
  /// `col = literal` and range predicates when the literal's type
  /// matches the column's (mixed-type comparisons coerce and must go
  /// through a scan).

  /// Builds an index over `column` (idempotent).
  Status CreateIndex(const std::string& column);
  bool HasIndex(const std::string& column) const {
    return secondary_->count(column) > 0;
  }
  /// Names of indexed columns (snapshots mirror the live table's
  /// indexes so audits of historical states get the same access paths).
  std::vector<std::string> IndexedColumns() const;

  /// Tids whose `column` equals `value` exactly (same type), in
  /// insertion order.
  Result<std::vector<Tid>> IndexLookupEq(const std::string& column,
                                         const Value& value) const;

  /// Tids whose `column` lies in the given range (either bound optional;
  /// bounds must be same-typed with the column), in insertion order.
  Result<std::vector<Tid>> IndexLookupRange(
      const std::string& column, const std::optional<IndexBound>& lower,
      const std::optional<IndexBound>& upper) const;

 private:
  Status CheckArity(const std::vector<Value>& values) const;
  void IndexInsert(const Row& row);
  void IndexRemove(const Row& row);
  /// Retires the cached current version before a mutation touches
  /// storage (lets an unpinned mutation work in place).
  void BeginWrite();
  /// Publishes the mutation by advancing the epoch (release).
  void BumpEpoch();
  /// Copy-on-write guards: make the tid / secondary index maps uniquely
  /// owned before mutating them (published versions share them).
  TidIndex* OwnedIndex();
  SecondaryIndexes* OwnedSecondary();

  std::shared_ptr<const TableSchema> schema_;
  RowStore rows_;
  std::shared_ptr<TidIndex> index_;
  std::shared_ptr<SecondaryIndexes> secondary_;
  Tid next_tid_ = 1;

  std::shared_ptr<TableStats> stats_;
  std::atomic<uint64_t> epoch_{0};
  /// Cached current version; reset by every mutation, rebuilt on demand.
  mutable std::mutex version_mu_;
  mutable std::shared_ptr<const TableVersion> current_;
};

/// An immutable snapshot of one table: the *read side* of the MVCC pair.
/// Shares the publishing table's row segments and index maps (cheap to
/// pin), carries the epoch it was published at, and owns a build-once
/// columnar batch — immutable data never invalidates, so the batch lives
/// exactly as long as the version. All members are safe to use from any
/// thread, concurrently with writes to the source table.
class TableVersion {
 public:
  /// Published by Table::CurrentVersion(); not for direct construction.
  TableVersion(std::shared_ptr<const TableSchema> schema, uint64_t epoch,
               RowStore rows, std::shared_ptr<const TidIndex> index,
               std::shared_ptr<const SecondaryIndexes> secondary,
               std::shared_ptr<TableStats> stats);
  ~TableVersion();

  TableVersion(const TableVersion&) = delete;
  TableVersion& operator=(const TableVersion&) = delete;

  const TableSchema& schema() const { return *schema_; }
  const std::string& name() const { return schema_->name(); }
  uint64_t epoch() const { return epoch_; }

  /// Rows in insertion order, as of this version.
  const RowStore& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }

  /// Row by tid, or NotFound.
  Result<const Row*> Get(Tid tid) const;
  bool Contains(Tid tid) const { return index_->count(tid) > 0; }
  /// Position of `tid` in rows(), or NotFound (replaces the pointer
  /// arithmetic scans used against contiguous storage).
  Result<size_t> GetPosition(Tid tid) const;

  /// Columnar projection of this version, built on first use and shared
  /// by every scan of the version thereafter. Never invalidated: the
  /// version is immutable.
  std::shared_ptr<const Batch> Columnar() const;

  bool HasIndex(const std::string& column) const {
    return secondary_->count(column) > 0;
  }
  std::vector<std::string> IndexedColumns() const;
  Result<std::vector<Tid>> IndexLookupEq(const std::string& column,
                                         const Value& value) const;
  Result<std::vector<Tid>> IndexLookupRange(
      const std::string& column, const std::optional<IndexBound>& lower,
      const std::optional<IndexBound>& upper) const;

 private:
  std::shared_ptr<const TableSchema> schema_;
  uint64_t epoch_ = 0;
  RowStore rows_;
  std::shared_ptr<const TidIndex> index_;
  std::shared_ptr<const SecondaryIndexes> secondary_;
  std::shared_ptr<TableStats> stats_;

  mutable std::mutex columnar_mu_;
  mutable std::shared_ptr<const Batch> batch_;
};

}  // namespace auditdb

#endif  // AUDITDB_STORAGE_TABLE_H_
