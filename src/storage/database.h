#ifndef AUDITDB_STORAGE_DATABASE_H_
#define AUDITDB_STORAGE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/status.h"
#include "src/common/timestamp.h"
#include "src/storage/table.h"

namespace auditdb {

/// A read-only view over a set of tables (the current database or a
/// reconstructed historical snapshot). Queries and audit target views are
/// always evaluated against a DatabaseView, so the engine is agnostic to
/// whether it reads live or time-traveled data.
class DatabaseView {
 public:
  DatabaseView() = default;

  /// Registers a table in the view; the pointer must outlive the view.
  void AddTable(const Table* table);

  Result<const Table*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }
  std::vector<std::string> TableNames() const;

  /// Catalog over the viewed tables (for column resolution / typing).
  const Catalog& catalog() const { return catalog_; }

 private:
  std::map<std::string, const Table*> tables_;
  Catalog catalog_;
};

/// The primary store: named tables plus the trigger hook that streams every
/// mutation (insert/update/delete with timestamps) to listeners — the
/// mechanism the paper relies on to maintain backlog tables for
/// point-in-time audit analysis.
class Database {
 public:
  using ChangeListener = std::function<void(const ChangeEvent&)>;

  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Status CreateTable(TableSchema schema);
  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }
  std::vector<std::string> TableNames() const;

  const Catalog& catalog() const { return catalog_; }

  /// Registers a trigger listener; fired synchronously on every mutation.
  void AddChangeListener(ChangeListener listener) {
    listeners_.push_back(std::move(listener));
  }

  /// Timestamped mutations (these fire triggers; mutating a Table directly
  /// would bypass the backlog, so callers should always go through these).
  Result<Tid> Insert(const std::string& table, std::vector<Value> values,
                     Timestamp ts);
  Status InsertWithTid(const std::string& table, Tid tid,
                       std::vector<Value> values, Timestamp ts);
  Status Update(const std::string& table, Tid tid, std::vector<Value> values,
                Timestamp ts);
  Status UpdateColumn(const std::string& table, Tid tid,
                      const std::string& column, Value value, Timestamp ts);
  Status Delete(const std::string& table, Tid tid, Timestamp ts);

  /// A view of the current state.
  DatabaseView View() const;

  /// Number of mutations applied so far (bumped on every trigger-firing
  /// change, before listeners run). The audit layers key memoized
  /// per-query decisions on this counter, so a cached entry can never
  /// outlive the state it was computed against. Atomic: concurrent
  /// readers (e.g. parallel online screenings) may load it while no
  /// writer is active.
  uint64_t mutation_count() const {
    return mutation_count_.load(std::memory_order_acquire);
  }

 private:
  void Emit(const ChangeEvent& event);

  std::map<std::string, std::unique_ptr<Table>> tables_;
  Catalog catalog_;
  std::vector<ChangeListener> listeners_;
  std::atomic<uint64_t> mutation_count_{0};
};

}  // namespace auditdb

#endif  // AUDITDB_STORAGE_DATABASE_H_
