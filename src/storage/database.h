#ifndef AUDITDB_STORAGE_DATABASE_H_
#define AUDITDB_STORAGE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/status.h"
#include "src/common/timestamp.h"
#include "src/storage/table.h"

namespace auditdb {

/// A read-only, *pinned* view over a set of table versions (the current
/// database or a reconstructed historical snapshot). Queries and audit
/// target views are always evaluated against a DatabaseView, so the engine
/// is agnostic to whether it reads live or time-traveled data.
///
/// The view holds shared ownership of each TableVersion: once built it is
/// a consistent snapshot that later writes can neither change nor
/// invalidate, and it is safe to read from any thread for as long as the
/// view (or a copy of it) is alive.
class DatabaseView {
 public:
  DatabaseView() = default;

  /// Registers a pinned version in the view.
  void AddTable(std::shared_ptr<const TableVersion> version);
  /// Convenience: pins `table`'s current version. The caller must ensure
  /// no mutator runs concurrently with this call (Database::Snapshot()
  /// does; tests and snapshot replay are single-writer by construction).
  void AddTable(const Table* table);

  Result<const TableVersion*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }
  std::vector<std::string> TableNames() const;

  /// Catalog over the viewed tables (for column resolution / typing).
  const Catalog& catalog() const { return catalog_; }

  /// Schema-generation counter of the database this view was taken from
  /// (0 for hand-built / snapshot views). Cache keys for purely static
  /// decisions depend only on this, not on row epochs.
  uint64_t catalog_epoch() const { return catalog_epoch_; }
  void set_catalog_epoch(uint64_t epoch) { catalog_epoch_ = epoch; }

  /// Order-independent fingerprint of the version epochs of `tables`
  /// (plus the catalog epoch). Two views agree on the fingerprint iff
  /// every named table is at the same version in both — the cache key for
  /// decisions that read those tables' data. Unknown names hash as
  /// "absent", so a view that lacks a table disagrees with one that has
  /// it.
  uint64_t EpochFingerprint(const std::vector<std::string>& tables) const;

 private:
  std::map<std::string, std::shared_ptr<const TableVersion>> tables_;
  Catalog catalog_;
  uint64_t catalog_epoch_ = 0;
};

/// The primary store: named tables plus the trigger hook that streams every
/// mutation (insert/update/delete with timestamps) to listeners — the
/// mechanism the paper relies on to maintain backlog tables for
/// point-in-time audit analysis.
///
/// Concurrency: mutators serialize on an internal writer lock and fire
/// listeners while holding it (listeners must not re-enter the Database).
/// Snapshot() takes the lock briefly in shared mode to pin every table's
/// current version; readers then work entirely against the returned view,
/// off-lock — writes never wait on an audit and audits never see a torn
/// state.
class Database {
 public:
  using ChangeListener = std::function<void(const ChangeEvent&)>;

  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Status CreateTable(TableSchema schema);
  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// Catalog of live schemas. Callers must not race this against
  /// CreateTable; concurrent audit paths use the catalog of a pinned
  /// Snapshot() instead.
  const Catalog& catalog() const { return catalog_; }

  /// Registers a trigger listener; fired synchronously on every mutation,
  /// under the writer lock.
  void AddChangeListener(ChangeListener listener);

  /// Timestamped mutations (these fire triggers; mutating a Table directly
  /// would bypass the backlog, so callers should always go through these).
  Result<Tid> Insert(const std::string& table, std::vector<Value> values,
                     Timestamp ts);
  Status InsertWithTid(const std::string& table, Tid tid,
                       std::vector<Value> values, Timestamp ts);
  Status Update(const std::string& table, Tid tid, std::vector<Value> values,
                Timestamp ts);
  Status UpdateColumn(const std::string& table, Tid tid,
                      const std::string& column, Value value, Timestamp ts);
  Status Delete(const std::string& table, Tid tid, Timestamp ts);

  /// Pins a consistent multi-table snapshot of the current state. Cheap:
  /// shares row segments with the live tables (copy-on-write), builds
  /// nothing up front.
  DatabaseView Snapshot() const;

  /// Legacy name for Snapshot(): every read path now receives a pinned,
  /// immutable view.
  DatabaseView View() const { return Snapshot(); }

  /// Number of mutations applied so far (bumped on every trigger-firing
  /// change, before listeners run). Retained for the wholesale-
  /// invalidation ablation and coarse staleness checks; the audit layers
  /// now key cached decisions on per-table version epochs instead.
  uint64_t mutation_count() const {
    return mutation_count_.load(std::memory_order_acquire);
  }

  /// Schema-generation counter: bumped by CreateTable only.
  uint64_t catalog_epoch() const {
    return catalog_epoch_.load(std::memory_order_acquire);
  }

 private:
  void Emit(const ChangeEvent& event);
  /// Lookup without taking mu_ (callers hold it or are setup-phase).
  Result<Table*> FindTable(const std::string& name) const;

  /// Writer lock: exclusive for mutations (table write + trigger fan-out
  /// + version retirement), shared for Snapshot()'s brief version pinning.
  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  Catalog catalog_;
  std::vector<ChangeListener> listeners_;
  std::atomic<uint64_t> mutation_count_{0};
  std::atomic<uint64_t> catalog_epoch_{0};
};

}  // namespace auditdb

#endif  // AUDITDB_STORAGE_DATABASE_H_
