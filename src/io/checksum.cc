#include "src/io/checksum.h"

#include <array>

namespace auditdb {
namespace io {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (size_t k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xff];
      }
    }
  }
};

const Tables& tables() {
  static const Tables instance;
  return instance;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const auto& t = tables().t;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  // Slicing-by-8 over aligned-size chunks, table-per-byte on the tail.
  while (n >= 8) {
    uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                         static_cast<uint32_t>(p[1]) << 8 |
                         static_cast<uint32_t>(p[2]) << 16 |
                         static_cast<uint32_t>(p[3]) << 24);
    crc = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^
          t[5][(lo >> 16) & 0xff] ^ t[4][lo >> 24] ^ t[3][p[4]] ^
          t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xff];
  }
  return ~crc;
}

}  // namespace io
}  // namespace auditdb
