#include "src/io/store.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "src/io/dump.h"

namespace auditdb {
namespace io {

namespace {

constexpr char kManifestName[] = "MANIFEST";

bool ParseUint64Text(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

/// Parses "snapshot <seq>" (trailing newline tolerated).
Result<uint64_t> ParseManifest(const std::string& text) {
  std::string line = text;
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.pop_back();
  }
  if (line.rfind("snapshot ", 0) != 0) {
    return Status::ParseError("malformed MANIFEST: " + line);
  }
  uint64_t seq = 0;
  if (!ParseUint64Text(line.substr(9), &seq) || seq == 0) {
    return Status::ParseError("bad MANIFEST sequence: " + line);
  }
  return seq;
}

/// True when `name` is one of this store's generated files for a
/// sequence other than `keep_seq` ("snapshot-<n>.db", "snapshot-<n>.log",
/// "wal-<n>.log").
bool IsStaleStoreFile(const std::string& name, uint64_t keep_seq) {
  std::string digits;
  if (name.rfind("snapshot-", 0) == 0) {
    auto dot = name.find_last_of('.');
    if (dot == std::string::npos) return false;
    std::string ext = name.substr(dot);
    if (ext != ".db" && ext != ".log") return false;
    digits = name.substr(9, dot - 9);
  } else if (name.rfind("wal-", 0) == 0) {
    if (name.size() < 8 || name.substr(name.size() - 4) != ".log") {
      return false;
    }
    digits = name.substr(4, name.size() - 8);
  } else {
    return false;
  }
  uint64_t seq = 0;
  if (!ParseUint64Text(digits, &seq)) return false;
  return seq != keep_seq;
}

}  // namespace

DurableStore::DurableStore(Env* env, std::string dir,
                           DurableStoreOptions options)
    : env_(env), dir_(std::move(dir)), options_(options) {}

DurableStore::~DurableStore() {
  if (wal_ != nullptr) wal_->Close();
}

std::string DurableStore::SnapshotPath(uint64_t seq,
                                       const char* kind) const {
  return JoinPath(dir_, "snapshot-" + std::to_string(seq) + "." + kind);
}

std::string DurableStore::WalPath(uint64_t seq) const {
  return JoinPath(dir_, "wal-" + std::to_string(seq) + ".log");
}

std::string DurableStore::ManifestPath() const {
  return JoinPath(dir_, kManifestName);
}

void DurableStore::PruneExcept(uint64_t keep_seq) {
  auto names = env_->ListDir(dir_);
  if (!names.ok()) return;
  for (const auto& name : *names) {
    bool stale =
        (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") ||
        IsStaleStoreFile(name, keep_seq);
    if (stale) env_->DeleteFile(JoinPath(dir_, name));
  }
}

bool DurableStore::HasManifest(Env* env, const std::string& dir) {
  return env->FileExists(JoinPath(dir, kManifestName));
}

Result<std::unique_ptr<DurableStore>> DurableStore::Open(
    Env* env, const std::string& dir, Database* db, QueryLog* log,
    Timestamp ts, DurableStoreOptions options) {
  AUDITDB_RETURN_IF_ERROR(env->CreateDirIfMissing(dir));
  std::unique_ptr<DurableStore> store(
      new DurableStore(env, dir, options));

  if (!HasManifest(env, dir)) {
    // Fresh store: whatever the caller preloaded (fixtures, dump files)
    // becomes checkpoint 1. Stale leftovers of an interrupted first
    // checkpoint are overwritten; temps are cleared.
    store->PruneExcept(0);
    AUDITDB_RETURN_IF_ERROR(store->Checkpoint(*db, *log));
    store->recovery_.manifest_found = false;
    store->recovery_.snapshot_seq = store->seq_.load();
    return store;
  }

  if (!db->TableNames().empty() || log->size() > 0) {
    return Status::InvalidArgument(
        "data dir " + dir +
        " holds a MANIFEST but the database/query log are not empty; "
        "recovery must start from empty stores");
  }

  AUDITDB_ASSIGN_OR_RETURN(std::string manifest_text,
                           env->ReadFileToString(store->ManifestPath()));
  AUDITDB_ASSIGN_OR_RETURN(uint64_t seq, ParseManifest(manifest_text));

  // The MANIFEST only ever points at fully-synced snapshot files, so a
  // read/parse failure here is real corruption, not a torn write.
  AUDITDB_ASSIGN_OR_RETURN(
      std::string db_dump,
      env->ReadFileToString(store->SnapshotPath(seq, "db")));
  {
    std::istringstream in(db_dump);
    AUDITDB_RETURN_IF_ERROR(ReadDatabaseDump(in, db, ts));
  }
  AUDITDB_ASSIGN_OR_RETURN(
      std::string log_dump,
      env->ReadFileToString(store->SnapshotPath(seq, "log")));
  {
    std::istringstream in(log_dump);
    AUDITDB_RETURN_IF_ERROR(ReadQueryLogDump(in, log));
  }
  store->recovery_.manifest_found = true;
  store->recovery_.snapshot_seq = seq;
  store->recovery_.snapshot_queries = log->size();

  const std::string wal_path = store->WalPath(seq);
  bool saw_checkpoint_record = false;
  querylog::WalReplayStats stats;
  AUDITDB_RETURN_IF_ERROR(querylog::ReplayWal(
      env, wal_path,
      [&](querylog::WalRecordType type, const std::string& payload) {
        if (type == querylog::WalRecordType::kCheckpoint) {
          auto bar = payload.find('|');
          uint64_t rec_seq = 0;
          if (bar == std::string::npos ||
              !ParseUint64Text(payload.substr(0, bar), &rec_seq)) {
            return Status::Internal("malformed WAL checkpoint record");
          }
          if (rec_seq != seq) {
            return Status::Internal(
                "WAL names snapshot " + std::to_string(rec_seq) +
                " but MANIFEST points at " + std::to_string(seq));
          }
          saw_checkpoint_record = true;
          return Status::Ok();
        }
        AUDITDB_ASSIGN_OR_RETURN(LoggedQuery entry,
                                 querylog::DecodeQueryWalPayload(payload));
        if (entry.id != static_cast<int64_t>(log->size()) + 1) {
          return Status::Internal(
              "WAL id discontinuity: record " + std::to_string(entry.id) +
              " after " + std::to_string(log->size()) + " entries");
        }
        log->Append(std::move(entry.sql), entry.timestamp,
                    std::move(entry.user), std::move(entry.role),
                    std::move(entry.purpose));
        return Status::Ok();
      },
      &stats));
  AUDITDB_RETURN_IF_ERROR(
      querylog::TruncateWalToValidPrefix(env, wal_path, stats));
  store->recovery_.recovered_records =
      stats.records_recovered - (saw_checkpoint_record ? 1 : 0);
  store->recovery_.torn_tail_dropped = stats.torn_tail_bytes;

  store->PruneExcept(seq);
  querylog::WalWriterOptions wal_options;
  wal_options.fsync = options.fsync;
  wal_options.every_n = options.fsync_every_n;
  AUDITDB_ASSIGN_OR_RETURN(
      store->wal_, querylog::WalWriter::Open(env, wal_path, wal_options,
                                             /*truncate=*/false));
  store->seq_.store(seq);
  store->wal_records_.store(store->recovery_.recovered_records);
  store->wal_bytes_.store(stats.valid_prefix_bytes);
  return store;
}

Status DurableStore::AppendQuery(const LoggedQuery& entry) {
  if (broken_.load(std::memory_order_relaxed)) {
    return Status::Internal(
        "durable store is wedged after an IO failure; refusing to ack");
  }
  Status appended = wal_->Append(querylog::WalRecordType::kQuery,
                                 querylog::EncodeQueryWalPayload(entry));
  if (!appended.ok()) {
    // A failed write or fsync leaves durability unknowable; wedge the
    // store so nothing acks against a log that may not persist.
    broken_.store(true, std::memory_order_relaxed);
    return appended;
  }
  wal_records_.fetch_add(1, std::memory_order_relaxed);
  wal_bytes_.store(wal_->bytes_written(), std::memory_order_relaxed);
  return Status::Ok();
}

bool DurableStore::ShouldCheckpoint() const {
  return options_.checkpoint_every_records > 0 &&
         wal_records_.load(std::memory_order_relaxed) >=
             options_.checkpoint_every_records;
}

Status DurableStore::Checkpoint(const Database& db, const QueryLog& log) {
  if (broken_.load(std::memory_order_relaxed)) {
    return Status::Internal(
        "durable store is wedged after an IO failure; refusing checkpoint");
  }
  const uint64_t old_seq = seq_.load(std::memory_order_relaxed);
  const uint64_t new_seq = old_seq + 1;

  // Everything before the MANIFEST rename is preparation: a failure (or
  // crash) leaves the old checkpoint authoritative and this store
  // running on its old WAL.
  std::unique_ptr<querylog::WalWriter> new_wal;
  Status prepared = [&]() -> Status {
    std::ostringstream db_out;
    AUDITDB_RETURN_IF_ERROR(WriteDatabaseDump(db, db_out));
    std::ostringstream log_out;
    AUDITDB_RETURN_IF_ERROR(WriteQueryLogDump(log, log_out));
    AUDITDB_RETURN_IF_ERROR(
        AtomicWriteFile(env_, SnapshotPath(new_seq, "db"), db_out.str()));
    AUDITDB_RETURN_IF_ERROR(AtomicWriteFile(
        env_, SnapshotPath(new_seq, "log"), log_out.str()));
    querylog::WalWriterOptions wal_options;
    wal_options.fsync = options_.fsync;
    wal_options.every_n = options_.fsync_every_n;
    AUDITDB_ASSIGN_OR_RETURN(
        new_wal, querylog::WalWriter::Open(env_, WalPath(new_seq),
                                           wal_options, /*truncate=*/true));
    AUDITDB_RETURN_IF_ERROR(
        new_wal->Append(querylog::WalRecordType::kCheckpoint,
                        std::to_string(new_seq) + "|" +
                            std::to_string(log.size())));
    // The checkpoint record must be durable before MANIFEST can point
    // at this WAL, whatever the append fsync policy says.
    return new_wal->Sync();
  }();
  if (!prepared.ok()) {
    checkpoint_failures_.fetch_add(1, std::memory_order_relaxed);
    if (new_wal != nullptr) new_wal->Close();
    env_->DeleteFile(SnapshotPath(new_seq, "db"));
    env_->DeleteFile(SnapshotPath(new_seq, "log"));
    env_->DeleteFile(WalPath(new_seq));
    return prepared;
  }

  // Commit: atomically repoint MANIFEST. Done step-by-step so an
  // ambiguous failure (rename visible in-process but its durability
  // unknown) wedges the store instead of guessing.
  const std::string manifest = ManifestPath();
  const std::string manifest_tmp = manifest + ".tmp";
  Status staged = [&]() -> Status {
    AUDITDB_ASSIGN_OR_RETURN(auto file,
                             env_->NewWritableFile(manifest_tmp, true));
    AUDITDB_RETURN_IF_ERROR(
        file->Append("snapshot " + std::to_string(new_seq) + "\n"));
    AUDITDB_RETURN_IF_ERROR(file->Sync());
    AUDITDB_RETURN_IF_ERROR(file->Close());
    return env_->RenameFile(manifest_tmp, manifest);
  }();
  if (!staged.ok()) {
    // Neither the staged temp nor a failed rename replaced MANIFEST;
    // the old checkpoint is still authoritative.
    checkpoint_failures_.fetch_add(1, std::memory_order_relaxed);
    new_wal->Close();
    env_->DeleteFile(manifest_tmp);
    env_->DeleteFile(SnapshotPath(new_seq, "db"));
    env_->DeleteFile(SnapshotPath(new_seq, "log"));
    env_->DeleteFile(WalPath(new_seq));
    return staged;
  }
  Status dir_synced = env_->SyncDir(dir_);
  if (!dir_synced.ok()) {
    // The rename happened in-process but may not survive a crash:
    // which checkpoint a restart would see is unknowable. Wedge.
    checkpoint_failures_.fetch_add(1, std::memory_order_relaxed);
    broken_.store(true, std::memory_order_relaxed);
    new_wal->Close();
    return dir_synced;
  }

  if (wal_ != nullptr) wal_->Close();
  wal_ = std::move(new_wal);
  seq_.store(new_seq, std::memory_order_relaxed);
  wal_records_.store(0, std::memory_order_relaxed);
  wal_bytes_.store(wal_->bytes_written(), std::memory_order_relaxed);
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  // The old checkpoint's files are garbage now; failures here only
  // leave harmless stale files for the next Open() to prune.
  if (old_seq > 0) {
    env_->DeleteFile(SnapshotPath(old_seq, "db"));
    env_->DeleteFile(SnapshotPath(old_seq, "log"));
    env_->DeleteFile(WalPath(old_seq));
  }
  return Status::Ok();
}

Status DurableStore::Sync() {
  if (broken_.load(std::memory_order_relaxed)) {
    return Status::Internal("durable store is wedged after an IO failure");
  }
  Status synced = wal_->Sync();
  if (!synced.ok()) broken_.store(true, std::memory_order_relaxed);
  return synced;
}

std::string DurableStore::MetricsJson() const {
  std::ostringstream out;
  out << "{\"wal_bytes\":" << wal_bytes_.load(std::memory_order_relaxed)
      << ",\"wal_records\":"
      << wal_records_.load(std::memory_order_relaxed)
      << ",\"recovered_records\":" << recovery_.recovered_records
      << ",\"torn_tail_dropped\":" << recovery_.torn_tail_dropped
      << ",\"last_checkpoint_seq\":"
      << seq_.load(std::memory_order_relaxed)
      << ",\"checkpoints\":" << checkpoints_.load(std::memory_order_relaxed)
      << ",\"checkpoint_failures\":"
      << checkpoint_failures_.load(std::memory_order_relaxed)
      << ",\"broken\":" << (broken() ? "true" : "false")
      << ",\"fsync_policy\":\"" << querylog::FsyncPolicyName(options_.fsync)
      << "\"}";
  return out.str();
}

}  // namespace io
}  // namespace auditdb
