#include "src/io/file.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace auditdb {
namespace io {

namespace {

Status ErrnoStatus(const std::string& context, int err) {
  std::string message = context + ": " + std::strerror(err);
  if (err == ENOENT) return Status::NotFound(std::move(message));
  return Status::Internal(std::move(message));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    while (!data.empty()) {
      ssize_t n = ::write(fd_, data.data(), data.size());
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write " + path_, errno);
      }
      data.remove_prefix(static_cast<size_t>(n));
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) {
      return ErrnoStatus("fdatasync " + path_, errno);
    }
    return Status::Ok();
  }

  Status Close() override {
    if (fd_ < 0) return Status::Ok();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close " + path_, errno);
    return Status::Ok();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixSequentialFile : public SequentialFile {
 public:
  PosixSequentialFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixSequentialFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<size_t> Read(size_t n, char* scratch) override {
    while (true) {
      ssize_t r = ::read(fd_, scratch, n);
      if (r >= 0) return static_cast<size_t>(r);
      if (errno == EINTR) continue;
      return ErrnoStatus("read " + path_, errno);
    }
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    int flags = O_WRONLY | O_CREAT | O_CLOEXEC;
    flags |= truncate ? O_TRUNC : O_APPEND;
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("open " + path, errno);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Result<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open " + path, errno);
    return std::unique_ptr<SequentialFile>(
        std::make_unique<PosixSequentialFile>(fd, path));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    AUDITDB_ASSIGN_OR_RETURN(auto file, NewSequentialFile(path));
    std::string out;
    char buf[65536];
    while (true) {
      AUDITDB_ASSIGN_OR_RETURN(size_t n, file->Read(sizeof(buf), buf));
      if (n == 0) return out;
      out.append(buf, n);
    }
  }

  Status RenameFile(const std::string& from,
                    const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename " + from + " -> " + to, errno);
    }
    return Status::Ok();
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return ErrnoStatus("unlink " + path, errno);
    }
    return Status::Ok();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("truncate " + path, errno);
    }
    return Status::Ok();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Result<uint64_t> GetFileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return ErrnoStatus("stat " + path, errno);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Status CreateDirIfMissing(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) == 0) return Status::Ok();
    if (errno == EEXIST) {
      struct stat st;
      if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
        return Status::Ok();
      }
      return Status::AlreadyExists(path + " exists and is not a directory");
    }
    return ErrnoStatus("mkdir " + path, errno);
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return ErrnoStatus("opendir " + path, errno);
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(dir)) {
      std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(std::move(name));
    }
    ::closedir(dir);
    return names;
  }

  Status SyncDir(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open dir " + path, errno);
    Status status;
    if (::fsync(fd) != 0) status = ErrnoStatus("fsync dir " + path, errno);
    ::close(fd);
    return status;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

Status AtomicWriteFile(Env* env, const std::string& path,
                       std::string_view data) {
  const std::string tmp = path + ".tmp";
  Status status = [&]() -> Status {
    AUDITDB_ASSIGN_OR_RETURN(auto file, env->NewWritableFile(tmp, true));
    AUDITDB_RETURN_IF_ERROR(file->Append(data));
    AUDITDB_RETURN_IF_ERROR(file->Sync());
    return file->Close();
  }();
  if (!status.ok()) {
    env->DeleteFile(tmp);  // best effort; the destination is untouched
    return status;
  }
  AUDITDB_RETURN_IF_ERROR(env->RenameFile(tmp, path));
  auto slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash == 0 ? 1 : slash);
  return env->SyncDir(dir);
}

// ---------------------------------------------------------------------
// FaultInjectingEnv

class FaultInjectingEnv::FaultyWritableFile : public WritableFile {
 public:
  FaultyWritableFile(FaultInjectingEnv* env,
                     std::unique_ptr<WritableFile> base, std::string path,
                     uint64_t size)
      : env_(env), base_(std::move(base)), path_(std::move(path)),
        size_(size) {}

  Status Append(std::string_view data) override {
    size_t partial = 0;
    Status error;
    switch (env_->NextOp(OpKind::kAppend, &partial, &error)) {
      case Action::kApply: {
        Status status = base_->Append(data);
        if (status.ok()) size_ += data.size();
        return status;
      }
      case Action::kCrashPartial: {
        partial = std::min(partial, data.size());
        if (base_->Append(data.substr(0, partial)).ok()) size_ += partial;
        env_->TriggerCrash();
        return error;
      }
      case Action::kCrashSkip:
        env_->TriggerCrash();
        return error;
      case Action::kFail: {
        partial = std::min(partial, data.size());
        if (partial > 0 && base_->Append(data.substr(0, partial)).ok()) {
          size_ += partial;
        }
        return error;
      }
      case Action::kDead:
        return error;
    }
    return error;
  }

  Status Sync() override {
    size_t partial = 0;
    Status error;
    switch (env_->NextOp(OpKind::kSync, &partial, &error)) {
      case Action::kApply: {
        Status status = base_->Sync();
        if (status.ok()) env_->MarkSynced(path_, size_);
        return status;
      }
      case Action::kCrashPartial:
      case Action::kCrashSkip:
        env_->TriggerCrash();
        return error;
      case Action::kFail:
      case Action::kDead:
        return error;
    }
    return error;
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<WritableFile> base_;
  std::string path_;
  uint64_t size_;  // bytes that reached the base file
};

FaultInjectingEnv::FaultInjectingEnv(Env* base) : base_(base) {}
FaultInjectingEnv::~FaultInjectingEnv() = default;

void FaultInjectingEnv::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  op_counter_ = 0;
  crash_at_op_ = -1;
  fail_at_op_ = -1;
  fault_partial_bytes_ = 0;
  drop_unsynced_ = false;
  crashed_ = false;
  synced_size_.clear();
}

void FaultInjectingEnv::CrashAtOp(int64_t op, size_t partial_bytes,
                                  bool drop_unsynced) {
  std::lock_guard<std::mutex> lock(mutex_);
  crash_at_op_ = op;
  fail_at_op_ = -1;
  fault_partial_bytes_ = partial_bytes;
  drop_unsynced_ = drop_unsynced;
}

void FaultInjectingEnv::FailAtOp(int64_t op, size_t partial_bytes,
                                 std::string message) {
  std::lock_guard<std::mutex> lock(mutex_);
  fail_at_op_ = op;
  crash_at_op_ = -1;
  fault_partial_bytes_ = partial_bytes;
  fail_message_ = std::move(message);
}

int64_t FaultInjectingEnv::ops_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return op_counter_;
}

bool FaultInjectingEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return crashed_;
}

FaultInjectingEnv::Action FaultInjectingEnv::NextOp(OpKind kind,
                                                    size_t* partial,
                                                    Status* error) {
  (void)kind;
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_) {
    *error = Status::Internal("simulated crash (post-crash IO)");
    return Action::kDead;
  }
  int64_t op = op_counter_++;
  if (op == crash_at_op_) {
    *error = Status::Internal("simulated crash at op " + std::to_string(op));
    *partial = fault_partial_bytes_;
    return fault_partial_bytes_ > 0 ? Action::kCrashPartial
                                    : Action::kCrashSkip;
  }
  if (op == fail_at_op_) {
    *error = Status::Internal(fail_message_);
    *partial = fault_partial_bytes_;
    return Action::kFail;
  }
  return Action::kApply;
}

void FaultInjectingEnv::TriggerCrash() {
  std::lock_guard<std::mutex> lock(mutex_);
  crashed_ = true;
  if (!drop_unsynced_) return;
  // Page-cache loss: every tracked file falls back to its last synced
  // size. Files never synced since creation come back empty.
  for (const auto& [path, synced] : synced_size_) {
    auto size = base_->GetFileSize(path);
    if (size.ok() && *size > synced) {
      base_->TruncateFile(path, synced);
    }
  }
}

void FaultInjectingEnv::MarkSynced(const std::string& path, uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  synced_size_[path] = size;
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (crashed_) return Status::Internal("simulated crash (post-crash IO)");
  }
  uint64_t existing = 0;
  if (!truncate) {
    auto size = base_->GetFileSize(path);
    if (size.ok()) existing = *size;
  }
  AUDITDB_ASSIGN_OR_RETURN(auto base_file,
                           base_->NewWritableFile(path, truncate));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (truncate) {
      synced_size_[path] = 0;
    } else if (synced_size_.count(path) == 0) {
      // Pre-existing bytes (e.g. a recovered WAL) are already durable.
      synced_size_[path] = existing;
    }
  }
  return std::unique_ptr<WritableFile>(std::make_unique<FaultyWritableFile>(
      this, std::move(base_file), path, existing));
}

Result<std::unique_ptr<SequentialFile>> FaultInjectingEnv::NewSequentialFile(
    const std::string& path) {
  return base_->NewSequentialFile(path);
}

Result<std::string> FaultInjectingEnv::ReadFileToString(
    const std::string& path) {
  return base_->ReadFileToString(path);
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  size_t partial = 0;
  Status error;
  switch (NextOp(OpKind::kRename, &partial, &error)) {
    case Action::kApply:
      break;
    case Action::kCrashPartial: {
      // partial > 0 models "the rename hit the journal before the
      // crash": it applies, then the process dies.
      Status status = base_->RenameFile(from, to);
      if (status.ok()) {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = synced_size_.find(from);
        if (it != synced_size_.end()) {
          synced_size_[to] = it->second;
          synced_size_.erase(it);
        }
      }
      TriggerCrash();
      return error;
    }
    case Action::kCrashSkip:
      TriggerCrash();
      return error;
    case Action::kFail:
    case Action::kDead:
      return error;
  }
  AUDITDB_RETURN_IF_ERROR(base_->RenameFile(from, to));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = synced_size_.find(from);
  if (it != synced_size_.end()) {
    synced_size_[to] = it->second;
    synced_size_.erase(it);
  } else {
    synced_size_.erase(to);
  }
  return Status::Ok();
}

Status FaultInjectingEnv::DeleteFile(const std::string& path) {
  size_t partial = 0;
  Status error;
  switch (NextOp(OpKind::kDelete, &partial, &error)) {
    case Action::kApply:
      break;
    case Action::kCrashPartial:
      base_->DeleteFile(path);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        synced_size_.erase(path);
      }
      TriggerCrash();
      return error;
    case Action::kCrashSkip:
      TriggerCrash();
      return error;
    case Action::kFail:
    case Action::kDead:
      return error;
  }
  AUDITDB_RETURN_IF_ERROR(base_->DeleteFile(path));
  std::lock_guard<std::mutex> lock(mutex_);
  synced_size_.erase(path);
  return Status::Ok();
}

Status FaultInjectingEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  size_t partial = 0;
  Status error;
  switch (NextOp(OpKind::kTruncate, &partial, &error)) {
    case Action::kApply:
      break;
    case Action::kCrashPartial:
      base_->TruncateFile(path, size);
      TriggerCrash();
      return error;
    case Action::kCrashSkip:
      TriggerCrash();
      return error;
    case Action::kFail:
    case Action::kDead:
      return error;
  }
  AUDITDB_RETURN_IF_ERROR(base_->TruncateFile(path, size));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = synced_size_.find(path);
  if (it != synced_size_.end() && it->second > size) it->second = size;
  return Status::Ok();
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FaultInjectingEnv::GetFileSize(const std::string& path) {
  return base_->GetFileSize(path);
}

Status FaultInjectingEnv::CreateDirIfMissing(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (crashed_) return Status::Internal("simulated crash (post-crash IO)");
  }
  return base_->CreateDirIfMissing(path);
}

Result<std::vector<std::string>> FaultInjectingEnv::ListDir(
    const std::string& path) {
  return base_->ListDir(path);
}

Status FaultInjectingEnv::SyncDir(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (crashed_) return Status::Internal("simulated crash (post-crash IO)");
  }
  return base_->SyncDir(path);
}

}  // namespace io
}  // namespace auditdb
