#ifndef AUDITDB_IO_CHECKSUM_H_
#define AUDITDB_IO_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace auditdb {
namespace io {

/// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — the checksum
/// every on-disk record in the durability layer carries (WAL frames,
/// docs/durability.md). Software slicing-by-8 implementation; no
/// hardware dependency.

/// CRC of `data`, continuing from `seed` (0 starts a fresh CRC).
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

/// Stored CRCs are masked (rotate + constant, the LevelDB scheme) so
/// that computing the CRC of a byte string that itself contains
/// embedded CRCs does not degenerate.
inline constexpr uint32_t kCrcMaskDelta = 0xa282ead8u;

inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kCrcMaskDelta;
}

inline uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - kCrcMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace io
}  // namespace auditdb

#endif  // AUDITDB_IO_CHECKSUM_H_
