#ifndef AUDITDB_IO_DUMP_H_
#define AUDITDB_IO_DUMP_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/timestamp.h"
#include "src/io/file.h"
#include "src/querylog/query_log.h"
#include "src/storage/database.h"

namespace auditdb {
namespace io {

/// Line-oriented text dump format for databases and query logs, so
/// fixtures and incident data can be shipped as files (used by the
/// audit_shell tool and tests):
///
///   TABLE P-Personal
///   COLUMNS pid:STRING,name:STRING,age:INT,...
///   ROW 11|S:p1|S:Jane|I:25|...
///   END
///   QUERY 1|1083416400000000|alice|doctor|treatment|SELECT ...
///
/// Values carry a type tag (S: string, I: int, D: double, B: bool,
/// T: timestamp micros, N null); strings escape backslash, pipe and
/// newline. Loading a database dump fires the normal insert triggers, so
/// an attached backlog sees the load.

/// Serializes every table (schema + rows with tids).
Status WriteDatabaseDump(const Database& db, std::ostream& out);

/// Creates the dumped tables in `db` (which must not already contain
/// them) and inserts all rows with their original tids, stamped `ts`.
Status ReadDatabaseDump(std::istream& in, Database* db, Timestamp ts);

/// Serializes the query log.
Status WriteQueryLogDump(const QueryLog& log, std::ostream& out);

/// Appends the dumped queries to `log` (fresh ids are assigned in dump
/// order; annotations and timestamps are preserved).
Status ReadQueryLogDump(std::istream& in, QueryLog* log);

/// File convenience wrappers. Saves are crash-safe: the dump is
/// rendered in memory, written to `path + ".tmp"`, fsynced, and
/// atomically renamed over `path` (AtomicWriteFile), so a failure —
/// full disk, short write, crash — leaves any previous file intact and
/// returns a non-OK Status instead of silently truncating. The Env
/// overloads exist so tests can inject IO faults (io::FaultInjectingEnv).
Status SaveDatabase(const Database& db, const std::string& path);
Status SaveDatabase(Env* env, const Database& db, const std::string& path);
Status LoadDatabase(const std::string& path, Database* db, Timestamp ts);
Status LoadDatabase(Env* env, const std::string& path, Database* db,
                    Timestamp ts);
Status SaveQueryLog(const QueryLog& log, const std::string& path);
Status SaveQueryLog(Env* env, const QueryLog& log, const std::string& path);
Status LoadQueryLog(const std::string& path, QueryLog* log);
Status LoadQueryLog(Env* env, const std::string& path, QueryLog* log);

/// Value encoding used by the dump format (exposed for tests).
std::string EncodeValue(const Value& value);
Result<Value> DecodeValue(const std::string& text);

/// Field escaping shared by the dump format and the network wire
/// protocol (src/net): backslash, pipe, newline and carriage return map
/// to \\, \p, \n, \r; every other byte (including non-ASCII) passes
/// through, so any byte string survives a pipe-separated line.
std::string EscapeField(const std::string& raw);
Result<std::string> UnescapeField(const std::string& text);

/// Splits a line on unescaped pipes; the returned fields are still
/// escaped (feed them to UnescapeField).
std::vector<std::string> SplitEscapedFields(const std::string& line);

}  // namespace io
}  // namespace auditdb

#endif  // AUDITDB_IO_DUMP_H_
