#ifndef AUDITDB_IO_FILE_H_
#define AUDITDB_IO_FILE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace auditdb {
namespace io {

/// A minimal Env/file abstraction over POSIX fds, so the durability
/// layer (WAL, snapshots, MANIFEST — docs/durability.md) writes through
/// an interface a test can replace with a fault injector. All paths are
/// plain OS paths; all methods return Status instead of throwing.

/// Append-only file handle with explicit durability control. Append()
/// buffers in the OS page cache; data is only crash-durable after a
/// successful Sync() (fdatasync). Close() does NOT imply Sync().
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  /// fdatasync: on OK, every appended byte survives a crash.
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Forward-only reader.
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;
  /// Reads up to `n` bytes into `scratch`; returns the count (0 at EOF).
  virtual Result<size_t> Read(size_t n, char* scratch) = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide POSIX environment.
  static Env* Default();

  /// `truncate` starts the file empty; otherwise appends to what exists
  /// (the WAL reopen-after-recovery path).
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate = true) = 0;
  virtual Result<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) = 0;
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  /// POSIX rename(2): atomic replacement of `to`.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> GetFileSize(const std::string& path) = 0;
  virtual Status CreateDirIfMissing(const std::string& path) = 0;
  /// Entry names (no directory prefix), unsorted; "." and ".." omitted.
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& path) = 0;
  /// fsync the directory itself, making renames/creates/unlinks in it
  /// crash-durable.
  virtual Status SyncDir(const std::string& path) = 0;
};

/// The write-temp-fsync-rename helper every snapshot/MANIFEST/port-file
/// write goes through: writes `data` to `path + ".tmp"`, fsyncs it,
/// atomically renames over `path`, and fsyncs the parent directory.
/// On any error the destination is left untouched (a stale ".tmp" may
/// remain; recovery deletes orphaned temps).
Status AtomicWriteFile(Env* env, const std::string& path,
                       std::string_view data);

/// Joins a directory and a file name with exactly one separator.
std::string JoinPath(const std::string& dir, const std::string& name);

/// An Env wrapper that injects faults at scripted points, for crash-
/// recovery property tests (tests/io/). Every state-changing operation
/// — WritableFile::Append / Sync, RenameFile, TruncateFile, DeleteFile
/// — is one *fault point*, numbered from 0 in execution order.
///
/// Two modes:
///
///  - **Crash** (`CrashAtOp`): ops before the crash point apply
///    normally; the crashing op applies partially (an Append keeps
///    `partial_bytes` of its payload, a rename/delete/truncate with
///    `partial_bytes == 0` does not happen at all, otherwise it does);
///    every later op fails with Internal("simulated crash"). If
///    `drop_unsynced` is set, data appended since each file's last
///    successful Sync is also torn away (the page-cache-loss model) —
///    the crashing append's partial bytes are dropped with it.
///  - **Fail** (`FailAtOp`): the op returns an error (short-writing an
///    Append to `partial_bytes` first, modelling ENOSPC mid-write) but
///    the process "survives": later ops succeed.
///
/// `ops_recorded()` after a fault-free run gives the schedule length, so
/// a harness can exhaustively re-run with a crash at every point.
class FaultInjectingEnv : public Env {
 public:
  explicit FaultInjectingEnv(Env* base);
  ~FaultInjectingEnv() override;

  /// Clears any armed fault and the op counter.
  void Reset();
  void CrashAtOp(int64_t op, size_t partial_bytes = 0,
                 bool drop_unsynced = false);
  void FailAtOp(int64_t op, size_t partial_bytes = 0,
                std::string message = "injected IO error");
  /// Fault points executed so far (== schedule length after a clean run).
  int64_t ops_recorded() const;
  bool crashed() const;

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status DeleteFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  Status CreateDirIfMissing(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  Status SyncDir(const std::string& path) override;

 private:
  class FaultyWritableFile;
  friend class FaultyWritableFile;

  enum class OpKind { kAppend, kSync, kRename, kDelete, kTruncate };

  /// Consumes one fault point. The caller applies the effect the action
  /// dictates, then (for crash actions) calls TriggerCrash():
  ///   kApply        apply fully, succeed
  ///   kCrashPartial apply `*partial` bytes (appends) / apply the op
  ///                 (rename, delete, truncate), then crash
  ///   kCrashSkip    apply nothing, crash
  ///   kFail         apply `*partial` bytes (short write), return the
  ///                 error, keep running
  ///   kDead         post-crash: apply nothing, return the error
  enum class Action { kApply, kCrashPartial, kCrashSkip, kFail, kDead };
  Action NextOp(OpKind kind, size_t* partial, Status* error);
  void TriggerCrash();
  void MarkSynced(const std::string& path, uint64_t size);

  /// Tears unsynced bytes off every tracked file (crash model).
  void DropUnsynced();

  Env* base_;
  mutable std::mutex mutex_;
  int64_t op_counter_ = 0;
  int64_t crash_at_op_ = -1;
  int64_t fail_at_op_ = -1;
  size_t fault_partial_bytes_ = 0;
  bool drop_unsynced_ = false;
  std::string fail_message_;
  bool crashed_ = false;
  /// path -> size at last successful Sync (files opened through this
  /// env; renames transfer the entry, deletes erase it).
  std::map<std::string, uint64_t> synced_size_;
};

}  // namespace io
}  // namespace auditdb

#endif  // AUDITDB_IO_FILE_H_
