#include "src/io/dump.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "src/common/string_util.h"
#include "src/io/file.h"

namespace auditdb {
namespace io {

namespace {

/// The dump payload view of a raw getline() result: the line terminator
/// (including the \r of a CRLF file) and leading indentation go, but
/// trailing spaces stay — they may belong to the last field. Full
/// Trim() here would corrupt fields that legitimately end in
/// whitespace (escaped \r never reaches this path).
std::string_view PayloadLine(const std::string& line) {
  std::string_view view(line);
  while (!view.empty() &&
         (view.back() == '\n' || view.back() == '\r')) {
    view.remove_suffix(1);
  }
  while (!view.empty() && (view.front() == ' ' || view.front() == '\t')) {
    view.remove_prefix(1);
  }
  return view;
}


/// Parses an entire string as a signed 64-bit integer (no exceptions).
bool ParseInt64(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

/// Parses an entire string as a double (no exceptions).
bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

Result<ValueType> ParseTypeName(const std::string& name) {
  if (name == "STRING") return ValueType::kString;
  if (name == "INT") return ValueType::kInt;
  if (name == "DOUBLE") return ValueType::kDouble;
  if (name == "BOOL") return ValueType::kBool;
  if (name == "TIMESTAMP") return ValueType::kTimestamp;
  if (name == "NULL") return ValueType::kNull;
  return Status::ParseError("unknown column type: " + name);
}

}  // namespace

std::string EscapeField(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '|':
        out += "\\p";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Result<std::string> UnescapeField(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\') {
      out += text[i];
      continue;
    }
    if (i + 1 >= text.size()) {
      return Status::ParseError("dangling escape in dump field");
    }
    ++i;
    switch (text[i]) {
      case '\\':
        out += '\\';
        break;
      case 'p':
        out += '|';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      default:
        return Status::ParseError(std::string("unknown escape \\") +
                                  text[i]);
    }
  }
  return out;
}

std::vector<std::string> SplitEscapedFields(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      current += line[i];
      current += line[i + 1];
      ++i;
      continue;
    }
    if (line[i] == '|') {
      fields.push_back(std::move(current));
      current.clear();
      continue;
    }
    current += line[i];
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string EncodeValue(const Value& value) {
  switch (value.type()) {
    case ValueType::kNull:
      return "N";
    case ValueType::kBool:
      return value.bool_value() ? "B:1" : "B:0";
    case ValueType::kInt:
      return "I:" + std::to_string(value.int_value());
    case ValueType::kDouble: {
      std::ostringstream out;
      out.precision(17);
      out << "D:" << value.double_value();
      return out.str();
    }
    case ValueType::kString:
      return "S:" + EscapeField(value.string_value());
    case ValueType::kTimestamp:
      return "T:" + std::to_string(value.time_value().micros());
  }
  return "N";
}

Result<Value> DecodeValue(const std::string& text) {
  if (text == "N") return Value::Null();
  if (text.size() < 2 || text[1] != ':') {
    return Status::ParseError("malformed value encoding: " + text);
  }
  std::string payload = text.substr(2);
  switch (text[0]) {
    case 'B':
      return Value::Bool(payload == "1");
    case 'I': {
      int64_t v;
      if (!ParseInt64(payload, &v)) {
        return Status::ParseError("bad INT payload: " + payload);
      }
      return Value::Int(v);
    }
    case 'D': {
      double v;
      if (!ParseDouble(payload, &v)) {
        return Status::ParseError("bad DOUBLE payload: " + payload);
      }
      return Value::Double(v);
    }
    case 'S': {
      auto raw = UnescapeField(payload);
      if (!raw.ok()) return raw.status();
      return Value::String(std::move(*raw));
    }
    case 'T': {
      int64_t v;
      if (!ParseInt64(payload, &v)) {
        return Status::ParseError("bad TIMESTAMP payload: " + payload);
      }
      return Value::Time(Timestamp(v));
    }
    default:
      return Status::ParseError("unknown value tag in: " + text);
  }
}

Status WriteDatabaseDump(const Database& db, std::ostream& out) {
  for (const auto& name : db.TableNames()) {
    auto table = db.GetTable(name);
    if (!table.ok()) return table.status();
    out << "TABLE " << name << "\n";
    out << "COLUMNS ";
    const auto& schema = (*table)->schema();
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      if (i > 0) out << ",";
      out << schema.column(i).name << ":"
          << ValueTypeName(schema.column(i).type);
    }
    out << "\n";
    for (const auto& row : (*table)->rows()) {
      out << "ROW " << row.tid;
      for (const auto& value : row.values) {
        out << "|" << EncodeValue(value);
      }
      out << "\n";
    }
    out << "END\n";
  }
  return out.good() ? Status::Ok()
                    : Status::Internal("write failure in database dump");
}

Status ReadDatabaseDump(std::istream& in, Database* db, Timestamp ts) {
  std::string line;
  std::string current_table;
  while (std::getline(in, line)) {
    std::string_view payload = PayloadLine(line);
    std::string_view trimmed = Trim(payload);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (StartsWith(trimmed, "TABLE ")) {
      current_table = std::string(trimmed.substr(6));
      // COLUMNS line must follow.
      if (!std::getline(in, line)) {
        return Status::ParseError("dump truncated after TABLE");
      }
      std::string_view columns_line = Trim(line);
      if (!StartsWith(columns_line, "COLUMNS ")) {
        return Status::ParseError("expected COLUMNS after TABLE " +
                                  current_table);
      }
      std::vector<Column> columns;
      for (const auto& piece :
           Split(std::string(columns_line.substr(8)), ',')) {
        auto parts = Split(piece, ':');
        if (parts.size() != 2) {
          return Status::ParseError("malformed column spec: " + piece);
        }
        auto type = ParseTypeName(parts[1]);
        if (!type.ok()) return type.status();
        columns.push_back(Column{parts[0], *type});
      }
      AUDITDB_RETURN_IF_ERROR(
          db->CreateTable(TableSchema(current_table, std::move(columns))));
      continue;
    }
    if (StartsWith(payload, "ROW ")) {
      if (current_table.empty()) {
        return Status::ParseError("ROW outside of TABLE block");
      }
      // Split the untrimmed payload: the last value may end in spaces.
      auto fields = SplitEscapedFields(std::string(payload.substr(4)));
      if (fields.empty()) {
        return Status::ParseError("empty ROW line");
      }
      Tid tid;
      if (!ParseInt64(fields[0], &tid)) {
        return Status::ParseError("bad tid: " + fields[0]);
      }
      std::vector<Value> values;
      for (size_t i = 1; i < fields.size(); ++i) {
        auto value = DecodeValue(fields[i]);
        if (!value.ok()) return value.status();
        values.push_back(std::move(*value));
      }
      AUDITDB_RETURN_IF_ERROR(
          db->InsertWithTid(current_table, tid, std::move(values), ts));
      continue;
    }
    if (trimmed == "END") {
      current_table.clear();
      continue;
    }
    if (StartsWith(trimmed, "QUERY ")) {
      return Status::ParseError(
          "QUERY line in database dump (use ReadQueryLogDump)");
    }
    return Status::ParseError("unrecognized dump line: " +
                              std::string(trimmed));
  }
  return Status::Ok();
}

Status WriteQueryLogDump(const QueryLog& log, std::ostream& out) {
  const size_t num_logged = log.size();
  for (size_t i = 0; i < num_logged; ++i) {
    const auto& entry = log.Entry(i);
    out << "QUERY " << entry.id << "|" << entry.timestamp.micros() << "|"
        << EscapeField(entry.user) << "|" << EscapeField(entry.role) << "|"
        << EscapeField(entry.purpose) << "|" << EscapeField(entry.sql)
        << "\n";
  }
  return out.good() ? Status::Ok()
                    : Status::Internal("write failure in query-log dump");
}

Status ReadQueryLogDump(std::istream& in, QueryLog* log) {
  std::string line;
  while (std::getline(in, line)) {
    std::string_view payload = PayloadLine(line);
    std::string_view trimmed = Trim(payload);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (!StartsWith(payload, "QUERY ")) {
      return Status::ParseError("unrecognized query-log line: " +
                                std::string(trimmed));
    }
    // Split the untrimmed payload: the SQL field may end in spaces.
    auto fields = SplitEscapedFields(std::string(payload.substr(6)));
    if (fields.size() != 6) {
      return Status::ParseError("QUERY line needs 6 fields, got " +
                                std::to_string(fields.size()));
    }
    int64_t micros;
    if (!ParseInt64(fields[1], &micros)) {
      return Status::ParseError("bad timestamp: " + fields[1]);
    }
    auto user = UnescapeField(fields[2]);
    auto role = UnescapeField(fields[3]);
    auto purpose = UnescapeField(fields[4]);
    auto sql = UnescapeField(fields[5]);
    if (!user.ok()) return user.status();
    if (!role.ok()) return role.status();
    if (!purpose.ok()) return purpose.status();
    if (!sql.ok()) return sql.status();
    log->Append(std::move(*sql), Timestamp(micros), std::move(*user),
                std::move(*role), std::move(*purpose));
  }
  return Status::Ok();
}

Status SaveDatabase(const Database& db, const std::string& path) {
  return SaveDatabase(Env::Default(), db, path);
}

Status SaveDatabase(Env* env, const Database& db, const std::string& path) {
  std::ostringstream out;
  AUDITDB_RETURN_IF_ERROR(WriteDatabaseDump(db, out));
  return AtomicWriteFile(env, path, out.str());
}

Status LoadDatabase(const std::string& path, Database* db, Timestamp ts) {
  return LoadDatabase(Env::Default(), path, db, ts);
}

Status LoadDatabase(Env* env, const std::string& path, Database* db,
                    Timestamp ts) {
  AUDITDB_ASSIGN_OR_RETURN(std::string text, env->ReadFileToString(path));
  std::istringstream in(text);
  return ReadDatabaseDump(in, db, ts);
}

Status SaveQueryLog(const QueryLog& log, const std::string& path) {
  return SaveQueryLog(Env::Default(), log, path);
}

Status SaveQueryLog(Env* env, const QueryLog& log, const std::string& path) {
  std::ostringstream out;
  AUDITDB_RETURN_IF_ERROR(WriteQueryLogDump(log, out));
  return AtomicWriteFile(env, path, out.str());
}

Status LoadQueryLog(const std::string& path, QueryLog* log) {
  return LoadQueryLog(Env::Default(), path, log);
}

Status LoadQueryLog(Env* env, const std::string& path, QueryLog* log) {
  AUDITDB_ASSIGN_OR_RETURN(std::string text, env->ReadFileToString(path));
  std::istringstream in(text);
  return ReadQueryLogDump(in, log);
}

}  // namespace io
}  // namespace auditdb
