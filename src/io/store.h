#ifndef AUDITDB_IO_STORE_H_
#define AUDITDB_IO_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/common/timestamp.h"
#include "src/io/file.h"
#include "src/querylog/query_log.h"
#include "src/querylog/wal.h"
#include "src/storage/database.h"

namespace auditdb {
namespace io {

/// Crash-safe persistence for the served stores (docs/durability.md).
/// On-disk layout inside the data directory:
///
///   MANIFEST            "snapshot <seq>\n" — the commit pointer,
///                       always replaced atomically
///   snapshot-<seq>.db   database dump (src/io/dump.h text format)
///   snapshot-<seq>.log  query-log dump
///   wal-<seq>.log       CRC-framed WAL extending snapshot <seq>
///                       (src/querylog/wal.h); first record names the
///                       snapshot it belongs to
///   *.tmp               in-flight atomic writes; deleted on open
///
/// Recovery = load the MANIFEST's snapshot, replay the WAL's valid
/// prefix, truncate the torn tail. A checkpoint writes both snapshot
/// files and a fresh WAL *before* atomically repointing MANIFEST, so a
/// crash at any byte of the schedule recovers to either the old or the
/// new checkpoint — never a mix (tests/io/store_test.cc proves this for
/// every fault point).
struct DurableStoreOptions {
  querylog::FsyncPolicy fsync = querylog::FsyncPolicy::kAlways;
  size_t fsync_every_n = 64;
  /// Automatic checkpoint cadence in WAL query records (0 = only
  /// explicit Checkpoint() calls).
  uint64_t checkpoint_every_records = 4096;
};

struct RecoveryInfo {
  bool manifest_found = false;
  uint64_t snapshot_seq = 0;
  /// Log entries restored from the snapshot dump.
  uint64_t snapshot_queries = 0;
  /// WAL query records replayed on top of the snapshot.
  uint64_t recovered_records = 0;
  /// Bytes of torn/corrupt WAL tail dropped at the recovery point.
  uint64_t torn_tail_dropped = 0;
};

/// Not thread-safe for mutations: AppendQuery/Checkpoint must run under
/// the caller's writer lock (the net server's state_mutex). The metric
/// accessors and MetricsJson are safe to call concurrently.
class DurableStore {
 public:
  /// True when `dir` holds a MANIFEST, i.e. Open() will restore state
  /// from disk (callers skip fixture loading in that case).
  static bool HasManifest(Env* env, const std::string& dir);

  /// Opens (creating if missing) the store in `dir`. With a MANIFEST
  /// present, `db` and `log` must be empty; the snapshot is loaded into
  /// them (rows stamped `ts`) and the WAL's valid prefix replayed on
  /// top. Without one, the caller's current db/log contents become
  /// checkpoint 1.
  static Result<std::unique_ptr<DurableStore>> Open(
      Env* env, const std::string& dir, Database* db, QueryLog* log,
      Timestamp ts, DurableStoreOptions options = DurableStoreOptions{});

  ~DurableStore();

  const RecoveryInfo& recovery() const { return recovery_; }

  /// WAL-appends one query-log entry; call *before* the in-memory
  /// append is acked, with `entry.id` set to the id the in-memory log
  /// will assign. Under fsync=always an OK return means the record
  /// survives kill -9. Any IO failure wedges the store (broken()) —
  /// durability can no longer be promised, so nothing further acks.
  Status AppendQuery(const LoggedQuery& entry);

  /// True once the automatic cadence is due.
  bool ShouldCheckpoint() const;

  /// Writes snapshot <seq+1> + fresh WAL, atomically commits MANIFEST,
  /// then prunes the previous checkpoint's files. On failure before the
  /// commit point the store keeps running on the old WAL.
  Status Checkpoint(const Database& db, const QueryLog& log);

  /// Forces the WAL to disk regardless of fsync policy.
  Status Sync();

  /// A sync/write failure occurred; the store refuses further appends
  /// (fsync failure semantics: retrying cannot restore the guarantee).
  bool broken() const { return broken_.load(std::memory_order_relaxed); }

  uint64_t last_checkpoint_seq() const {
    return seq_.load(std::memory_order_relaxed);
  }
  /// Query records / bytes in the current WAL (since last checkpoint).
  uint64_t wal_records() const {
    return wal_records_.load(std::memory_order_relaxed);
  }
  uint64_t wal_bytes() const {
    return wal_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t checkpoints() const {
    return checkpoints_.load(std::memory_order_relaxed);
  }

  /// {"wal_bytes":..,"wal_records":..,"recovered_records":..,
  ///  "torn_tail_dropped":..,"last_checkpoint_seq":..,...} — merged into
  ///  the Metrics endpoint as the "durability" section.
  std::string MetricsJson() const;

  const std::string& dir() const { return dir_; }
  Env* env() const { return env_; }
  /// The policy the store was opened with; the replication apply path
  /// reads it to decide whether fsync-before-ack needs an extra Sync().
  const DurableStoreOptions& store_options() const { return options_; }

 private:
  DurableStore(Env* env, std::string dir, DurableStoreOptions options);

  std::string SnapshotPath(uint64_t seq, const char* kind) const;
  std::string WalPath(uint64_t seq) const;
  std::string ManifestPath() const;
  /// Deletes *.tmp files and snapshot/WAL files of other sequences.
  void PruneExcept(uint64_t keep_seq);

  Env* env_;
  std::string dir_;
  DurableStoreOptions options_;
  RecoveryInfo recovery_;
  std::unique_ptr<querylog::WalWriter> wal_;
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> wal_records_{0};
  std::atomic<uint64_t> wal_bytes_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> checkpoint_failures_{0};
  std::atomic<bool> broken_{false};
};

}  // namespace io
}  // namespace auditdb

#endif  // AUDITDB_IO_STORE_H_
