#include "src/engine/executor.h"

#include <algorithm>
#include <unordered_map>

#include "src/engine/table_scan.h"
#include "src/expr/analysis.h"
#include "src/expr/evaluator.h"

namespace auditdb {

namespace {

/// A conjunct scheduled for evaluation once all its tables are joined.
struct ScheduledConjunct {
  ExprPtr expr;       // bound
  size_t ready_at;    // index of the last FROM table it references
};

/// Per-join-position hash acceleration: probe an earlier column's value
/// against a hash of this table's rows keyed by one of its columns.
struct HashJoinPlan {
  bool enabled = false;
  int probe_slot = -1;   // slot (filled earlier) whose value we look up
  size_t build_column = 0;  // column index within this table's schema
  std::unordered_map<Value, std::vector<size_t>> build;
};

class ExecutionContext {
 public:
  ExecutionContext(const sql::SelectStatement& stmt, const DatabaseView& db,
                   const ExecOptions& options)
      : db_(db), options_(options), stmt_(stmt.Clone()) {}

  Result<QueryResult> Run() {
    AUDITDB_RETURN_IF_ERROR(Setup());
    if (!tables_.empty()) {
      combined_.assign(layout_.width(), Value());
      tids_.assign(tables_.size(), 0);
      AUDITDB_RETURN_IF_ERROR(Enumerate(0));
    }
    return std::move(result_);
  }

 private:
  Status Setup() {
    if (stmt_.from.empty()) {
      return Status::InvalidArgument("query has no FROM clause");
    }
    // Reject duplicate FROM entries (no alias support).
    for (size_t i = 0; i < stmt_.from.size(); ++i) {
      for (size_t j = i + 1; j < stmt_.from.size(); ++j) {
        if (stmt_.from[i] == stmt_.from[j]) {
          return Status::InvalidArgument("duplicate table in FROM: " +
                                         stmt_.from[i]);
        }
      }
    }
    original_from_ = stmt_.from;
    if (options_.reorder_joins && stmt_.from.size() > 1) {
      AUDITDB_RETURN_IF_ERROR(ReorderJoins());
    }
    // lineage_permutation_[i] = position in the (possibly reordered)
    // execution order of the i-th ORIGINAL table.
    lineage_permutation_.resize(original_from_.size());
    for (size_t i = 0; i < original_from_.size(); ++i) {
      for (size_t j = 0; j < stmt_.from.size(); ++j) {
        if (stmt_.from[j] == original_from_[i]) {
          lineage_permutation_[i] = j;
        }
      }
    }
    for (const auto& name : stmt_.from) {
      auto table = db_.GetTable(name);
      if (!table.ok()) return table.status();
      tables_.push_back(*table);
      layout_.AddTable(name, (*table)->schema());
    }

    // Resolve the projection.
    if (stmt_.select_star) {
      result_.columns = layout_.slot_columns();
      projection_slots_.resize(layout_.width());
      for (size_t i = 0; i < layout_.width(); ++i) {
        projection_slots_[i] = static_cast<int>(i);
      }
    } else {
      for (auto& ref : stmt_.select_list) {
        auto resolved = db_.catalog().Resolve(ref, stmt_.from);
        if (!resolved.ok()) return resolved.status();
        auto slot = layout_.Slot(*resolved);
        if (!slot.ok()) return slot.status();
        result_.columns.push_back(*resolved);
        projection_slots_.push_back(*slot);
      }
    }
    result_.from = original_from_;

    // Qualify, bind and schedule WHERE conjuncts.
    if (stmt_.where) {
      AUDITDB_RETURN_IF_ERROR(
          QualifyColumns(stmt_.where.get(), db_.catalog(), stmt_.from));
      AUDITDB_RETURN_IF_ERROR(BindExpression(stmt_.where.get(), layout_));
      for (const Expression* conjunct : SplitConjuncts(stmt_.where.get())) {
        ScheduledConjunct sc;
        sc.expr = conjunct->Clone();
        sc.ready_at = 0;
        for (const ColumnRef& col : CollectColumns(conjunct)) {
          for (size_t i = 0; i < stmt_.from.size(); ++i) {
            if (stmt_.from[i] == col.table) {
              sc.ready_at = std::max(sc.ready_at, i);
            }
          }
        }
        conjuncts_.push_back(std::move(sc));
      }
    }

    // Plan hash joins: for each position > 0, find a bound equi-join
    // conjunct `earlier.col = this.col` of matching column types.
    hash_plans_.resize(tables_.size());
    if (options_.hash_join) {
      for (size_t i = 1; i < tables_.size(); ++i) {
        AUDITDB_RETURN_IF_ERROR(PlanHashJoin(i));
      }
    }

    // Plan index prefilters: positions not served by a hash join can
    // restrict their scan through a secondary index when a same-typed
    // `col op literal` conjunct exists. The conjunct is still evaluated
    // (the prefilter may be a superset, e.g. around NULLs).
    prefilters_.resize(tables_.size());
    if (options_.use_index) {
      for (size_t i = 0; i < tables_.size(); ++i) {
        if (hash_plans_[i].enabled) continue;
        AUDITDB_RETURN_IF_ERROR(PlanIndexPrefilter(i));
      }
    }

    AUDITDB_RETURN_IF_ERROR(PlanScanStages());
    batches_.resize(tables_.size());
    filters_.resize(tables_.size());
    return Status::Ok();
  }

  /// Splits each position's ready conjuncts, in their original order,
  /// into stages: maximal runs of conjuncts reading only this table's
  /// columns compile into one predicate program (precomputed per query
  /// over the table's batch); runs touching earlier tables stay as
  /// tree-walked cross stages. With compiled_scan off, everything is a
  /// cross stage — the exact row-at-a-time baseline.
  Status PlanScanStages() {
    stages_.resize(tables_.size());
    for (size_t i = 0; i < tables_.size(); ++i) {
      size_t offset = layout_.table_offsets()[i].second;
      size_t width = tables_[i]->schema().num_columns();
      std::vector<ExprPtr> run;  // consecutive local conjuncts
      auto flush = [&]() -> Status {
        if (run.empty()) return Status::Ok();
        ExprPtr conj = Expression::MakeConjunction(std::move(run));
        run.clear();
        auto program = PredicateProgram::Compile(*conj, offset, width);
        if (!program.ok()) return program.status();
        ScanStage stage;
        stage.local = true;
        stage.program = std::move(*program);
        stages_[i].push_back(std::move(stage));
        return Status::Ok();
      };
      for (const auto& sc : conjuncts_) {
        if (sc.ready_at != i) continue;
        if (options_.compiled_scan &&
            PredicateProgram::IsLocal(*sc.expr, offset, width)) {
          run.push_back(sc.expr->Clone());
          continue;
        }
        AUDITDB_RETURN_IF_ERROR(flush());
        if (stages_[i].empty() || stages_[i].back().local) {
          stages_[i].emplace_back();
        }
        stages_[i].back().cross.push_back(sc.expr.get());
      }
      AUDITDB_RETURN_IF_ERROR(flush());
    }
    return Status::Ok();
  }

  /// Lazily builds position `i`'s TableFilter (local-stage outcomes over
  /// the table's columnar batch, narrowed to the index prefilter if one
  /// was planned). Built at most once per query, on first visit.
  const TableFilter& Filter(size_t position) {
    if (!filters_[position].has_value()) {
      if (!batches_[position]) {
        batches_[position] = tables_[position]->Columnar();
      }
      std::optional<std::vector<uint32_t>> selection;
      if (prefilters_[position].has_value()) {
        std::vector<uint32_t> rows;
        rows.reserve(prefilters_[position]->size());
        for (size_t r : *prefilters_[position]) {
          rows.push_back(static_cast<uint32_t>(r));
        }
        selection = std::move(rows);
      }
      ScanOptions opts;
      opts.compiled = options_.compiled_scan;
      opts.batch_size = options_.scan_batch_size;
      filters_[position] = BuildTableFilter(*batches_[position],
                                            stages_[position], selection,
                                            opts);
    }
    return *filters_[position];
  }

  /// Greedy selectivity-based ordering: cheapest filtered table first,
  /// then repeatedly the cheapest table connected to the chosen set by an
  /// equi-join conjunct (falling back to the cheapest remaining).
  Status ReorderJoins() {
    // Filtered-cardinality estimate per table: count rows passing the
    // single-table conjuncts.
    std::vector<const Expression*> conjuncts;
    ExprPtr where;
    if (stmt_.where) {
      where = stmt_.where->Clone();
      AUDITDB_RETURN_IF_ERROR(
          QualifyColumns(where.get(), db_.catalog(), stmt_.from));
      conjuncts = SplitConjuncts(where.get());
    }

    std::map<std::string, size_t> estimate;
    ScanOptions scan_opts;
    scan_opts.compiled = options_.compiled_scan;
    scan_opts.batch_size = options_.scan_batch_size;
    for (const auto& name : stmt_.from) {
      auto table = db_.GetTable(name);
      if (!table.ok()) return table.status();
      auto count =
          EstimateFilteredCardinality(**table, name, conjuncts, scan_opts);
      if (!count.ok()) return count.status();
      estimate[name] = *count;
    }

    // Equi-join adjacency.
    std::map<std::string, std::set<std::string>> adjacent;
    for (const Expression* conjunct : conjuncts) {
      ColumnRef lhs, rhs;
      if (IsEquiJoin(*conjunct, &lhs, &rhs)) {
        adjacent[lhs.table].insert(rhs.table);
        adjacent[rhs.table].insert(lhs.table);
      }
    }

    std::vector<std::string> remaining = stmt_.from;
    std::vector<std::string> order;
    std::set<std::string> chosen;
    while (!remaining.empty()) {
      size_t best = 0;
      bool best_connected = false;
      for (size_t i = 0; i < remaining.size(); ++i) {
        bool connected = false;
        for (const auto& t : chosen) {
          if (adjacent[t].count(remaining[i]) > 0) connected = true;
        }
        if (order.empty()) connected = false;  // first pick: pure size
        bool better;
        if (connected != best_connected) {
          better = connected;  // prefer connected tables
        } else {
          better = estimate[remaining[i]] < estimate[remaining[best]];
        }
        if (i == 0 || better) {
          best = i;
          best_connected = connected;
        }
      }
      order.push_back(remaining[best]);
      chosen.insert(remaining[best]);
      remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(best));
    }
    stmt_.from = std::move(order);
    return Status::Ok();
  }

  Status PlanIndexPrefilter(size_t position) {
    const std::string& this_table = stmt_.from[position];
    const TableVersion& table = *tables_[position];
    std::optional<std::vector<Tid>> best;
    for (const auto& sc : conjuncts_) {
      if (sc.ready_at != position) continue;
      ColumnRef col;
      BinaryOp op;
      Value literal;
      if (!IsColumnLiteralComparison(*sc.expr, &col, &op, &literal)) {
        continue;
      }
      if (col.table != this_table || !table.HasIndex(col.column)) continue;
      // Same-typed only: mixed-type comparisons coerce and must scan.
      auto col_idx = table.schema().FindColumn(col.column);
      if (!col_idx.has_value() ||
          table.schema().column(*col_idx).type != literal.type()) {
        continue;
      }
      Result<std::vector<Tid>> tids = std::vector<Tid>{};
      switch (op) {
        case BinaryOp::kEq:
          tids = table.IndexLookupEq(col.column, literal);
          break;
        case BinaryOp::kLt:
          tids = table.IndexLookupRange(
              col.column, std::nullopt,
              IndexBound{literal, /*strict=*/true});
          break;
        case BinaryOp::kLe:
          tids = table.IndexLookupRange(
              col.column, std::nullopt,
              IndexBound{literal, /*strict=*/false});
          break;
        case BinaryOp::kGt:
          tids = table.IndexLookupRange(
              col.column, IndexBound{literal, /*strict=*/true},
              std::nullopt);
          break;
        case BinaryOp::kGe:
          tids = table.IndexLookupRange(
              col.column, IndexBound{literal, /*strict=*/false},
              std::nullopt);
          break;
        default:
          continue;  // <> and LIKE don't index
      }
      if (!tids.ok()) return tids.status();
      if (!best.has_value() || tids->size() < best->size()) {
        best = std::move(*tids);
      }
    }
    if (best.has_value()) {
      std::vector<size_t> positions;
      positions.reserve(best->size());
      for (Tid tid : *best) {
        auto pos = table.GetPosition(tid);
        if (!pos.ok()) continue;
        positions.push_back(*pos);
      }
      prefilters_[position] = std::move(positions);
    }
    return Status::Ok();
  }

  Status PlanHashJoin(size_t position) {
    const std::string& this_table = stmt_.from[position];
    for (const auto& sc : conjuncts_) {
      if (sc.ready_at != position) continue;
      ColumnRef lhs, rhs;
      if (!IsEquiJoin(*sc.expr, &lhs, &rhs)) continue;
      // Normalize so rhs belongs to this table.
      if (lhs.table == this_table) std::swap(lhs, rhs);
      if (rhs.table != this_table) continue;
      // Probe side must be available earlier.
      bool lhs_earlier = false;
      for (size_t j = 0; j < position; ++j) {
        if (stmt_.from[j] == lhs.table) lhs_earlier = true;
      }
      if (!lhs_earlier) continue;
      // Only same-typed keys: hashing must agree with Compare()-equality,
      // which coerces across types; restrict to identical column types.
      auto lt = db_.catalog().TypeOf(lhs);
      auto rt = db_.catalog().TypeOf(rhs);
      if (!lt.ok() || !rt.ok() || *lt != *rt) continue;

      HashJoinPlan& plan = hash_plans_[position];
      auto probe_slot = layout_.Slot(lhs);
      if (!probe_slot.ok()) return probe_slot.status();
      plan.probe_slot = *probe_slot;
      auto col_idx = tables_[position]->schema().FindColumn(rhs.column);
      if (!col_idx.has_value()) {
        return Status::Internal("hash join column vanished: " +
                                rhs.ToString());
      }
      plan.build_column = *col_idx;
      const auto& rows = tables_[position]->rows();
      for (size_t r = 0; r < rows.size(); ++r) {
        plan.build[rows[r].values[plan.build_column]].push_back(r);
      }
      plan.enabled = true;
      return Status::Ok();
    }
    return Status::Ok();
  }

  /// Depth-first join enumeration over FROM positions.
  Status Enumerate(size_t position) {
    if (position == tables_.size()) {
      std::vector<Value> out;
      out.reserve(projection_slots_.size());
      for (int slot : projection_slots_) {
        out.push_back(combined_[static_cast<size_t>(slot)]);
      }
      result_.rows.push_back(std::move(out));
      // Lineage in the query's original FROM order, independent of any
      // join reordering.
      std::vector<Tid> original_tids(tids_.size());
      for (size_t i = 0; i < tids_.size(); ++i) {
        original_tids[i] = tids_[lineage_permutation_[i]];
      }
      result_.lineage.push_back(std::move(original_tids));
      return Status::Ok();
    }

    const TableVersion& table = *tables_[position];
    size_t offset = layout_.table_offsets()[position].second;
    const std::vector<ScanStage>& stages = stages_[position];
    bool any_local = false;
    bool any_cross = false;
    for (const ScanStage& stage : stages) {
      (stage.local ? any_local : any_cross) = true;
    }
    // Local-stage outcomes are independent of outer rows, so they are
    // precomputed once over the table's batch; visits consult the stored
    // tri-state per row. Cross stages still run per combined row.
    const TableFilter* filter = any_local ? &Filter(position) : nullptr;

    auto try_row = [&](size_t r) -> Status {
      const Row& row = table.rows()[r];
      bool copied = false;
      auto materialize = [&]() {
        if (copied) return;
        for (size_t c = 0; c < row.values.size(); ++c) {
          combined_[offset + c] = row.values[c];
        }
        tids_[position] = row.tid;
        copied = true;
      };
      for (size_t s = 0; s < stages.size(); ++s) {
        const ScanStage& stage = stages[s];
        if (stage.local) {
          switch (filter->StageState(s, static_cast<uint32_t>(r))) {
            case TableFilter::RowState::kPass:
              break;
            case TableFilter::RowState::kFail:
              return Status::Ok();  // prune this branch
            case TableFilter::RowState::kError:
              // Surfaced only now, when enumeration actually visits the
              // row: the same moment the interpreter would have errored.
              return filter->StageError(s, static_cast<uint32_t>(r));
          }
          continue;
        }
        materialize();
        for (const Expression* conjunct : stage.cross) {
          auto pass = EvaluatePredicate(conjunct, combined_);
          if (!pass.ok()) return pass.status();
          if (!*pass) return Status::Ok();  // prune this branch
        }
      }
      materialize();
      return Enumerate(position + 1);
    };

    const HashJoinPlan& plan = hash_plans_[position];
    if (plan.enabled) {
      const Value& key = combined_[static_cast<size_t>(plan.probe_slot)];
      auto it = plan.build.find(key);
      if (it == plan.build.end()) return Status::Ok();
      for (size_t r : it->second) {
        AUDITDB_RETURN_IF_ERROR(try_row(r));
      }
      return Status::Ok();
    }
    // Fast path: every ready conjunct was compiled and no row errors, so
    // the passing set IS the visit set (failing rows would only have been
    // pruned; there is no error to surface in row order).
    if (any_local && !any_cross && !filter->has_errors()) {
      for (uint32_t r : filter->passing()) {
        AUDITDB_RETURN_IF_ERROR(try_row(r));
      }
      return Status::Ok();
    }
    if (prefilters_[position].has_value()) {
      for (size_t r : *prefilters_[position]) {
        AUDITDB_RETURN_IF_ERROR(try_row(r));
      }
      return Status::Ok();
    }
    for (size_t r = 0; r < table.rows().size(); ++r) {
      AUDITDB_RETURN_IF_ERROR(try_row(r));
    }
    return Status::Ok();
  }

  const DatabaseView& db_;
  ExecOptions options_;
  sql::SelectStatement stmt_;

  std::vector<const TableVersion*> tables_;
  std::vector<std::string> original_from_;
  std::vector<size_t> lineage_permutation_;
  RowLayout layout_;
  std::vector<int> projection_slots_;
  std::vector<ScheduledConjunct> conjuncts_;
  std::vector<HashJoinPlan> hash_plans_;
  std::vector<std::optional<std::vector<size_t>>> prefilters_;
  std::vector<std::vector<ScanStage>> stages_;
  std::vector<std::shared_ptr<const Batch>> batches_;
  std::vector<std::optional<TableFilter>> filters_;

  std::vector<Value> combined_;
  std::vector<Tid> tids_;
  QueryResult result_;
};

}  // namespace

std::set<Tid> QueryResult::IndispensableTids(const std::string& table) const {
  std::set<Tid> out;
  for (size_t j = 0; j < from.size(); ++j) {
    if (from[j] != table) continue;
    for (const auto& tuple : lineage) {
      if (j < tuple.size()) out.insert(tuple[j]);
    }
  }
  return out;
}

TidBitmap QueryResult::IndispensableTidBitmap(const std::string& table) const {
  TidBitmap out;
  for (size_t j = 0; j < from.size(); ++j) {
    if (from[j] != table) continue;
    for (const auto& tuple : lineage) {
      if (j < tuple.size()) out.Add(tuple[j]);
    }
  }
  return out;
}

Result<std::set<std::vector<Tid>>> QueryResult::ProjectLineage(
    const std::vector<std::string>& tables) const {
  std::vector<size_t> positions;
  for (const auto& t : tables) {
    auto it = std::find(from.begin(), from.end(), t);
    if (it == from.end()) {
      return Status::NotFound("table not in query lineage: " + t);
    }
    positions.push_back(static_cast<size_t>(it - from.begin()));
  }
  std::set<std::vector<Tid>> out;
  for (size_t i = 0; i < lineage.size(); ++i) {
    const auto& tuple = lineage[i];
    if (tuple.size() != from.size()) {
      return Status::Internal(
          "ragged lineage row " + std::to_string(i) + ": " +
          std::to_string(tuple.size()) + " entries for " +
          std::to_string(from.size()) + " FROM tables");
    }
    std::vector<Tid> projected;
    projected.reserve(positions.size());
    for (size_t p : positions) projected.push_back(tuple[p]);
    out.insert(std::move(projected));
  }
  return out;
}

Result<TidBitmap> QueryResult::ProjectLineageBitmap(
    const std::string& table) const {
  auto it = std::find(from.begin(), from.end(), table);
  if (it == from.end()) {
    return Status::NotFound("table not in query lineage: " + table);
  }
  size_t position = static_cast<size_t>(it - from.begin());
  TidBitmap out;
  for (size_t i = 0; i < lineage.size(); ++i) {
    const auto& tuple = lineage[i];
    if (tuple.size() != from.size()) {
      return Status::Internal(
          "ragged lineage row " + std::to_string(i) + ": " +
          std::to_string(tuple.size()) + " entries for " +
          std::to_string(from.size()) + " FROM tables");
    }
    out.Add(tuple[position]);
  }
  return out;
}

std::set<Value> QueryResult::ColumnValues(const ColumnRef& col) const {
  std::set<Value> out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (!(columns[i] == col)) continue;
    for (const auto& row : rows) out.insert(row[i]);
  }
  return out;
}

std::string QueryResult::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += " | ";
    out += columns[i].ToString();
  }
  out += "\n";
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToDisplayString();
    }
    out += "\n";
  }
  return out;
}

Result<QueryResult> Execute(const sql::SelectStatement& stmt,
                            const DatabaseView& db,
                            const ExecOptions& options) {
  ExecutionContext ctx(stmt, db, options);
  return ctx.Run();
}

Result<QueryResult> ExecuteSql(const std::string& sql_text,
                               const DatabaseView& db,
                               const ExecOptions& options) {
  auto stmt = sql::ParseSelect(sql_text);
  if (!stmt.ok()) return stmt.status();
  return Execute(*stmt, db, options);
}

}  // namespace auditdb
