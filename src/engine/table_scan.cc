#include "src/engine/table_scan.h"

#include <algorithm>
#include <numeric>

#include "src/expr/analysis.h"

namespace auditdb {

PredicateProgram::Outcome RunChunked(const PredicateProgram& program,
                                     const Batch& batch,
                                     const std::vector<uint32_t>& sel,
                                     size_t batch_size) {
  if (batch_size == 0 || sel.size() <= batch_size) {
    return program.Run(batch, sel);
  }
  PredicateProgram::Outcome out;
  std::vector<uint32_t> chunk;
  for (size_t i = 0; i < sel.size(); i += batch_size) {
    size_t end = std::min(i + batch_size, sel.size());
    chunk.assign(sel.begin() + static_cast<ptrdiff_t>(i),
                 sel.begin() + static_cast<ptrdiff_t>(end));
    auto o = program.Run(batch, chunk);
    out.passed.insert(out.passed.end(), o.passed.begin(), o.passed.end());
    out.errors.insert(out.errors.end(),
                      std::make_move_iterator(o.errors.begin()),
                      std::make_move_iterator(o.errors.end()));
  }
  return out;
}

TidBitmap SelectionToBitmap(const std::vector<uint32_t>& sel) {
  TidBitmap out;
  for (uint32_t r : sel) out.Add(static_cast<int64_t>(r));
  return out;
}

std::vector<uint32_t> BitmapToSelection(const TidBitmap& bitmap) {
  std::vector<uint32_t> out;
  out.reserve(static_cast<size_t>(bitmap.Cardinality()));
  bitmap.ForEach(
      [&](int64_t row) { out.push_back(static_cast<uint32_t>(row)); });
  return out;
}

PredicateProgram::BitmapOutcome RunChunkedToBitmap(
    const PredicateProgram& program, const Batch& batch, const TidBitmap& sel,
    size_t batch_size) {
  PredicateProgram::BitmapOutcome out;
  std::vector<uint32_t> chunk;
  auto flush = [&] {
    if (chunk.empty()) return;
    auto o = program.RunToBitmap(batch, chunk);
    // Chunks ascend, so the union is a cheap high-key append merge.
    out.passed.Or(o.passed);
    out.errors.insert(out.errors.end(),
                      std::make_move_iterator(o.errors.begin()),
                      std::make_move_iterator(o.errors.end()));
    chunk.clear();
  };
  sel.ForEach([&](int64_t row) {
    chunk.push_back(static_cast<uint32_t>(row));
    if (batch_size != 0 && chunk.size() >= batch_size) flush();
  });
  flush();
  return out;
}

TableFilter BuildTableFilter(
    const Batch& batch, const std::vector<ScanStage>& stages,
    const std::optional<std::vector<uint32_t>>& selection,
    const ScanOptions& opts) {
  TableFilter f;
  std::vector<uint32_t> cur;
  if (selection.has_value()) {
    cur = *selection;
  } else {
    cur.resize(batch.num_rows);
    std::iota(cur.begin(), cur.end(), 0u);
  }
  f.states_.resize(stages.size());
  f.errors_.resize(stages.size());
  for (size_t s = 0; s < stages.size(); ++s) {
    if (!stages[s].local) continue;  // cross stages run per combined row
    auto outcome = RunChunked(stages[s].program, batch, cur, opts.batch_size);
    auto& st = f.states_[s];
    st.assign(batch.num_rows, 0);
    for (uint32_t r : outcome.passed) {
      st[r] = static_cast<uint8_t>(TableFilter::RowState::kPass);
    }
    for (auto& [r, status] : outcome.errors) {
      st[r] = static_cast<uint8_t>(TableFilter::RowState::kError);
      f.errors_[s].emplace(r, std::move(status));
      ++f.total_errors_;
    }
    cur = std::move(outcome.passed);
  }
  f.passing_ = std::move(cur);
  return f;
}

Result<size_t> EstimateFilteredCardinality(
    const TableVersion& table, const std::string& name,
    const std::vector<const Expression*>& conjuncts, const ScanOptions& opts) {
  RowLayout single;
  single.AddTable(name, table.schema());
  std::vector<ExprPtr> bound;
  for (const Expression* conjunct : conjuncts) {
    bool local = true;
    for (const auto& col : CollectColumns(conjunct)) {
      if (col.table != name) {
        local = false;
        break;
      }
    }
    if (!local) continue;
    ExprPtr clone = conjunct->Clone();
    AUDITDB_RETURN_IF_ERROR(BindExpression(clone.get(), single));
    bound.push_back(std::move(clone));
  }
  if (bound.empty()) return table.rows().size();

  if (opts.compiled) {
    std::vector<ExprPtr> clones;
    clones.reserve(bound.size());
    for (const auto& b : bound) clones.push_back(b->Clone());
    ExprPtr conj = Expression::MakeConjunction(std::move(clones));
    auto program = PredicateProgram::Compile(*conj, 0, single.width());
    if (program.ok()) {
      auto batch = table.Columnar();
      TidBitmap all;
      all.AddRange(0, static_cast<int64_t>(batch->num_rows));
      auto out = RunChunkedToBitmap(*program, *batch, all, opts.batch_size);
      // Errors count as fail (they are excluded from `passed`), matching
      // the interpreted estimate below.
      return static_cast<size_t>(out.passed.Cardinality());
    }
  }

  size_t count = 0;
  for (const Row& row : table.rows()) {
    bool pass = true;
    for (const auto& conjunct : bound) {
      auto ok = EvaluatePredicate(conjunct.get(), row.values);
      if (!ok.ok() || !*ok) {
        pass = false;
        break;
      }
    }
    if (pass) ++count;
  }
  return count;
}

}  // namespace auditdb
