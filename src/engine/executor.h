#ifndef AUDITDB_ENGINE_EXECUTOR_H_
#define AUDITDB_ENGINE_EXECUTOR_H_

#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/tid_bitmap.h"
#include "src/sql/parser.h"
#include "src/storage/database.h"

namespace auditdb {

struct ExecOptions {
  /// Accelerate equality joins with a build-side hash table; when false,
  /// every join is a pure nested loop (the ablation baseline).
  bool hash_join = true;
  /// Prefilter scans through secondary indexes (Table::CreateIndex) for
  /// same-typed `col op literal` conjuncts. No effect on tables without
  /// indexes.
  bool use_index = true;
  /// Greedy selectivity-based join reordering: start from the table with
  /// the smallest filtered cardinality, then repeatedly add the smallest
  /// equi-join-connected table. Output rows may come in a different
  /// order, but rows, lineage and `from` keep the query's original table
  /// order. Off by default (the ablation measures when it pays off).
  bool reorder_joins = false;
  /// Evaluate single-table conjuncts as compiled predicate programs over
  /// each table's columnar projection (the scan layer). When false, every
  /// conjunct is tree-interpreted per combined row — the row-at-a-time
  /// ablation baseline. Results are byte-identical either way.
  bool compiled_scan = true;
  /// Rows per predicate-program chunk (bounds the scratch space of the
  /// general register machine; fused filters are insensitive to it).
  size_t scan_batch_size = 1024;
};

/// Result of executing an SPJ query, with lineage: every output row carries
/// the tids of the base rows (one per FROM table) that produced it. The
/// lineage is exactly the witness set for indispensability (Definition 2 in
/// the paper): a base tuple t is indispensable to the query iff it appears
/// in the lineage of at least one output row.
struct QueryResult {
  /// Projected columns, fully qualified, in output order.
  std::vector<ColumnRef> columns;
  /// FROM-clause tables, in the order lineage tuples are laid out.
  std::vector<std::string> from;
  /// Output rows (bag semantics; no duplicate elimination).
  std::vector<std::vector<Value>> rows;
  /// lineage[i][j] = tid of the row of table from[j] behind output row i.
  std::vector<std::vector<Tid>> lineage;

  /// Tids of `table` that are indispensable to the query (empty set if the
  /// table is not in FROM).
  std::set<Tid> IndispensableTids(const std::string& table) const;

  /// Same witness set as IndispensableTids, as a compressed bitmap. The
  /// bitmap iterates in ascending tid order, so consumers stay
  /// byte-identical to the set-based path.
  TidBitmap IndispensableTidBitmap(const std::string& table) const;

  /// Distinct lineage tuples projected onto `tables` (each must be in
  /// FROM), in the order given. Used for joint-indispensability checks.
  /// Errors: NotFound if a table is not in FROM; Internal if a lineage row
  /// is ragged (fewer entries than FROM tables).
  Result<std::set<std::vector<Tid>>> ProjectLineage(
      const std::vector<std::string>& tables) const;

  /// Single-table ProjectLineage as a compressed bitmap, with the same
  /// error behavior. The word-wide kernel behind joint-witness and
  /// shared-tuple intersection tests.
  Result<TidBitmap> ProjectLineageBitmap(const std::string& table) const;

  /// Values appearing in output column `col` (for value-containment access
  /// checks when INDISPENSABLE = false).
  std::set<Value> ColumnValues(const ColumnRef& col) const;

  /// Pretty-printed result table (for examples and debugging).
  std::string ToString() const;
};

/// Executes `stmt` against `db`. Column references are resolved against the
/// view's catalog; the WHERE clause is decomposed into conjuncts that are
/// evaluated as early as possible in the join order (the FROM-clause
/// order), with optional hash acceleration for equi-join conjuncts.
Result<QueryResult> Execute(const sql::SelectStatement& stmt,
                            const DatabaseView& db,
                            const ExecOptions& options = ExecOptions{});

/// Parses and executes `sql_text` in one step.
Result<QueryResult> ExecuteSql(const std::string& sql_text,
                               const DatabaseView& db,
                               const ExecOptions& options = ExecOptions{});

}  // namespace auditdb

#endif  // AUDITDB_ENGINE_EXECUTOR_H_
