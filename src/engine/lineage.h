#ifndef AUDITDB_ENGINE_LINEAGE_H_
#define AUDITDB_ENGINE_LINEAGE_H_

#include <set>
#include <string>

#include "src/engine/executor.h"

namespace auditdb {

/// Everything the auditor needs to know about one executed query:
/// the columns it touched and the lineage-bearing result it produced on
/// the database state it actually ran against.
///
/// In the paper's notation, for query Q = π_{C_OQ}(σ_{P_Q}(T × R)):
///   - `output_columns`  = C_OQ (the projection list),
///   - `accessed_columns` = C_Q = C_OQ ∪ columns(P_Q),
///   - `result` carries the satisfying assignments with their base tids,
///     from which indispensable-tuple sets (Definition 2) are derived.
struct AccessProfile {
  std::set<ColumnRef> output_columns;
  std::set<ColumnRef> accessed_columns;
  QueryResult result;

  /// Whether the query references `col` anywhere (projection or predicate).
  bool Accesses(const ColumnRef& col) const {
    return accessed_columns.count(col) > 0;
  }
  /// Whether the query projects `col` out (its values appear in results).
  bool Outputs(const ColumnRef& col) const {
    return output_columns.count(col) > 0;
  }
};

/// Executes `stmt` against `db` and assembles its access profile. All
/// column references are fully qualified in the profile.
Result<AccessProfile> ComputeAccessProfile(const sql::SelectStatement& stmt,
                                           const DatabaseView& db,
                                           const ExecOptions& options =
                                               ExecOptions{});

}  // namespace auditdb

#endif  // AUDITDB_ENGINE_LINEAGE_H_
