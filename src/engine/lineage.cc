#include "src/engine/lineage.h"

#include "src/expr/analysis.h"

namespace auditdb {

Result<AccessProfile> ComputeAccessProfile(const sql::SelectStatement& stmt,
                                           const DatabaseView& db,
                                           const ExecOptions& options) {
  AccessProfile profile;

  auto result = Execute(stmt, db, options);
  if (!result.ok()) return result.status();
  profile.result = std::move(*result);

  // Output columns: the executor already resolved them.
  for (const auto& col : profile.result.columns) {
    profile.output_columns.insert(col);
    profile.accessed_columns.insert(col);
  }

  // Predicate columns.
  if (stmt.where) {
    auto where = stmt.where->Clone();
    AUDITDB_RETURN_IF_ERROR(
        QualifyColumns(where.get(), db.catalog(), stmt.from));
    for (const auto& col : CollectColumns(where.get())) {
      profile.accessed_columns.insert(col);
    }
  }
  return profile;
}

}  // namespace auditdb
