#ifndef AUDITDB_ENGINE_TABLE_SCAN_H_
#define AUDITDB_ENGINE_TABLE_SCAN_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/expr/evaluator.h"
#include "src/expr/predicate_program.h"
#include "src/storage/table.h"

namespace auditdb {

/// Knobs for batched predicate evaluation over a table's columnar
/// projection.
struct ScanOptions {
  /// Evaluate single-table conjuncts as compiled predicate programs over
  /// column vectors; when false, fall back to per-row tree interpretation
  /// (the ablation baseline).
  bool compiled = true;
  /// Rows per predicate-program chunk; bounds the register scratch space
  /// of the general (non-fused) machine.
  size_t batch_size = 1024;
};

/// One evaluation stage of the conjuncts that become ready at a join
/// position, in the query's original conjunct order. A LOCAL stage is a
/// maximal run of consecutive conjuncts reading only this table's columns,
/// compiled into one predicate program and precomputed once per query over
/// the table's batch. A CROSS stage is a run of conjuncts that also read
/// earlier tables' slots; it is tree-walked per combined row, exactly as
/// the row-at-a-time executor did.
struct ScanStage {
  bool local = false;
  PredicateProgram program;               // local stages
  std::vector<const Expression*> cross;   // cross stages (bound, not owned)
};

/// Precomputed per-row outcomes of a table's local stages. Stage states
/// are tri-state so that a row whose predicate ERRORS surfaces the
/// interpreter's exact Status — but only when the row is actually visited
/// during enumeration, preserving the row-at-a-time executor's behavior
/// for rows a hash-join bucket or prefilter never reaches.
///
/// A later local stage's states are computed only for rows that passed
/// every earlier LOCAL stage; interleaved cross stages can only narrow
/// the rows that consult it further, so every consulted (stage, row) pair
/// was computed.
class TableFilter {
 public:
  enum class RowState : uint8_t { kFail = 0, kPass = 1, kError = 2 };

  /// State of `row` at local stage `stage` (kPass for cross stages, which
  /// hold no precomputed state).
  RowState StageState(size_t stage, uint32_t row) const {
    const auto& st = states_[stage];
    return st.empty() ? RowState::kPass : static_cast<RowState>(st[row]);
  }

  /// The interpreter's Status for a (stage, row) in state kError.
  const Status& StageError(size_t stage, uint32_t row) const {
    return errors_[stage].at(row);
  }

  /// Rows (ascending) that passed every local stage. Only a complete
  /// visit order when the position has no cross stages and no errors.
  const std::vector<uint32_t>& passing() const { return passing_; }

  /// True when any row of any local stage errored; enumeration must then
  /// walk the full selection so the first visited error row aborts the
  /// query exactly as the interpreter would.
  bool has_errors() const { return total_errors_ > 0; }

  size_t num_stages() const { return states_.size(); }

 private:
  friend TableFilter BuildTableFilter(
      const Batch& batch, const std::vector<ScanStage>& stages,
      const std::optional<std::vector<uint32_t>>& selection,
      const ScanOptions& opts);

  std::vector<std::vector<uint8_t>> states_;        // per stage, per row
  std::vector<std::map<uint32_t, Status>> errors_;  // per stage: row->status
  std::vector<uint32_t> passing_;
  size_t total_errors_ = 0;
};

/// Runs `program` over `sel` in chunks of `batch_size` rows and
/// concatenates the outcomes (the program is stateless across rows, so
/// chunking cannot change results).
PredicateProgram::Outcome RunChunked(const PredicateProgram& program,
                                     const Batch& batch,
                                     const std::vector<uint32_t>& sel,
                                     size_t batch_size);

/// Selection vector -> compressed row bitmap. `sel` must be ascending
/// (as every selection in this layer is), so the conversion is one
/// linear append pass.
TidBitmap SelectionToBitmap(const std::vector<uint32_t>& sel);

/// Compressed row bitmap -> ascending selection vector.
std::vector<uint32_t> BitmapToSelection(const TidBitmap& bitmap);

/// RunChunked over a bitmap selection: the bitmap is unpacked into
/// selection-vector chunks of `batch_size` rows at each chunk boundary,
/// the program runs per chunk, and passing rows are re-packed into the
/// outcome bitmap. Decisions are identical to RunChunked over
/// BitmapToSelection(sel).
PredicateProgram::BitmapOutcome RunChunkedToBitmap(
    const PredicateProgram& program, const Batch& batch, const TidBitmap& sel,
    size_t batch_size);

/// Precomputes the local stages of `stages` over `batch`, starting from
/// `selection` (ascending row ids; all rows when absent) and narrowing
/// after each local stage.
TableFilter BuildTableFilter(
    const Batch& batch, const std::vector<ScanStage>& stages,
    const std::optional<std::vector<uint32_t>>& selection,
    const ScanOptions& opts);

/// Filtered-cardinality estimate for join reordering: the number of rows
/// of `table` passing the conjuncts (qualified, unbound) that read only
/// `name`'s columns. A row whose evaluation errors counts as failing.
/// Shared by the executor's reorder planner and callers that want a
/// standalone selectivity probe.
Result<size_t> EstimateFilteredCardinality(
    const TableVersion& table, const std::string& name,
    const std::vector<const Expression*>& conjuncts, const ScanOptions& opts);

}  // namespace auditdb

#endif  // AUDITDB_ENGINE_TABLE_SCAN_H_
