#include "src/workload/hospital.h"

#include "src/common/random.h"

namespace auditdb {
namespace workload {

TableSchema PPersonalSchema() {
  return TableSchema("P-Personal", {
                                       {"pid", ValueType::kString},
                                       {"name", ValueType::kString},
                                       {"age", ValueType::kInt},
                                       {"sex", ValueType::kString},
                                       {"zipcode", ValueType::kString},
                                       {"address", ValueType::kString},
                                   });
}

TableSchema PHealthSchema() {
  return TableSchema("P-Health", {
                                     {"pid", ValueType::kString},
                                     {"ward", ValueType::kString},
                                     {"doc-name", ValueType::kString},
                                     {"disease", ValueType::kString},
                                     {"pres-drugs", ValueType::kString},
                                 });
}

TableSchema PEmploySchema() {
  return TableSchema("P-Employ", {
                                     {"pid", ValueType::kString},
                                     {"employer", ValueType::kString},
                                     {"salary", ValueType::kInt},
                                 });
}

namespace {

Value S(const char* s) { return Value::String(s); }

}  // namespace

Status BuildPaperDatabase(Database* db, Timestamp ts) {
  AUDITDB_RETURN_IF_ERROR(db->CreateTable(PPersonalSchema()));
  AUDITDB_RETURN_IF_ERROR(db->CreateTable(PHealthSchema()));
  AUDITDB_RETURN_IF_ERROR(db->CreateTable(PEmploySchema()));

  // Table 1: P-Personal (t11..t14). Reku's age is NULL; see header.
  AUDITDB_RETURN_IF_ERROR(db->InsertWithTid(
      "P-Personal", 11,
      {S("p1"), S("Jane"), Value::Int(25), S("F"), S("177893"), S("A1")},
      ts));
  AUDITDB_RETURN_IF_ERROR(db->InsertWithTid(
      "P-Personal", 12,
      {S("p2"), S("Reku"), Value::Null(), S("M"), S("145568"), S("A2")},
      ts));
  AUDITDB_RETURN_IF_ERROR(db->InsertWithTid(
      "P-Personal", 13,
      {S("p13"), S("Robert"), Value::Int(29), S("M"), S("188888"), S("A3")},
      ts));
  AUDITDB_RETURN_IF_ERROR(db->InsertWithTid(
      "P-Personal", 14,
      {S("p28"), S("Lucy"), Value::Int(20), S("F"), S("145568"), S("A4")},
      ts));

  // Table 2: P-Health (t21..t24).
  AUDITDB_RETURN_IF_ERROR(db->InsertWithTid(
      "P-Health", 21, {S("p1"), S("W11"), S("Hassan"), S("flu"), S("drug2")},
      ts));
  AUDITDB_RETURN_IF_ERROR(db->InsertWithTid(
      "P-Health", 22,
      {S("p2"), S("W12"), S("Nicholas"), S("diabetic"), S("drug1")}, ts));
  AUDITDB_RETURN_IF_ERROR(db->InsertWithTid(
      "P-Health", 23,
      {S("p13"), S("W14"), S("Ramesh"), S("Malaria"), S("drug3")}, ts));
  AUDITDB_RETURN_IF_ERROR(db->InsertWithTid(
      "P-Health", 24,
      {S("p28"), S("W14"), S("King U"), S("diabetic"), S("drug1")}, ts));

  // Table 3: P-Employ (t31..t34).
  AUDITDB_RETURN_IF_ERROR(db->InsertWithTid(
      "P-Employ", 31, {S("p1"), S("E1"), Value::Int(12000)}, ts));
  AUDITDB_RETURN_IF_ERROR(db->InsertWithTid(
      "P-Employ", 32, {S("p2"), S("E2"), Value::Int(20000)}, ts));
  AUDITDB_RETURN_IF_ERROR(db->InsertWithTid(
      "P-Employ", 33, {S("p13"), S("E3"), Value::Int(9000)}, ts));
  AUDITDB_RETURN_IF_ERROR(db->InsertWithTid(
      "P-Employ", 34, {S("p28"), S("E4"), Value::Int(19000)}, ts));
  return Status::Ok();
}

Status PopulateHospital(Database* db, const HospitalConfig& config,
                        Timestamp ts) {
  AUDITDB_RETURN_IF_ERROR(db->CreateTable(PPersonalSchema()));
  AUDITDB_RETURN_IF_ERROR(db->CreateTable(PHealthSchema()));
  AUDITDB_RETURN_IF_ERROR(db->CreateTable(PEmploySchema()));

  static const char* kDiseases[] = {"flu",      "malaria", "asthma",
                                    "fracture", "anemia",  "migraine"};
  static const char* kDrugs[] = {"drug1", "drug2", "drug3", "drug4",
                                 "drug5"};
  static const char* kDoctors[] = {"Hassan", "Nicholas", "Ramesh", "King U",
                                   "Mehta",  "Osei",     "Ivanova"};

  Random rng(config.seed);
  for (size_t i = 0; i < config.num_patients; ++i) {
    std::string pid = "p" + std::to_string(i + 1);
    std::string name = "name" + std::to_string(i + 1);
    Value age = rng.OneIn(config.null_age_fraction)
                    ? Value::Null()
                    : Value::Int(rng.UniformInt(18, 90));
    std::string sex = rng.OneIn(0.5) ? "F" : "M";
    std::string zipcode =
        "1" + std::to_string(10000 + rng.Uniform(config.num_zipcodes));
    std::string address = "A" + std::to_string(i + 1);
    auto r1 = db->Insert("P-Personal",
                         {Value::String(pid), Value::String(name), age,
                          Value::String(sex), Value::String(zipcode),
                          Value::String(address)},
                         ts);
    if (!r1.ok()) return r1.status();

    std::string ward = "W" + std::to_string(1 + rng.Uniform(config.num_wards));
    std::string doctor = kDoctors[rng.Uniform(std::size(kDoctors))];
    std::string disease = rng.OneIn(config.diabetic_fraction)
                              ? "diabetic"
                              : kDiseases[rng.Uniform(std::size(kDiseases))];
    std::string drug = kDrugs[rng.Uniform(std::size(kDrugs))];
    auto r2 = db->Insert("P-Health",
                         {Value::String(pid), Value::String(ward),
                          Value::String(doctor), Value::String(disease),
                          Value::String(drug)},
                         ts);
    if (!r2.ok()) return r2.status();

    std::string employer =
        "E" + std::to_string(1 + rng.Uniform(config.num_employers));
    int64_t salary = rng.UniformInt(config.min_salary, config.max_salary);
    auto r3 = db->Insert("P-Employ",
                         {Value::String(pid), Value::String(employer),
                          Value::Int(salary)},
                         ts);
    if (!r3.ok()) return r3.status();
  }
  return Status::Ok();
}

}  // namespace workload
}  // namespace auditdb
