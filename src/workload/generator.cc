#include "src/workload/generator.h"

#include "src/common/random.h"

namespace auditdb {
namespace workload {

namespace {

std::string RandomZip(Random& rng, const HospitalConfig& hospital) {
  return "1" + std::to_string(10000 + rng.Uniform(hospital.num_zipcodes));
}

std::string RandomDisease(Random& rng) {
  static const char* kPool[] = {"diabetic", "flu",      "malaria", "asthma",
                                "fracture", "anemia",   "migraine"};
  return kPool[rng.Uniform(std::size(kPool))];
}

/// A predicate fragment for the chosen table(s).
std::string RandomPredicate(Random& rng, const HospitalConfig& hospital,
                            bool has_personal, bool has_health,
                            bool has_employ) {
  std::vector<std::string> options;
  if (has_personal) {
    options.push_back("zipcode='" + RandomZip(rng, hospital) + "'");
    options.push_back("age " + std::string(rng.OneIn(0.5) ? "<" : ">") + " " +
                      std::to_string(rng.UniformInt(20, 80)));
    options.push_back(std::string("sex='") + (rng.OneIn(0.5) ? "F" : "M") +
                      "'");
  }
  if (has_health) {
    options.push_back("disease='" + RandomDisease(rng) + "'");
    options.push_back("ward='W" +
                      std::to_string(1 + rng.Uniform(hospital.num_wards)) +
                      "'");
  }
  if (has_employ) {
    options.push_back(
        "salary " + std::string(rng.OneIn(0.5) ? ">" : "<") + " " +
        std::to_string(rng.UniformInt(hospital.min_salary,
                                      hospital.max_salary)));
    options.push_back(
        "employer='E" +
        std::to_string(1 + rng.Uniform(hospital.num_employers)) + "'");
  }
  return options[rng.Uniform(options.size())];
}

std::string BuildQuery(Random& rng, const WorkloadConfig& config,
                       const HospitalConfig& hospital) {
  bool join = rng.OneIn(config.join_fraction);
  bool sensitive = rng.OneIn(config.sensitive_fraction);

  if (!join) {
    // Single-table query.
    int table = static_cast<int>(rng.Uniform(3));
    if (sensitive && table == 0) table = 1 + static_cast<int>(rng.Uniform(2));
    switch (table) {
      case 0: {
        static const char* kCols[] = {"name", "age", "zipcode", "address",
                                      "pid"};
        std::string col = kCols[rng.Uniform(std::size(kCols))];
        return "SELECT " + col + ", pid FROM P-Personal WHERE " +
               RandomPredicate(rng, hospital, true, false, false);
      }
      case 1: {
        std::string col = sensitive ? "disease" : "ward";
        return "SELECT pid, " + col + " FROM P-Health WHERE " +
               RandomPredicate(rng, hospital, false, true, false);
      }
      default: {
        std::string col = sensitive ? "salary" : "employer";
        return "SELECT pid, " + col + " FROM P-Employ WHERE " +
               RandomPredicate(rng, hospital, false, false, true);
      }
    }
  }

  // Join query: P-Personal ⋈ P-Health, optionally ⋈ P-Employ.
  bool three_way = rng.OneIn(0.4);
  std::string select_cols = sensitive ? "name, disease" : "name, ward";
  std::string from = "P-Personal, P-Health";
  std::string where = "P-Personal.pid=P-Health.pid";
  if (three_way) {
    from += ", P-Employ";
    where += " AND P-Health.pid=P-Employ.pid";
    if (sensitive) select_cols += ", salary";
  }
  where += " AND " + RandomPredicate(rng, hospital, true, true, three_way);
  if (rng.OneIn(0.5)) {
    where += " AND " + RandomPredicate(rng, hospital, true, true, three_way);
  }
  return "SELECT " + select_cols + " FROM " + from + " WHERE " + where;
}

}  // namespace

std::string GenerateQueryText(uint64_t seed, const WorkloadConfig& config,
                              const HospitalConfig& hospital) {
  Random rng(seed);
  return BuildQuery(rng, config, hospital);
}

std::string MatchingRuleText(const WorkloadConfig& config,
                             const std::string& detail,
                             bool redact_sensitive) {
  std::string text = "[rule workload-hits]\n";
  text += "role = " + config.rule_role + "\n";
  text += "detail = " + detail + "\n";
  text += "log-class = workload\n";
  if (redact_sensitive) text += "redact = disease, salary\n";
  return text;
}

Status GenerateChurn(Database* db, const ChurnConfig& config,
                     const HospitalConfig& hospital) {
  Random rng(config.seed);
  Timestamp ts = config.start;

  auto personal = db->GetTable("P-Personal");
  auto health = db->GetTable("P-Health");
  auto employ = db->GetTable("P-Employ");
  if (!personal.ok()) return personal.status();
  if (!health.ok()) return health.status();
  if (!employ.ok()) return employ.status();

  auto random_tid = [&](const Table& table) {
    return table.rows()[rng.Uniform(table.rows().size())].tid;
  };

  for (size_t i = 0; i < config.num_updates; ++i) {
    switch (rng.Uniform(4)) {
      case 0:
        AUDITDB_RETURN_IF_ERROR(db->UpdateColumn(
            "P-Health", random_tid(**health), "disease",
            Value::String(RandomDisease(rng)), ts));
        break;
      case 1:
        AUDITDB_RETURN_IF_ERROR(db->UpdateColumn(
            "P-Health", random_tid(**health), "ward",
            Value::String(
                "W" + std::to_string(1 + rng.Uniform(hospital.num_wards))),
            ts));
        break;
      case 2:
        AUDITDB_RETURN_IF_ERROR(db->UpdateColumn(
            "P-Personal", random_tid(**personal), "zipcode",
            Value::String(RandomZip(rng, hospital)), ts));
        break;
      default:
        AUDITDB_RETURN_IF_ERROR(db->UpdateColumn(
            "P-Employ", random_tid(**employ), "salary",
            Value::Int(rng.UniformInt(hospital.min_salary,
                                      hospital.max_salary)),
            ts));
        break;
    }
    ts = ts.AddMicros(config.spacing_micros);
  }
  return Status::Ok();
}

Status GenerateWorkload(QueryLog* log, const WorkloadConfig& config,
                        const HospitalConfig& hospital) {
  Random rng(config.seed);
  Timestamp ts = config.start;
  for (size_t i = 0; i < config.num_queries; ++i) {
    std::string sql = BuildQuery(rng, config, hospital);
    // Short-circuit so a disabled axis draws nothing from the rng (the
    // generated log stays byte-identical for pre-existing seeds).
    bool rule_hit =
        config.rule_hit_fraction > 0 && rng.OneIn(config.rule_hit_fraction);
    if (rule_hit) {
      log->Append(std::move(sql), ts, config.rule_user, config.rule_role,
                  config.rule_purpose);
    } else {
      const std::string& user =
          config.users[rng.Uniform(config.users.size())];
      const std::string& role =
          config.roles[rng.Uniform(config.roles.size())];
      const std::string& purpose =
          config.purposes[rng.Uniform(config.purposes.size())];
      log->Append(std::move(sql), ts, user, role, purpose);
    }
    ts = ts.AddMicros(config.spacing_micros);
  }
  return Status::Ok();
}

}  // namespace workload
}  // namespace auditdb
