#ifndef AUDITDB_WORKLOAD_GENERATOR_H_
#define AUDITDB_WORKLOAD_GENERATOR_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/timestamp.h"
#include "src/querylog/query_log.h"
#include "src/workload/hospital.h"

namespace auditdb {
namespace workload {

/// Synthetic SPJ query workload over the hospital schema, annotated with
/// users/roles/purposes, with a controllable fraction of queries touching
/// the "sensitive" audit target (disease / salary of specific zip codes).
struct WorkloadConfig {
  size_t num_queries = 1000;
  uint64_t seed = 7;
  /// Timestamp of the first query; queries are spaced evenly after it.
  Timestamp start;
  int64_t spacing_micros = 1000000;
  /// Fraction of queries that join two or three tables (rest single-table).
  double join_fraction = 0.3;
  /// Fraction of queries projecting a sensitive column (disease or
  /// salary); these are the ones an audit for those columns can catch.
  double sensitive_fraction = 0.4;
  /// Annotation pools.
  std::vector<std::string> users = {"alice", "bob", "carol", "dave", "eve"};
  std::vector<std::string> roles = {"doctor", "nurse", "clerk", "analyst"};
  std::vector<std::string> purposes = {"treatment", "billing", "research"};

  /// Rule-hit-rate sweep axis (ROADMAP item 3): this fraction of
  /// queries is annotated with the rule-target triple below instead of
  /// drawing from the pools, so a policy rule keyed on `rule_role`
  /// matches exactly that share of the workload. 0 disables the axis
  /// and consumes no rng draws, keeping existing seeds' logs
  /// byte-identical.
  double rule_hit_fraction = 0.0;
  std::string rule_user = "mallory";
  std::string rule_role = "contractor";
  std::string rule_purpose = "export";
};

/// Appends `config.num_queries` generated queries to `log`. The value
/// pools (zip codes, diseases, salary ranges) match PopulateHospital's
/// `hospital` config so a tunable share of queries overlaps the audit
/// target data.
Status GenerateWorkload(QueryLog* log, const WorkloadConfig& config,
                        const HospitalConfig& hospital);

/// One deterministic generated query (exposed for tests/benches that need
/// standalone statements rather than a whole log).
std::string GenerateQueryText(uint64_t seed, const WorkloadConfig& config,
                              const HospitalConfig& hospital);

/// A policy rules-file text whose single rule (keyed on
/// `config.rule_role`) matches exactly the rule-hit queries
/// GenerateWorkload marks, at the given detail level
/// (none|log-only|static-screen|full-audit), optionally redacting the
/// hospital schema's sensitive columns (disease, salary). Routes to the
/// always-available "metrics" sink so benches need no file setup.
std::string MatchingRuleText(const WorkloadConfig& config,
                             const std::string& detail,
                             bool redact_sensitive);

/// Update churn for versioned-audit scenarios: random single-column
/// updates against an already-populated hospital database.
struct ChurnConfig {
  size_t num_updates = 100;
  uint64_t seed = 13;
  Timestamp start;
  int64_t spacing_micros = 1000000;
};

/// Applies `config.num_updates` updates (disease, ward, zipcode or salary
/// of random tuples), timestamped from `config.start` onward, through the
/// database's trigger-emitting mutation API so an attached backlog
/// captures every version.
Status GenerateChurn(Database* db, const ChurnConfig& config,
                     const HospitalConfig& hospital);

}  // namespace workload
}  // namespace auditdb

#endif  // AUDITDB_WORKLOAD_GENERATOR_H_
