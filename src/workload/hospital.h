#ifndef AUDITDB_WORKLOAD_HOSPITAL_H_
#define AUDITDB_WORKLOAD_HOSPITAL_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/common/timestamp.h"
#include "src/storage/database.h"

namespace auditdb {
namespace workload {

/// Schemas of the paper's running example (Tables 1-3):
///   P-Personal(pid, name, age, sex, zipcode, address)
///   P-Health(pid, ward, doc-name, disease, pres-drugs)
///   P-Employ(pid, employer, salary)
TableSchema PPersonalSchema();
TableSchema PHealthSchema();
TableSchema PEmploySchema();

/// Loads the paper's example instance into `db` (tables are created), with
/// the paper's tuple ids t11..t14, t21..t24, t31..t34, all stamped `ts`.
///
/// The paper's Table 1 is partially garbled in the available text; the
/// reconstruction is pinned down by the derived artifacts: Table 4 (target
/// view of Audit Expression-1), Table 5 (of Audit Expression-2) and the
/// granule sets of Figs. 4-6. In particular Reku (t12) carries a NULL age —
/// that is the unique choice making both Table 4 (Reku absent from
/// `age < 30`) and Fig. 4 (no age granule among the 13 cells) come out
/// exactly as printed.
Status BuildPaperDatabase(Database* db, Timestamp ts);

/// Deterministic scaled-up hospital instance with the same schema.
struct HospitalConfig {
  size_t num_patients = 1000;
  uint64_t seed = 42;
  /// Fraction of patients whose disease is "diabetic" (the audit target
  /// in the paper's examples).
  double diabetic_fraction = 0.1;
  size_t num_zipcodes = 50;
  size_t num_wards = 20;
  size_t num_employers = 50;
  int64_t min_salary = 5000;
  int64_t max_salary = 50000;
  /// Fraction of patients with unknown (NULL) age.
  double null_age_fraction = 0.02;
};

/// Populates `db` (creating the three tables) with `config.num_patients`
/// patients, one health and one employment row each, all stamped `ts`.
Status PopulateHospital(Database* db, const HospitalConfig& config,
                        Timestamp ts);

}  // namespace workload
}  // namespace auditdb

#endif  // AUDITDB_WORKLOAD_HOSPITAL_H_
