#include "src/sql/query_shape.h"

#include <cctype>
#include <functional>

#include "src/common/hashing.h"
#include "src/expr/structural_hash.h"
#include "src/sql/lexer.h"

namespace auditdb {
namespace sql {

namespace {

constexpr uint64_t kSeedHi = 0x517cc1b727220a95ULL;
constexpr uint64_t kSeedLo = 0x2545f4914f6cdd1dULL;
/// Salt for text that does not lex; keeps malformed entries in a hash
/// universe disjoint from token-stream shapes.
constexpr uint64_t kUnlexableSalt = 0x8f14e45fceea167aULL;

std::string CollapseWhitespace(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  bool pending_space = false;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!out.empty()) pending_space = true;
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string QueryShape::ToHex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = digits[(hi >> (4 * i)) & 0xf];
    out[31 - i] = digits[(lo >> (4 * i)) & 0xf];
  }
  return out;
}

QueryShape ComputeQueryShape(const std::string& sql) {
  QueryShape shape{kSeedHi, kSeedLo};
  auto tokens = Lex(sql);
  std::hash<std::string> text_hash;
  if (!tokens.ok()) {
    uint64_t collapsed = text_hash(CollapseWhitespace(sql));
    shape.hi = HashCombine(HashCombine(shape.hi, kUnlexableSalt), collapsed);
    shape.lo = HashCombine(HashCombine(shape.lo, collapsed), kUnlexableSalt);
    return shape;
  }
  for (const Token& token : *tokens) {
    if (token.kind == TokenKind::kEnd) break;
    // Kind + spelling covers everything shape-relevant: identifiers and
    // keywords by name, literals by their lexeme, operators by kind.
    // Token offsets are deliberately not hashed — that is the whole
    // point (position independence).
    uint64_t kind = static_cast<uint64_t>(token.kind);
    uint64_t text = text_hash(token.text);
    shape.hi = HashCombine(HashCombine(shape.hi, kind), text);
    shape.lo = HashCombine(HashCombine(shape.lo, text), kind + 0x9e3779b9ULL);
  }
  return shape;
}

uint64_t HashSelect(const SelectStatement& stmt) {
  uint64_t h = 0x6c62272e07bb0142ULL;
  h = HashCombine(h, stmt.select_star ? 1u : 2u);
  std::hash<std::string> text_hash;
  h = HashCombine(h, stmt.select_list.size());
  for (const ColumnRef& ref : stmt.select_list) {
    h = HashCombine(h, text_hash(ref.table));
    h = HashCombine(h, text_hash(ref.column));
  }
  h = HashCombine(h, stmt.from.size());
  for (const std::string& table : stmt.from) {
    h = HashCombine(h, text_hash(table));
  }
  return HashExpression(h, stmt.where.get());
}

}  // namespace sql
}  // namespace auditdb
