#ifndef AUDITDB_SQL_LEXER_H_
#define AUDITDB_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/timestamp.h"

namespace auditdb {
namespace sql {

enum class TokenKind {
  kIdentifier,
  kString,     // quoted literal
  kInt,
  kDouble,
  kTimestamp,  // d/m/yyyy[:hh-mm-ss] literal
  kComma,
  kDot,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kStar,  // '*' (projection star or multiplication)
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kSlash,
  kSemicolon,
  kEnd,
};

/// Name of a token kind for error messages.
const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  /// Identifier name or string literal contents.
  std::string text;
  int64_t int_value = 0;
  double double_value = 0;
  Timestamp time_value;
  /// Byte offset in the source, for error messages.
  size_t offset = 0;

  /// Case-insensitive keyword match against an identifier token.
  bool IsKeyword(const char* kw) const;
};

/// Tokenizes the SQL / audit-expression dialect.
///
/// Dialect notes:
///  - String literals accept single or double quotes, plus the paper's
///    mixed quoting (a backquote after an opening quote is skipped).
///  - Identifiers are [A-Za-z_][A-Za-z0-9_]* optionally extended with
///    hyphenated segments (`P-Personal`, `DATA-INTERVAL`, `b-Patients`),
///    because the paper's schema and grammar use hyphens. A `-` is folded
///    into an identifier only when directly adjacent on both sides, so
///    `salary - 100` (spaced) still lexes as a binary minus.
///  - Timestamp literals `d/m/yyyy[:hh-mm-ss]` are recognized as single
///    tokens (so `1/5/2004` is a date, not two divisions; spell division
///    of literals with whitespace).
Result<std::vector<Token>> Lex(const std::string& text);

}  // namespace sql
}  // namespace auditdb

#endif  // AUDITDB_SQL_LEXER_H_
