#ifndef AUDITDB_SQL_QUERY_SHAPE_H_
#define AUDITDB_SQL_QUERY_SHAPE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/sql/parser.h"

namespace auditdb {
namespace sql {

/// 128-bit structural fingerprint of a SQL text: two independently-seeded
/// hashes over the *token stream* (token kinds + spellings), so it is
/// invariant under whitespace, line breaks and source position, but
/// distinct across any token change — including a changed literal.
///
/// Queries with equal shapes lex to identical token streams and therefore
/// parse to identical statements, which is what lets the audit layers
/// parse and screen once per shape instead of once per logged entry. The
/// width is chosen so an accidental collision (which would silently merge
/// two different queries' verdicts) is out of reach for any realistic log.
struct QueryShape {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool zero() const { return hi == 0 && lo == 0; }

  bool operator==(const QueryShape& other) const {
    return hi == other.hi && lo == other.lo;
  }
  bool operator!=(const QueryShape& other) const { return !(*this == other); }
  bool operator<(const QueryShape& other) const {
    if (hi != other.hi) return hi < other.hi;
    return lo < other.lo;
  }

  /// 32 hex chars, for cache keys and metrics.
  std::string ToHex() const;
};

/// Keys unordered containers on shapes.
struct QueryShapeHash {
  size_t operator()(const QueryShape& shape) const {
    return static_cast<size_t>(shape.hi ^ (shape.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Computes the shape of `sql`. Text that fails to lex still gets a
/// (distinctly salted) shape over its whitespace-collapsed characters, so
/// malformed entries dedupe too without ever colliding with a lexable
/// query.
QueryShape ComputeQueryShape(const std::string& sql);

/// Structural hash of a parsed statement (AST level; ignores binder
/// slots). Used where a statement exists without its source text.
uint64_t HashSelect(const SelectStatement& stmt);

}  // namespace sql
}  // namespace auditdb

#endif  // AUDITDB_SQL_QUERY_SHAPE_H_
