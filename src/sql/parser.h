#ifndef AUDITDB_SQL_PARSER_H_
#define AUDITDB_SQL_PARSER_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/expr/expression.h"
#include "src/sql/lexer.h"

namespace auditdb {
namespace sql {

/// A parsed SPJ (select-project-join) statement:
///   SELECT <cols | *> FROM <tables> [WHERE <predicate>] [;]
struct SelectStatement {
  /// SELECT * — project every column of every FROM table.
  bool select_star = false;
  /// Projected columns (possibly unqualified until bound).
  std::vector<ColumnRef> select_list;
  /// FROM-clause table names, in order.
  std::vector<std::string> from;
  /// WHERE predicate; nullptr means TRUE.
  ExprPtr where;

  SelectStatement() = default;
  SelectStatement(SelectStatement&&) = default;
  SelectStatement& operator=(SelectStatement&&) = default;

  /// Deep copy.
  SelectStatement Clone() const;

  /// Canonical SQL rendering (see printer.cc).
  std::string ToString() const;
};

/// Parses one SELECT statement from `text`.
Result<SelectStatement> ParseSelect(const std::string& text);

/// Parses a standalone boolean/scalar expression (used in tests and by the
/// audit grammar's WHERE clause).
Result<ExprPtr> ParseExpression(const std::string& text);

/// Shared recursive-descent machinery over a token stream. The SELECT
/// parser and the audit-expression parser both extend this.
class ParserBase {
 public:
  explicit ParserBase(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

 protected:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() {
    const Token& t = Peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  /// Consumes the next token if it matches `kind`.
  bool Match(TokenKind kind);
  /// Consumes the next token if it is the keyword `kw` (case-insensitive).
  bool MatchKeyword(const char* kw);
  /// Requires and consumes a token of `kind`.
  Status Expect(TokenKind kind, const char* what);
  /// Requires and consumes the keyword `kw`.
  Status ExpectKeyword(const char* kw);

  Status ErrorHere(const std::string& message) const;

  /// expr := or ; standard precedence: OR < AND < NOT < cmp < add < mul.
  /// Supports BETWEEN..AND and IN (v, ...), desugared to comparisons.
  Result<ExprPtr> ParseExpr();

  /// ident [ . ident ] — a possibly qualified column reference.
  Result<ColumnRef> ParseColumnRef();

  /// ident (, ident)* — table name list.
  Result<std::vector<std::string>> ParseTableList();

 private:
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace sql
}  // namespace auditdb

#endif  // AUDITDB_SQL_PARSER_H_
