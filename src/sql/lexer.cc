#include "src/sql/lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "src/common/string_util.h"

namespace auditdb {
namespace sql {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kString:
      return "string";
    case TokenKind::kInt:
      return "integer";
    case TokenKind::kDouble:
      return "double";
    case TokenKind::kTimestamp:
      return "timestamp";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'<>'";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

bool Token::IsKeyword(const char* kw) const {
  return kind == TokenKind::kIdentifier && EqualsIgnoreCase(text, kw);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Attempts to lex a timestamp literal `d/m/yyyy[:hh-mm-ss]` starting at
/// `pos`. On success fills `tok` and advances `pos`.
bool TryLexTimestamp(const std::string& s, size_t* pos, Token* tok) {
  size_t p = *pos;
  auto read_int = [&](int max_digits, int* out) {
    int n = 0;
    int digits = 0;
    while (p < s.size() && IsDigit(s[p]) && digits < max_digits) {
      n = n * 10 + (s[p] - '0');
      ++p;
      ++digits;
    }
    if (digits == 0) return false;
    *out = n;
    return true;
  };
  int d, m, y;
  if (!read_int(2, &d)) return false;
  if (p >= s.size() || s[p] != '/') return false;
  ++p;
  if (!read_int(2, &m)) return false;
  if (p >= s.size() || s[p] != '/') return false;
  ++p;
  size_t year_start = p;
  if (!read_int(4, &y)) return false;
  if (p - year_start != 4) return false;  // require 4-digit year
  int hh = 0, mm = 0, ss = 0;
  if (p < s.size() && s[p] == ':') {
    size_t save = p;
    ++p;
    if (!(read_int(2, &hh) && p < s.size() && s[p] == '-' &&
          (++p, read_int(2, &mm)) && p < s.size() && s[p] == '-' &&
          (++p, read_int(2, &ss)))) {
      p = save;  // date-only; leave ':' for someone else (unlikely)
      hh = mm = ss = 0;
    }
  }
  auto ts = Timestamp::FromCivil(y, m, d, hh, mm, ss);
  if (!ts.ok()) return false;
  tok->kind = TokenKind::kTimestamp;
  tok->time_value = *ts;
  tok->text = s.substr(*pos, p - *pos);
  *pos = p;
  return true;
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& text) {
  std::vector<Token> tokens;
  size_t pos = 0;
  const size_t n = text.size();
  while (pos < n) {
    char c = text[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    Token tok;
    tok.offset = pos;

    // Timestamp literal (before numbers, since both start with a digit).
    if (IsDigit(c) && TryLexTimestamp(text, &pos, &tok)) {
      tokens.push_back(std::move(tok));
      continue;
    }

    // Number.
    if (IsDigit(c) || (c == '.' && pos + 1 < n && IsDigit(text[pos + 1]))) {
      size_t start = pos;
      bool is_double = false;
      while (pos < n && IsDigit(text[pos])) ++pos;
      if (pos < n && text[pos] == '.' && pos + 1 < n && IsDigit(text[pos + 1])) {
        is_double = true;
        ++pos;
        while (pos < n && IsDigit(text[pos])) ++pos;
      }
      if (pos < n && (text[pos] == 'e' || text[pos] == 'E')) {
        size_t save = pos;
        ++pos;
        if (pos < n && (text[pos] == '+' || text[pos] == '-')) ++pos;
        if (pos < n && IsDigit(text[pos])) {
          is_double = true;
          while (pos < n && IsDigit(text[pos])) ++pos;
        } else {
          pos = save;
        }
      }
      std::string num = text.substr(start, pos - start);
      errno = 0;
      if (is_double) {
        char* end = nullptr;
        double v = std::strtod(num.c_str(), &end);
        if (errno == ERANGE || end != num.c_str() + num.size()) {
          return Status::ParseError("numeric literal out of range: " + num);
        }
        tok.kind = TokenKind::kDouble;
        tok.double_value = v;
      } else {
        char* end = nullptr;
        long long v = std::strtoll(num.c_str(), &end, 10);
        if (errno == ERANGE || end != num.c_str() + num.size()) {
          return Status::ParseError("integer literal out of range: " + num);
        }
        tok.kind = TokenKind::kInt;
        tok.int_value = v;
      }
      tok.text = std::move(num);
      tokens.push_back(std::move(tok));
      continue;
    }

    // String literal: ' or " opens; a stray backquote right after the
    // opening quote (the paper's '`value" quoting) is skipped.
    if (c == '\'' || c == '"' || c == '`') {
      ++pos;
      if (pos < n && text[pos] == '`') ++pos;  // paper-style '`
      std::string contents;
      bool closed = false;
      while (pos < n) {
        char q = text[pos];
        if (q == '\'' || q == '"') {
          // Doubled quote = escaped quote (standard SQL).
          if (q == '\'' && pos + 1 < n && text[pos + 1] == '\'') {
            contents += '\'';
            pos += 2;
            continue;
          }
          ++pos;
          closed = true;
          break;
        }
        contents += q;
        ++pos;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(tok.offset));
      }
      tok.kind = TokenKind::kString;
      tok.text = std::move(contents);
      tokens.push_back(std::move(tok));
      continue;
    }

    // Identifier (with hyphen folding: P-Personal, DATA-INTERVAL).
    if (IsIdentStart(c)) {
      size_t start = pos;
      while (pos < n) {
        if (IsIdentChar(text[pos])) {
          ++pos;
        } else if (text[pos] == '-' && pos + 1 < n &&
                   (IsIdentStart(text[pos + 1]) || IsDigit(text[pos + 1])) &&
                   pos > start && IsIdentChar(text[pos - 1])) {
          ++pos;  // hyphen joined on both sides: part of the identifier
        } else {
          break;
        }
      }
      tok.kind = TokenKind::kIdentifier;
      tok.text = text.substr(start, pos - start);
      tokens.push_back(std::move(tok));
      continue;
    }

    // Punctuation / operators.
    auto push1 = [&](TokenKind kind) {
      tok.kind = kind;
      tok.text = std::string(1, c);
      ++pos;
      tokens.push_back(tok);
    };
    switch (c) {
      case ',':
        push1(TokenKind::kComma);
        continue;
      case '.':
        push1(TokenKind::kDot);
        continue;
      case '(':
        push1(TokenKind::kLParen);
        continue;
      case ')':
        push1(TokenKind::kRParen);
        continue;
      case '[':
        push1(TokenKind::kLBracket);
        continue;
      case ']':
        push1(TokenKind::kRBracket);
        continue;
      case '*':
        push1(TokenKind::kStar);
        continue;
      case '+':
        push1(TokenKind::kPlus);
        continue;
      case '-':
        push1(TokenKind::kMinus);
        continue;
      case '/':
        push1(TokenKind::kSlash);
        continue;
      case ';':
        push1(TokenKind::kSemicolon);
        continue;
      case '=':
        push1(TokenKind::kEq);
        continue;
      case '!':
        if (pos + 1 < n && text[pos + 1] == '=') {
          tok.kind = TokenKind::kNe;
          tok.text = "!=";
          pos += 2;
          tokens.push_back(tok);
          continue;
        }
        return Status::ParseError("unexpected '!' at offset " +
                                  std::to_string(pos));
      case '<':
        if (pos + 1 < n && text[pos + 1] == '=') {
          tok.kind = TokenKind::kLe;
          tok.text = "<=";
          pos += 2;
        } else if (pos + 1 < n && text[pos + 1] == '>') {
          tok.kind = TokenKind::kNe;
          tok.text = "<>";
          pos += 2;
        } else {
          tok.kind = TokenKind::kLt;
          tok.text = "<";
          ++pos;
        }
        tokens.push_back(tok);
        continue;
      case '>':
        if (pos + 1 < n && text[pos + 1] == '=') {
          tok.kind = TokenKind::kGe;
          tok.text = ">=";
          pos += 2;
        } else {
          tok.kind = TokenKind::kGt;
          tok.text = ">";
          ++pos;
        }
        tokens.push_back(tok);
        continue;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(pos));
    }
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace sql
}  // namespace auditdb
