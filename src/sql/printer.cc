#include "src/sql/parser.h"

#include "src/common/string_util.h"

namespace auditdb {
namespace sql {

std::string SelectStatement::ToString() const {
  std::string out = "SELECT ";
  if (select_star) {
    out += "*";
  } else {
    for (size_t i = 0; i < select_list.size(); ++i) {
      if (i > 0) out += ", ";
      out += select_list[i].ToString();
    }
  }
  out += " FROM ";
  out += Join(from, ", ");
  if (where) {
    out += " WHERE ";
    out += where->ToString();
  }
  return out;
}

}  // namespace sql
}  // namespace auditdb
