#include "src/sql/parser.h"

namespace auditdb {
namespace sql {

bool ParserBase::Match(TokenKind kind) {
  if (Peek().kind == kind) {
    Advance();
    return true;
  }
  return false;
}

bool ParserBase::MatchKeyword(const char* kw) {
  if (Peek().IsKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

Status ParserBase::Expect(TokenKind kind, const char* what) {
  if (Peek().kind != kind) {
    return ErrorHere(std::string("expected ") + what + ", found " +
                     TokenKindName(Peek().kind) +
                     (Peek().text.empty() ? "" : " '" + Peek().text + "'"));
  }
  Advance();
  return Status::Ok();
}

Status ParserBase::ExpectKeyword(const char* kw) {
  if (!Peek().IsKeyword(kw)) {
    return ErrorHere(std::string("expected keyword ") + kw + ", found '" +
                     Peek().text + "'");
  }
  Advance();
  return Status::Ok();
}

Status ParserBase::ErrorHere(const std::string& message) const {
  return Status::ParseError(message + " (at offset " +
                            std::to_string(Peek().offset) + ")");
}

Result<ExprPtr> ParserBase::ParseExpr() { return ParseOr(); }

Result<ExprPtr> ParserBase::ParseOr() {
  auto lhs = ParseAnd();
  if (!lhs.ok()) return lhs.status();
  ExprPtr out = std::move(*lhs);
  while (MatchKeyword("OR")) {
    auto rhs = ParseAnd();
    if (!rhs.ok()) return rhs.status();
    out = Expression::MakeBinary(BinaryOp::kOr, std::move(out),
                                 std::move(*rhs));
  }
  return out;
}

Result<ExprPtr> ParserBase::ParseAnd() {
  auto lhs = ParseNot();
  if (!lhs.ok()) return lhs.status();
  ExprPtr out = std::move(*lhs);
  while (MatchKeyword("AND")) {
    auto rhs = ParseNot();
    if (!rhs.ok()) return rhs.status();
    out = Expression::MakeBinary(BinaryOp::kAnd, std::move(out),
                                 std::move(*rhs));
  }
  return out;
}

Result<ExprPtr> ParserBase::ParseNot() {
  if (MatchKeyword("NOT")) {
    auto operand = ParseNot();
    if (!operand.ok()) return operand.status();
    return Expression::MakeUnary(UnaryOp::kNot, std::move(*operand));
  }
  return ParseComparison();
}

Result<ExprPtr> ParserBase::ParseComparison() {
  auto lhs = ParseAdditive();
  if (!lhs.ok()) return lhs.status();
  ExprPtr out = std::move(*lhs);

  // BETWEEN a AND b  →  out >= a AND out <= b.
  bool negated = false;
  if (Peek().IsKeyword("NOT") && Peek(1).IsKeyword("BETWEEN")) {
    Advance();
    negated = true;
  }
  if (MatchKeyword("BETWEEN")) {
    auto lo = ParseAdditive();
    if (!lo.ok()) return lo.status();
    AUDITDB_RETURN_IF_ERROR(ExpectKeyword("AND"));
    auto hi = ParseAdditive();
    if (!hi.ok()) return hi.status();
    ExprPtr lhs_copy = out->Clone();
    ExprPtr range = Expression::MakeBinary(
        BinaryOp::kAnd,
        Expression::MakeBinary(BinaryOp::kGe, std::move(lhs_copy),
                               std::move(*lo)),
        Expression::MakeBinary(BinaryOp::kLe, std::move(out),
                               std::move(*hi)));
    if (negated) {
      return Expression::MakeUnary(UnaryOp::kNot, std::move(range));
    }
    return range;
  }

  // IN (v, ...)  →  out = v1 OR out = v2 ...
  if (Peek().IsKeyword("NOT") && Peek(1).IsKeyword("IN")) {
    Advance();
    negated = true;
  }
  if (MatchKeyword("IN")) {
    AUDITDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    ExprPtr disjunction;
    while (true) {
      auto v = ParseAdditive();
      if (!v.ok()) return v.status();
      ExprPtr eq = Expression::MakeBinary(BinaryOp::kEq, out->Clone(),
                                          std::move(*v));
      disjunction = disjunction
                        ? Expression::MakeBinary(BinaryOp::kOr,
                                                 std::move(disjunction),
                                                 std::move(eq))
                        : std::move(eq);
      if (!Match(TokenKind::kComma)) break;
    }
    AUDITDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    if (negated) {
      return Expression::MakeUnary(UnaryOp::kNot, std::move(disjunction));
    }
    return disjunction;
  }
  // LIKE 'pattern'.
  if (Peek().IsKeyword("NOT") && Peek(1).IsKeyword("LIKE")) {
    Advance();
    negated = true;
  }
  if (MatchKeyword("LIKE")) {
    auto pattern = ParseAdditive();
    if (!pattern.ok()) return pattern.status();
    ExprPtr like = Expression::MakeBinary(BinaryOp::kLike, std::move(out),
                                          std::move(*pattern));
    if (negated) {
      return Expression::MakeUnary(UnaryOp::kNot, std::move(like));
    }
    return like;
  }
  if (negated) return ErrorHere("expected BETWEEN, IN or LIKE after NOT");

  BinaryOp op;
  switch (Peek().kind) {
    case TokenKind::kEq:
      op = BinaryOp::kEq;
      break;
    case TokenKind::kNe:
      op = BinaryOp::kNe;
      break;
    case TokenKind::kLt:
      op = BinaryOp::kLt;
      break;
    case TokenKind::kLe:
      op = BinaryOp::kLe;
      break;
    case TokenKind::kGt:
      op = BinaryOp::kGt;
      break;
    case TokenKind::kGe:
      op = BinaryOp::kGe;
      break;
    default:
      return out;  // bare additive expression
  }
  Advance();
  auto rhs = ParseAdditive();
  if (!rhs.ok()) return rhs.status();
  return Expression::MakeBinary(op, std::move(out), std::move(*rhs));
}

Result<ExprPtr> ParserBase::ParseAdditive() {
  auto lhs = ParseMultiplicative();
  if (!lhs.ok()) return lhs.status();
  ExprPtr out = std::move(*lhs);
  while (true) {
    BinaryOp op;
    if (Peek().kind == TokenKind::kPlus) {
      op = BinaryOp::kAdd;
    } else if (Peek().kind == TokenKind::kMinus) {
      op = BinaryOp::kSub;
    } else {
      return out;
    }
    Advance();
    auto rhs = ParseMultiplicative();
    if (!rhs.ok()) return rhs.status();
    out = Expression::MakeBinary(op, std::move(out), std::move(*rhs));
  }
}

Result<ExprPtr> ParserBase::ParseMultiplicative() {
  auto lhs = ParsePrimary();
  if (!lhs.ok()) return lhs.status();
  ExprPtr out = std::move(*lhs);
  while (true) {
    BinaryOp op;
    if (Peek().kind == TokenKind::kStar) {
      op = BinaryOp::kMul;
    } else if (Peek().kind == TokenKind::kSlash) {
      op = BinaryOp::kDiv;
    } else {
      return out;
    }
    Advance();
    auto rhs = ParsePrimary();
    if (!rhs.ok()) return rhs.status();
    out = Expression::MakeBinary(op, std::move(out), std::move(*rhs));
  }
}

Result<ExprPtr> ParserBase::ParsePrimary() {
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kInt: {
      Advance();
      return Expression::MakeLiteral(Value::Int(t.int_value));
    }
    case TokenKind::kDouble: {
      Advance();
      return Expression::MakeLiteral(Value::Double(t.double_value));
    }
    case TokenKind::kString: {
      Advance();
      return Expression::MakeLiteral(Value::String(t.text));
    }
    case TokenKind::kTimestamp: {
      Advance();
      return Expression::MakeLiteral(Value::Time(t.time_value));
    }
    case TokenKind::kMinus: {
      Advance();
      auto operand = ParsePrimary();
      if (!operand.ok()) return operand.status();
      return Expression::MakeUnary(UnaryOp::kNeg, std::move(*operand));
    }
    case TokenKind::kLParen: {
      Advance();
      auto inner = ParseExpr();
      if (!inner.ok()) return inner.status();
      AUDITDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return inner;
    }
    case TokenKind::kIdentifier: {
      if (t.IsKeyword("TRUE")) {
        Advance();
        return Expression::MakeLiteral(Value::Bool(true));
      }
      if (t.IsKeyword("FALSE")) {
        Advance();
        return Expression::MakeLiteral(Value::Bool(false));
      }
      if (t.IsKeyword("now") && Peek(1).kind == TokenKind::kLParen &&
          Peek(2).kind == TokenKind::kRParen) {
        // now() becomes a timestamp literal bound at parse time by the
        // audit parser; inside plain SQL it is not meaningful, so leave it
        // to the audit parser, which rewrites before calling here. As a
        // fallback, treat it as the current time.
        Advance();
        Advance();
        Advance();
        return Expression::MakeLiteral(Value::Time(Timestamp::Now()));
      }
      auto ref = ParseColumnRef();
      if (!ref.ok()) return ref.status();
      return Expression::MakeColumn(std::move(*ref));
    }
    default:
      return ErrorHere(std::string("expected expression, found ") +
                       TokenKindName(t.kind));
  }
}

Result<ColumnRef> ParserBase::ParseColumnRef() {
  if (Peek().kind != TokenKind::kIdentifier) {
    return ErrorHere("expected column name");
  }
  std::string first = Advance().text;
  if (Match(TokenKind::kDot)) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorHere("expected column name after '.'");
    }
    std::string second = Advance().text;
    return ColumnRef{std::move(first), std::move(second)};
  }
  return ColumnRef{"", std::move(first)};
}

Result<std::vector<std::string>> ParserBase::ParseTableList() {
  std::vector<std::string> tables;
  while (true) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorHere("expected table name");
    }
    tables.push_back(Advance().text);
    if (!Match(TokenKind::kComma)) break;
  }
  return tables;
}

namespace {

/// Parser for full SELECT statements.
class SelectParser : public ParserBase {
 public:
  explicit SelectParser(std::vector<Token> tokens)
      : ParserBase(std::move(tokens)) {}

  Result<SelectStatement> Parse() {
    SelectStatement stmt;
    AUDITDB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    if (Match(TokenKind::kStar)) {
      stmt.select_star = true;
    } else {
      while (true) {
        auto ref = ParseColumnRef();
        if (!ref.ok()) return ref.status();
        stmt.select_list.push_back(std::move(*ref));
        if (!Match(TokenKind::kComma)) break;
      }
    }
    AUDITDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    auto tables = ParseTableList();
    if (!tables.ok()) return tables.status();
    stmt.from = std::move(*tables);
    if (MatchKeyword("WHERE")) {
      auto where = ParseExpr();
      if (!where.ok()) return where.status();
      stmt.where = std::move(*where);
    }
    Match(TokenKind::kSemicolon);
    if (!AtEnd()) {
      return ErrorHere("trailing input after statement");
    }
    return stmt;
  }
};

/// Parser for a bare expression.
class ExpressionParser : public ParserBase {
 public:
  explicit ExpressionParser(std::vector<Token> tokens)
      : ParserBase(std::move(tokens)) {}

  Result<ExprPtr> Parse() {
    auto e = ParseExpr();
    if (!e.ok()) return e.status();
    if (!AtEnd()) return ErrorHere("trailing input after expression");
    return e;
  }
};

}  // namespace

SelectStatement SelectStatement::Clone() const {
  SelectStatement out;
  out.select_star = select_star;
  out.select_list = select_list;
  out.from = from;
  out.where = where ? where->Clone() : nullptr;
  return out;
}

Result<SelectStatement> ParseSelect(const std::string& text) {
  auto tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  SelectParser parser(std::move(*tokens));
  return parser.Parse();
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  auto tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  ExpressionParser parser(std::move(*tokens));
  return parser.Parse();
}

}  // namespace sql
}  // namespace auditdb
