#include "src/catalog/schema.h"

namespace auditdb {

std::optional<size_t> TableSchema::FindColumn(
    const std::string& column_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column_name) return i;
  }
  return std::nullopt;
}

std::string TableSchema::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace auditdb
