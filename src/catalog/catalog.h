#ifndef AUDITDB_CATALOG_CATALOG_H_
#define AUDITDB_CATALOG_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "src/catalog/schema.h"
#include "src/common/status.h"

namespace auditdb {

/// The set of table schemas known to a database. Used to bind (resolve and
/// type-check) column references in queries and audit expressions.
class Catalog {
 public:
  Catalog() = default;

  /// Registers a schema; fails if a table with the same name exists.
  Status AddTable(TableSchema schema);

  /// Schema by name, or NotFound.
  Result<const TableSchema*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  /// Resolves `ref` against the listed tables (the FROM clause scope).
  /// An unqualified column must match exactly one table in scope; a
  /// qualified one must name a table in scope containing the column.
  /// Returns the fully qualified reference.
  Result<ColumnRef> Resolve(const ColumnRef& ref,
                            const std::vector<std::string>& scope) const;

  /// Type of a fully qualified column.
  Result<ValueType> TypeOf(const ColumnRef& ref) const;

  /// Names of all registered tables, sorted.
  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, TableSchema> tables_;
};

}  // namespace auditdb

#endif  // AUDITDB_CATALOG_CATALOG_H_
