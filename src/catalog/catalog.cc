#include "src/catalog/catalog.h"

namespace auditdb {

Status Catalog::AddTable(TableSchema schema) {
  if (tables_.count(schema.name()) > 0) {
    return Status::AlreadyExists("table already exists: " + schema.name());
  }
  std::string name = schema.name();
  tables_.emplace(std::move(name), std::move(schema));
  return Status::Ok();
}

Result<const TableSchema*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return &it->second;
}

Result<ColumnRef> Catalog::Resolve(const ColumnRef& ref,
                                   const std::vector<std::string>& scope) const {
  if (ref.qualified()) {
    bool in_scope = false;
    for (const auto& t : scope) {
      if (t == ref.table) {
        in_scope = true;
        break;
      }
    }
    if (!in_scope) {
      return Status::NotFound("table '" + ref.table +
                              "' not in FROM clause scope");
    }
    auto table = GetTable(ref.table);
    if (!table.ok()) return table.status();
    if (!(*table)->FindColumn(ref.column).has_value()) {
      return Status::NotFound("no column '" + ref.column + "' in table '" +
                              ref.table + "'");
    }
    return ref;
  }
  // Unqualified: must match exactly one table in scope.
  std::string found_table;
  for (const auto& t : scope) {
    auto table = GetTable(t);
    if (!table.ok()) return table.status();
    if ((*table)->FindColumn(ref.column).has_value()) {
      if (!found_table.empty()) {
        return Status::InvalidArgument("ambiguous column '" + ref.column +
                                       "' (in " + found_table + " and " + t +
                                       ")");
      }
      found_table = t;
    }
  }
  if (found_table.empty()) {
    return Status::NotFound("no column '" + ref.column +
                            "' in any table in scope");
  }
  return ColumnRef{found_table, ref.column};
}

Result<ValueType> Catalog::TypeOf(const ColumnRef& ref) const {
  auto table = GetTable(ref.table);
  if (!table.ok()) return table.status();
  auto idx = (*table)->FindColumn(ref.column);
  if (!idx.has_value()) {
    return Status::NotFound("no column '" + ref.column + "' in table '" +
                            ref.table + "'");
  }
  return (*table)->column(*idx).type;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, schema] : tables_) names.push_back(name);
  return names;
}

}  // namespace auditdb
