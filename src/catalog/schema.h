#ifndef AUDITDB_CATALOG_SCHEMA_H_
#define AUDITDB_CATALOG_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/hashing.h"
#include "src/common/status.h"
#include "src/types/value.h"

namespace auditdb {

/// A fully or partially qualified column name. `table` may be empty in
/// parsed ASTs before binding; after binding against a catalog every
/// reference is fully qualified.
struct ColumnRef {
  std::string table;
  std::string column;

  bool qualified() const { return !table.empty(); }
  /// "table.column" or bare "column".
  std::string ToString() const {
    return qualified() ? table + "." + column : column;
  }

  bool operator==(const ColumnRef& other) const {
    return table == other.table && column == other.column;
  }
  bool operator<(const ColumnRef& other) const {
    if (table != other.table) return table < other.table;
    return column < other.column;
  }
};

/// Hash consistent with ColumnRef::operator==; keys unordered containers
/// in the audit layers' access-profile lookups.
struct ColumnRefHash {
  size_t operator()(const ColumnRef& ref) const {
    return HashCombine(std::hash<std::string>{}(ref.table),
                       std::hash<std::string>{}(ref.column));
  }
};

/// A column definition.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// Schema of one base table: an ordered list of named, typed columns.
/// Column names are case-sensitive and unique within the table.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<Column> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }

  /// Index of `column_name`, or nullopt.
  std::optional<size_t> FindColumn(const std::string& column_name) const;

  /// Column at index i.
  const Column& column(size_t i) const { return columns_[i]; }

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Column> columns_;
};

}  // namespace auditdb

#endif  // AUDITDB_CATALOG_SCHEMA_H_
