#ifndef AUDITDB_NET_REPLICATION_H_
#define AUDITDB_NET_REPLICATION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/net/backoff.h"
#include "src/net/subscription.h"
#include "src/net/wire.h"
#include "src/querylog/query_log.h"

namespace auditdb {
namespace net {

/// Primary/replica replication over the framed wire protocol
/// (docs/replication.md). A follower opens a REPLICATE stream on its
/// primary; the primary ships every committed write as a
/// server-initiated REPLICATE_EVENT frame — the raw CRC32C-framed WAL
/// record for ExecuteQuery, a checkpoint manifest (full db + log dumps)
/// for bootstrap, and dump deltas for LoadDump — and the follower
/// applies them through the same path recovery uses, acking each
/// applied record after an fsync. Audit verdicts are deterministic over
/// (query log, database state), so a follower that applied the same
/// prefix answers reads byte-identically to the primary.

/// How many follower acks an ExecuteQuery waits for before responding:
///   kNone    local durability only (followers catch up asynchronously)
///   kQuorum  a majority of the cluster holds the write (primary plus
///            floor((followers+1)/2) followers) — promotion of the
///            most-caught-up follower then never loses an acked write
///   kAll     every registered follower holds the write
enum class ReplAckPolicy { kNone, kQuorum, kAll };

Result<ReplAckPolicy> ParseReplAckPolicy(const std::string& text);
const char* ReplAckPolicyName(ReplAckPolicy policy);

/// Parses "host:port" (the --replicate-from / multi-endpoint form).
Result<std::pair<std::string, uint16_t>> ParseHostPort(
    const std::string& address);

/// One decoded REPLICATE_EVENT frame body.
struct ReplicateEvent {
  enum class Kind { kWal, kCheckpoint, kLoad };
  Kind kind = Kind::kWal;
  /// kWal: the raw framed WAL record (CRC-validated again on arrival).
  std::string wal_record;
  /// kCheckpoint: full bootstrap state.
  std::string db_dump;
  std::string log_dump;
  /// kLoad: one LoadDump delta ("db" or "log" + the dump text).
  std::string load_kind;
  std::string load_dump;
  /// The primary's LoadDump generation after this event; a follower
  /// whose generation diverges cannot catch up incrementally.
  uint64_t load_generation = 0;
  /// Row timestamp for kCheckpoint/kLoad database dumps: the dump format
  /// does not carry per-row insert times, so the primary ships the stamp
  /// it used and the replica restores with the same one — otherwise
  /// DATA-INTERVAL audits would diverge across the cluster.
  int64_t stamp_micros = 0;
};

std::string EncodeReplicateWal(const std::string& framed_record);
std::string EncodeReplicateCheckpoint(const std::string& db_dump,
                                      const std::string& log_dump,
                                      uint64_t load_generation,
                                      int64_t stamp_micros);
std::string EncodeReplicateLoad(const std::string& load_kind,
                                const std::string& load_dump,
                                uint64_t load_generation,
                                int64_t stamp_micros);
Result<ReplicateEvent> DecodeReplicateEvent(const std::string& payload);

/// The REPLICATE handshake payload (`applied|have_state|generation`).
struct ReplicateHandshake {
  int64_t applied_log_id = 0;
  bool have_state = false;
  uint64_t load_generation = 0;
};
std::string EncodeReplicateHandshake(const ReplicateHandshake& handshake);
Result<ReplicateHandshake> DecodeReplicateHandshake(
    const std::string& payload);

/// What a follower does with one shipped query record, given the id it
/// has applied through. Duplicates (catch-up overlap after a re-sync)
/// are skipped; a skipped-ahead id means records were lost on the
/// stream and the follower must re-sync from its current position —
/// never silently apply past a gap.
enum class ShipDecision { kApply, kDuplicate, kResync };
ShipDecision DecideShippedQuery(int64_t applied_log_id, int64_t record_id);

/// Primary-side follower table + per-follower bounded frame queues.
/// Mirrors SubscriptionRegistry's contract with the event loop:
/// handlers Ship() committed writes under the server's writer lock, the
/// epoll loop drains encoded frames per connection, and the returned
/// PublishOutcome tells the loop which connections to flush or evict.
/// Thread-safe; one mutex guards the table (operations are short).
class ReplicationHub {
 public:
  explicit ReplicationHub(size_t max_buffered_records = 4096);

  /// Registers a follower connection at `acked_log_id` with its
  /// catch-up backlog already framed (called under the writer lock so
  /// backlog order and subsequent Ship order agree). Re-registering a
  /// conn id replaces its previous state.
  void RegisterFollower(uint64_t conn_id, int64_t acked_log_id,
                        std::vector<std::string> backlog_frames);

  /// Drops a closing follower and wakes any ack waiters (the quorum is
  /// recomputed over the survivors).
  void DropConnection(uint64_t conn_id);

  bool IsFollower(uint64_t conn_id) const;

  /// Queues one encoded frame for every follower; `log_id` is the log
  /// position the frame commits (0 for events that do not advance it).
  /// A follower whose queue overflows max_buffered_records is dropped
  /// from the table and flagged for eviction — divergence stays bounded
  /// and the follower re-syncs on reconnect.
  PublishOutcome Ship(int64_t log_id, const std::string& frame);

  /// A follower acked applying (and fsyncing) through `log_id`.
  void Ack(uint64_t conn_id, int64_t log_id);

  /// Blocks until the ack policy is satisfied for `log_id` (quorum is
  /// floor((followers+1)/2) follower acks, recomputed as followers come
  /// and go). DeadlineExceeded after `timeout`: the write is committed
  /// locally but under-replicated.
  Status WaitForAcks(int64_t log_id, ReplAckPolicy policy,
                     std::chrono::milliseconds timeout);

  /// Encodes parked frames for conn_id into *out until nothing is
  /// parked or at least max_bytes were appended; returns frames taken.
  size_t DrainFrames(uint64_t conn_id, size_t max_bytes, std::string* out);

  bool HasPending(uint64_t conn_id) const;
  /// Parked frames across all followers; part of the graceful-drain
  /// gate.
  size_t TotalPending() const;

  /// Lock-free follower count (ExecuteQuery skips the ship path when
  /// nobody follows).
  size_t follower_count() const {
    return followers_active_.load(std::memory_order_relaxed);
  }

  int64_t last_shipped() const {
    return last_shipped_.load(std::memory_order_relaxed);
  }

  /// {"last_shipped","followers_active","records_shipped",...,
  ///  "followers":[{"conn_id","acked","lag_records","lag_bytes",
  ///  "last_ack_latency_ms"}]}.
  std::string MetricsJson() const;

 private:
  struct Follower {
    int64_t acked = 0;
    std::deque<std::string> queue;  // encoded frames, oldest first
    size_t queued_bytes = 0;
    int64_t last_ack_latency_ms = -1;  // -1 until the first timed ack
  };

  size_t max_buffered_records_;
  mutable std::mutex mutex_;
  std::condition_variable ack_cv_;
  std::map<uint64_t, Follower> followers_;
  /// Ship times of records awaiting acks, for follower latency metrics;
  /// trimmed below the slowest follower's ack.
  std::map<int64_t, std::chrono::steady_clock::time_point> ship_times_;
  std::atomic<size_t> followers_active_{0};
  std::atomic<int64_t> last_shipped_{0};

  service::Counter records_shipped_;
  service::Counter bytes_shipped_;
  service::Counter acks_received_;
  service::Counter ack_wait_timeouts_;
  service::Counter followers_evicted_;
};

/// The callbacks a replica server hands its session; each applies one
/// replicated mutation under the server's writer lock through the same
/// code path recovery uses (durable append → in-memory append →
/// observe/push fan-out).
struct ReplicaApplier {
  /// Applies one shipped query record; must make it durable (fsync)
  /// before returning OK — the session acks on OK.
  std::function<Status(const LoggedQuery& entry)> apply_query;
  /// Applies one LoadDump delta ("db" or "log"), stamping restored rows
  /// `stamp_micros` (the primary's stamp, for byte-identical audits).
  std::function<Status(const std::string& kind, const std::string& dump,
                       uint64_t load_generation, int64_t stamp_micros)>
      apply_load;
  /// Installs a full bootstrap checkpoint; only legal on an empty
  /// replica (a diverged non-empty replica needs a fresh data dir).
  std::function<Status(const std::string& db_dump,
                       const std::string& log_dump,
                       uint64_t load_generation, int64_t stamp_micros)>
      apply_bootstrap;
  /// The log id applied through (the in-memory log size).
  std::function<int64_t()> applied_log_id;
  /// Whether the replica holds any state (tables or log entries); an
  /// empty replica asks for a bootstrap checkpoint.
  std::function<bool()> have_state;
  std::function<uint64_t()> load_generation;
};

struct ReplicaSessionOptions {
  std::chrono::milliseconds connect_timeout{2000};
  /// Reconnect/re-sync pacing; one RetryBudget-style jittered
  /// exponential backoff, reset after every successful handshake.
  BackoffOptions backoff{std::chrono::milliseconds(50),
                         std::chrono::milliseconds(2000)};
  /// Frame cap for the inbound stream. Bootstrap checkpoints carry full
  /// dumps, so this is far above the request-path default.
  size_t max_frame_bytes = 256u << 20;
};

/// Follower-side replication client: one background thread owning one
/// blocking connection to the primary. Connects, handshakes with its
/// applied position, applies the event stream through the
/// ReplicaApplier, acks after each durable apply, and reconnects with
/// backoff on any failure. A record id gap, CRC failure, or protocol
/// violation triggers a re-sync: drop the connection and re-handshake
/// from the applied position (the primary replays the missing suffix).
/// A NOT_PRIMARY rejection repoints the session at the address it
/// carries, so a repointed cluster heals itself after failover.
class ReplicaSession {
 public:
  ReplicaSession(std::string upstream, ReplicaApplier applier,
                 ReplicaSessionOptions options = ReplicaSessionOptions{});
  ~ReplicaSession();

  ReplicaSession(const ReplicaSession&) = delete;
  ReplicaSession& operator=(const ReplicaSession&) = delete;

  void Start();
  /// Stops and joins the session thread. Safe to call twice. Must not
  /// be invoked while holding any lock the applier callbacks take.
  void Stop();

  /// Retargets the stream (PROMOTE `follow|addr`); takes effect on the
  /// next loop iteration by dropping the current connection.
  void Repoint(const std::string& upstream);

  std::string upstream() const;
  bool connected() const { return connected_.load(); }
  uint64_t resyncs() const { return resyncs_.value(); }
  uint64_t reconnects() const { return reconnects_.value(); }

  /// {"upstream","connected","reconnects","resyncs","records_applied",
  ///  "bytes_received","apply_errors"}.
  std::string MetricsJson() const;

 private:
  void Run();
  /// Applies one decoded event. Sets *resync when the stream cannot be
  /// trusted past this point (gap, corrupt record, apply failure).
  void ApplyEvent(const ReplicateEvent& event, int fd, bool* resync);
  bool SendAck(int fd, int64_t applied);
  /// Sleeps the next reconnect backoff in stop-aware slices; returns
  /// false when stopping.
  bool SleepReconnectBackoff(RetryBudget* budget);

  ReplicaApplier applier_;
  ReplicaSessionOptions options_;

  mutable std::mutex mutex_;  // guards upstream_ / repoint_
  std::string upstream_;
  bool repoint_pending_ = false;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> connected_{false};

  service::Counter reconnects_;
  service::Counter resyncs_;
  service::Counter records_applied_;
  service::Counter bytes_received_;
  service::Counter apply_errors_;
};

}  // namespace net
}  // namespace auditdb

#endif  // AUDITDB_NET_REPLICATION_H_
