#ifndef AUDITDB_NET_WIRE_H_
#define AUDITDB_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace auditdb {
namespace net {

/// The framed wire protocol spoken between net::AuditClient and
/// net::AuditServer (docs/wire_protocol.md). Every frame is:
///
///   bytes 0..3   magic "ADB1" (v1) or "ADB2" (v2)
///   bytes 4..7   big-endian uint32 body length (>= 1)
///   bytes 8..    body: one message-type byte + payload
///
/// Frames are binary-safe (the length prefix delimits them); structured
/// payloads are pipe-separated fields escaped with io::EscapeField — the
/// same escaping the dump format uses — so any byte string survives.
///
/// Protocol versions. The magic doubles as the version tag: the first
/// frame a peer sends pins its connection's version, and mixing magics
/// on one connection is a protocol violation. v2 is a strict superset
/// of v1 — it adds the subscription frames (SUBSCRIBE / UNSUBSCRIBE /
/// PUSH) and thereby server-initiated writes; a v1 connection never
/// receives a frame type v1 does not know.

enum class WireVersion : uint8_t {
  kV1 = 1,
  kV2 = 2,
};

const char* WireVersionName(WireVersion version);

enum class MessageType : uint8_t {
  kHealthRequest = 1,
  kMetricsRequest = 2,
  kAuditRequest = 3,
  kAuditStaticRequest = 4,
  kScreenLibraryRequest = 5,
  kExecuteQueryRequest = 6,
  kLoadDumpRequest = 7,
  kSubscribeRequest = 8,    // v2 only
  kUnsubscribeRequest = 9,  // v2 only
  /// v2 only; a follower opens the REPLICATE stream on its primary.
  /// Payload: `applied_log_id|have_state|load_generation`.
  kReplicateRequest = 10,
  /// v2 only; one-way follower→primary ack (no response frame). Payload:
  /// `applied_log_id` — every record at or below it is applied and
  /// fsynced on the follower.
  kReplicateAckRequest = 11,
  /// v2 only; admin frame. Payload `primary` promotes a replica to
  /// primary; `follow|host:port` repoints a replica at a new upstream.
  kPromoteRequest = 12,
  kOkResponse = 0x40,
  kErrorResponse = 0x41,
  kPushEvent = 0x50,  // v2 only; server-initiated, carries no request id
  /// v2 only; server-initiated replication event on a REPLICATE stream
  /// (WAL record, bootstrap checkpoint, or load delta — see
  /// src/net/replication.h).
  kReplicateEvent = 0x51,
};

/// Endpoint name used in metrics and logs ("audit", "execute_query",
/// ...); "unknown" for a byte that is not a MessageType.
const char* MessageTypeName(MessageType type);
bool IsKnownMessageType(uint8_t byte);
bool IsRequestType(MessageType type);
/// Requests that are safe to retry over a fresh connection: everything
/// that leaves the server's stores untouched. ExecuteQuery (log append)
/// and LoadDump are not idempotent.
bool IsIdempotentType(MessageType type);

/// One parsed frame body. `version` records the magic the frame was
/// read with (and selects the magic EncodeFrame writes).
struct Message {
  MessageType type = MessageType::kHealthRequest;
  std::string payload;
  WireVersion version = WireVersion::kV1;
};

inline constexpr size_t kFrameHeaderBytes = 8;
inline constexpr char kFrameMagic[4] = {'A', 'D', 'B', '1'};
inline constexpr char kFrameMagicV2[4] = {'A', 'D', 'B', '2'};
/// Default cap on the frame *body* (type byte + payload).
inline constexpr size_t kDefaultMaxFrameBytes = 4u << 20;

/// Renders header + body; the inverse of one FrameReader::Next() step.
std::string EncodeFrame(const Message& message);

/// Joins fields with '|' after io::EscapeField-escaping each.
std::string EncodeFields(const std::vector<std::string>& fields);
/// Splits on unescaped pipes and unescapes every field. The empty
/// payload decodes to one empty field (callers validate arity).
Result<std::vector<std::string>> DecodeFields(const std::string& payload);

/// The error-response payload for `status` (code name + message).
Message MakeErrorMessage(const Status& status);
/// The NOT_PRIMARY rejection a replica answers writes with. The
/// primary's address rides the message text (`NOT_PRIMARY
/// primary=<host:port>`, or `primary=unknown` when the replica has no
/// upstream) so a multi-endpoint client can follow the redirect.
Status MakeNotPrimaryStatus(const std::string& primary_address);
bool IsNotPrimaryStatus(const Status& status);
/// The redirect address carried by a NOT_PRIMARY status; empty when
/// unknown or when `status` is not NOT_PRIMARY.
std::string NotPrimaryAddress(const Status& status);
/// Reconstructs the Status carried by a kErrorResponse payload.
Status DecodeErrorMessage(const std::string& payload);
/// Inverse of StatusCodeName; kInternal for unknown names.
StatusCode StatusCodeFromName(const std::string& name);

/// Incremental frame parser for a byte stream. Feed() appends raw
/// bytes; Next() pops one complete frame at a time:
///
///   Ok(Message)   a complete, well-formed frame was consumed;
///   Ok(nullopt)   the buffer holds only a partial frame — feed more;
///   error         protocol violation (bad magic, mixed ADB1/ADB2
///                 magics on one stream, zero-length body, body over
///                 the limit, unknown type byte). Sticky: the
///                 connection cannot be resynchronized and must close.
///
/// The first complete frame pins the stream's WireVersion (see
/// version()); every later frame must use the same magic.
class FrameReader {
 public:
  explicit FrameReader(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(const char* data, size_t size) { buffer_.append(data, size); }
  void Feed(const std::string& data) { buffer_.append(data); }

  Result<std::optional<Message>> Next();

  /// Bytes fed but not yet consumed by complete frames.
  size_t buffered_bytes() const { return buffer_.size() - offset_; }

  /// The version pinned by the first frame; nullopt before it arrives.
  std::optional<WireVersion> version() const { return version_; }

 private:
  size_t max_frame_bytes_;
  std::string buffer_;
  size_t offset_ = 0;
  std::optional<WireVersion> version_;
  Status failure_;  // sticky protocol violation, OK until one happens
};

}  // namespace net
}  // namespace auditdb

#endif  // AUDITDB_NET_WIRE_H_
