#ifndef AUDITDB_NET_WIRE_H_
#define AUDITDB_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace auditdb {
namespace net {

/// The framed wire protocol spoken between net::AuditClient and
/// net::AuditServer (docs/wire_protocol.md). Every frame is:
///
///   bytes 0..3   magic "ADB1"
///   bytes 4..7   big-endian uint32 body length (>= 1)
///   bytes 8..    body: one message-type byte + payload
///
/// Frames are binary-safe (the length prefix delimits them); structured
/// payloads are pipe-separated fields escaped with io::EscapeField — the
/// same escaping the dump format uses — so any byte string survives.

enum class MessageType : uint8_t {
  kHealthRequest = 1,
  kMetricsRequest = 2,
  kAuditRequest = 3,
  kAuditStaticRequest = 4,
  kScreenLibraryRequest = 5,
  kExecuteQueryRequest = 6,
  kLoadDumpRequest = 7,
  kOkResponse = 0x40,
  kErrorResponse = 0x41,
};

/// Endpoint name used in metrics and logs ("audit", "execute_query",
/// ...); "unknown" for a byte that is not a MessageType.
const char* MessageTypeName(MessageType type);
bool IsKnownMessageType(uint8_t byte);
bool IsRequestType(MessageType type);
/// Requests that are safe to retry over a fresh connection: everything
/// that leaves the server's stores untouched. ExecuteQuery (log append)
/// and LoadDump are not idempotent.
bool IsIdempotentType(MessageType type);

/// One parsed frame body.
struct Message {
  MessageType type = MessageType::kHealthRequest;
  std::string payload;
};

inline constexpr size_t kFrameHeaderBytes = 8;
inline constexpr char kFrameMagic[4] = {'A', 'D', 'B', '1'};
/// Default cap on the frame *body* (type byte + payload).
inline constexpr size_t kDefaultMaxFrameBytes = 4u << 20;

/// Renders header + body; the inverse of one FrameReader::Next() step.
std::string EncodeFrame(const Message& message);

/// Joins fields with '|' after io::EscapeField-escaping each.
std::string EncodeFields(const std::vector<std::string>& fields);
/// Splits on unescaped pipes and unescapes every field. The empty
/// payload decodes to one empty field (callers validate arity).
Result<std::vector<std::string>> DecodeFields(const std::string& payload);

/// The error-response payload for `status` (code name + message).
Message MakeErrorMessage(const Status& status);
/// Reconstructs the Status carried by a kErrorResponse payload.
Status DecodeErrorMessage(const std::string& payload);
/// Inverse of StatusCodeName; kInternal for unknown names.
StatusCode StatusCodeFromName(const std::string& name);

/// Incremental frame parser for a byte stream. Feed() appends raw
/// bytes; Next() pops one complete frame at a time:
///
///   Ok(Message)   a complete, well-formed frame was consumed;
///   Ok(nullopt)   the buffer holds only a partial frame — feed more;
///   error         protocol violation (bad magic, zero-length body,
///                 body over the limit, unknown type byte). Sticky: the
///                 connection cannot be resynchronized and must close.
class FrameReader {
 public:
  explicit FrameReader(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(const char* data, size_t size) { buffer_.append(data, size); }
  void Feed(const std::string& data) { buffer_.append(data); }

  Result<std::optional<Message>> Next();

  /// Bytes fed but not yet consumed by complete frames.
  size_t buffered_bytes() const { return buffer_.size() - offset_; }

 private:
  size_t max_frame_bytes_;
  std::string buffer_;
  size_t offset_ = 0;
  Status failure_;  // sticky protocol violation, OK until one happens
};

}  // namespace net
}  // namespace auditdb

#endif  // AUDITDB_NET_WIRE_H_
