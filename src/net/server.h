#ifndef AUDITDB_NET_SERVER_H_
#define AUDITDB_NET_SERVER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "src/net/replication.h"
#include "src/net/subscription.h"
#include "src/net/wire.h"
#include "src/service/audit_service.h"

namespace auditdb {
namespace io {
class DurableStore;
}  // namespace io
namespace policy {
class PolicyEngine;
}  // namespace policy

namespace net {

struct AuditServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port (read it back via port()).
  uint16_t port = 0;
  int listen_backlog = 128;
  size_t max_connections = 256;
  /// Cap on one frame body; larger frames are answered with OutOfRange
  /// and the connection closes.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Cap on one *response* frame body. A response that would exceed it
  /// is replaced by an OutOfRange error frame — before any
  /// non-idempotent side effect (ExecuteQuery checks the rendered
  /// response ahead of its log append) — so a client whose FrameReader
  /// runs with the default limit never faults mid-stream on a reply the
  /// server itself produced. Zero disables.
  size_t max_response_bytes = kDefaultMaxFrameBytes;
  /// Parsed-but-unserved requests buffered per connection before the
  /// server stops reading from it (pipelining backpressure).
  size_t max_pipelined = 32;
  /// A connection with no read activity and nothing in flight for this
  /// long is evicted. Zero disables.
  std::chrono::milliseconds idle_timeout{30000};
  /// A connection whose pending response bytes make no write progress
  /// for this long is evicted (slow-client protection). Zero disables.
  std::chrono::milliseconds write_timeout{10000};
  /// Graceful-drain budget: Shutdown() stops accepting, then waits this
  /// long for in-flight handlers to finish and responses to flush
  /// before closing whatever is left.
  std::chrono::milliseconds drain_timeout{10000};
  /// The request-handler pool (separate from the audit service's worker
  /// pool, which handlers fan audit shards out to). kReject surfaces a
  /// full queue to clients as a RESOURCE_EXHAUSTED error response;
  /// kBlock parks requests per connection and pauses reads instead, so
  /// backpressure reaches the client through TCP.
  service::ThreadPoolOptions handlers{
      /*num_threads=*/4, /*queue_capacity=*/64,
      service::AdmissionPolicy::kReject};
  /// Server-wide cap on concurrently active push subscriptions
  /// (protocol v2 SUBSCRIBE frames, docs/wire_protocol.md).
  size_t max_subscriptions = 1024;
  /// Bounded per-subscription outbound push queue; overflow applies the
  /// slow-subscriber policy.
  size_t push_queue_depth = 64;
  /// What happens to a subscriber whose push queue overflows: shed the
  /// oldest events behind a GAP frame, or evict the connection.
  SlowSubscriberPolicy slow_subscriber_policy =
      SlowSubscriberPolicy::kDropOldest;
  /// SO_SNDBUF for accepted connections; 0 keeps the kernel default.
  /// Shrinking it bounds how much push traffic the kernel absorbs on
  /// behalf of a slow subscriber, so queue overflow (and the policy
  /// above) triggers deterministically in tests and soaks.
  int so_sndbuf = 0;
  /// Optional durability (io::DurableStore, docs/durability.md). When
  /// set, ExecuteQuery WAL-appends *before* acking (an error response
  /// means nothing was committed; an OK means the entry survives a
  /// crash under fsync=always), a successful LoadDump forces a
  /// checkpoint, the automatic checkpoint cadence runs under the writer
  /// lock, and Metrics gains a "durability" section. Must outlive the
  /// server; the server serializes all access under its writer lock.
  io::DurableStore* durable_store = nullptr;
  /// Optional policy engine (policy::PolicyEngine, docs/policy.md).
  /// When set, every ExecuteQuery — including rejected statements — is
  /// matched against the audit rules before logging/observing: the
  /// matching rule's detail level drives sink emission (with per-rule
  /// redaction) and can force an online observation (full-audit), and
  /// Metrics gains a "policy" section. Hot reload (SIGHUP in auditd)
  /// swaps configs atomically; in-flight queries keep the snapshot they
  /// decided under. Must outlive the server.
  policy::PolicyEngine* policy = nullptr;

  /// Replication (docs/replication.md). Empty = this node starts as a
  /// primary (it accepts REPLICATE streams whether or not anything else
  /// is set); "host:port" = start as a read-only replica streaming from
  /// that primary. A replica rejects ExecuteQuery/LoadDump/REPLICATE
  /// with NOT_PRIMARY carrying the primary's address, and a PROMOTE
  /// frame turns it into a primary in place.
  std::string replicate_from;
  /// How many follower acks an ExecuteQuery waits for before its OK
  /// (the primary's own durable append always happens first).
  ReplAckPolicy repl_ack = ReplAckPolicy::kNone;
  /// WaitForAcks budget; expiry responds DEADLINE_EXCEEDED ("committed
  /// locally but under-replicated") rather than blocking the handler.
  std::chrono::milliseconds repl_ack_timeout{2000};
  /// Per-follower ship-queue cap; an overflowing follower is evicted
  /// (bounded divergence) and re-syncs from its durable position.
  size_t repl_max_buffered = 4096;
  /// Address other nodes should use for this one ("host:port");
  /// defaults to the bound host:port. Surfaces in the replication
  /// metrics so a cluster supervisor can route around failures.
  std::string advertise_address;
  /// Row stamp for database dumps shipped to bootstrapping replicas
  /// (the dump format has no per-row insert times). Must match the t0
  /// the cluster loads fixtures / recovers with, or DATA-INTERVAL
  /// audits diverge across nodes. auditd passes its fixture t0.
  int64_t bootstrap_stamp_micros = 1000000;
  /// Forces the Health payload / metrics to include the replication
  /// section even before any follower registers.
  bool replication = false;
};

/// The network front door of the audit service: an epoll event loop
/// that accepts non-blocking loopback/remote connections, parses
/// length-prefixed frames (src/net/wire.h), and hands fully-parsed
/// requests to a handler thread pool. Responses are written back on the
/// event loop; per-connection order matches request order (one handler
/// in flight per connection, the rest pipeline in arrival order).
///
/// Endpoints: Audit, AuditStatic, ScreenLibrary, ExecuteQuery (appends
/// to the served query log), LoadDump (db or log), Health, Metrics,
/// and — on protocol v2 connections — Subscribe/Unsubscribe.
/// Mutating endpoints take a writer lock; audits share a reader lock,
/// so remote reports are computed against a consistent store.
///
/// Subscriptions (docs/wire_protocol.md "Alerting"): a v2 client
/// SUBSCRIBEs to a standing audit expression; every ExecuteQuery is
/// then screened by an OnlineAuditor and state changes fan out as
/// server-initiated PUSH frames. Parked pushes ride the same epoll
/// write-interest machinery as responses; per-subscriber queues are
/// bounded with a configurable overflow policy, and graceful drain
/// flushes parked pushes before closing.
///
/// Shutdown() (or the daemon's SIGTERM path) drains gracefully: the
/// listener closes, in-flight handlers finish, their responses flush,
/// and only then do connections close.
class AuditServer {
 public:
  /// `service` must be bound to `db`/`backlog`/`log`; all must outlive
  /// the server. `backlog` is unused today but keeps the stores the
  /// server mutates explicit.
  AuditServer(service::AuditService* service, Database* db,
              Backlog* backlog, QueryLog* log,
              AuditServerOptions options = AuditServerOptions{});
  ~AuditServer();

  AuditServer(const AuditServer&) = delete;
  AuditServer& operator=(const AuditServer&) = delete;

  /// Binds, listens and starts the event-loop thread. Errors:
  /// InvalidArgument (bad host), Internal (socket/bind/listen failure),
  /// AlreadyExists (already started).
  Status Start();

  /// Bound port (after a successful Start).
  uint16_t port() const { return port_; }
  const std::string& host() const { return host_; }
  bool running() const;

  /// Graceful drain; blocks until the loop exits. Idempotent; also run
  /// by the destructor. A replica's streaming session stops first so no
  /// apply races the drain.
  void Shutdown();

  /// Replication role observers (tests and the cluster supervisor).
  bool is_replica() const;
  /// The upstream a replica streams from; empty on a primary.
  std::string replication_upstream() const;
  /// Registered followers (primary side).
  size_t follower_count() const;
  /// Log id this node has committed/applied through (its log size).
  int64_t applied_log_id() const;

  const service::MetricsRegistry& metrics() const { return metrics_; }
  /// {"server": <net.* metrics>, "service": <audit-service metrics>}
  /// plus, when present, "index" (decision-cache hit/miss/skip counters)
  /// and "durability" sections.
  std::string MetricsJson() const;

 private:
  struct Conn;
  struct Impl;

  void LoopThread();

  std::unique_ptr<Impl> impl_;
  service::MetricsRegistry metrics_;
  std::string host_;
  uint16_t port_ = 0;
  bool started_ = false;  // one-shot: a shut-down server stays down
  std::thread loop_;
};

}  // namespace net
}  // namespace auditdb

#endif  // AUDITDB_NET_SERVER_H_
