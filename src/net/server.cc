#include "src/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "src/audit/audit_parser.h"
#include "src/audit/candidate.h"
#include "src/audit/expression_library.h"
#include "src/audit/online.h"
#include "src/engine/executor.h"
#include "src/io/dump.h"
#include "src/policy/policy_engine.h"
#include "src/sql/parser.h"
#include "src/io/store.h"

namespace auditdb {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

bool ParseInt64Field(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

Message MakeOk(std::string payload) {
  return Message{MessageType::kOkResponse, std::move(payload)};
}

std::string FormatRankField(double rank) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", rank);
  return buf;
}

/// Per-refill byte budget when topping a drained write buffer up from
/// the subscription queues, so one push-heavy subscriber cannot grow an
/// unbounded out buffer in a single pass.
constexpr size_t kPushRefillBytes = 256u << 10;

}  // namespace

/// Per-connection state owned by the event loop.
struct AuditServer::Conn {
  explicit Conn(size_t max_frame_bytes) : reader(max_frame_bytes) {}

  int fd = -1;
  /// Monotonic id: handler completions are matched against it so a
  /// reused fd never receives a dead connection's response.
  uint64_t id = 0;
  /// Peer IP (dotted quad), captured at accept; empty when unknown.
  /// Policy rules' `remote =` clauses match against it.
  std::string peer;
  FrameReader reader;
  /// Pending response bytes (out_offset already written).
  std::string out;
  size_t out_offset = 0;
  /// Parsed requests not yet handed to a handler (pipelining buffer).
  std::deque<Message> pending;
  /// One handler in flight per connection keeps responses in order.
  bool busy = false;
  bool close_after_flush = false;
  /// Protocol-error frame held back until the in-flight handler's
  /// response is delivered, so even a dying connection answers in
  /// request order.
  std::string deferred_error;
  /// Reads withheld (pipelining cap or poisoned framing).
  bool paused = false;
  bool want_write = false;
  /// Pinned by the first frame the client sends (FrameReader enforces
  /// consistency); responses and error frames mirror it.
  WireVersion version = WireVersion::kV1;
  Clock::time_point last_read;
  Clock::time_point last_write_progress;
};

struct AuditServer::Impl {
  service::AuditService* service;
  Database* db;
  Backlog* backlog;
  QueryLog* log;
  AuditServerOptions options;
  service::MetricsRegistry* metrics;

  int listen_fd = -1;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;
  uint64_t next_conn_id = 1;

  std::unique_ptr<service::ThreadPool> handlers;
  /// Readers pin snapshots under a brief shared lock; writers
  /// (ExecuteQuery's commit section, LoadDump) exclude them. Mutable so
  /// const observers (metrics) can take the shared side.
  mutable std::shared_mutex state_mutex;

  /// Push-subscription state (docs/wire_protocol.md "Alerting").
  /// The registry is internally synchronized; everything else here is
  /// guarded by the writer side of state_mutex.
  SubscriptionRegistry subscriptions;
  /// Screens every executed query against the standing expressions;
  /// shares the serving stack's decision cache.
  std::unique_ptr<audit::OnlineAuditor> online;
  /// One standing expression per distinct qualified audit text,
  /// refcounted across the subscriptions naming it.
  struct StandingExpr {
    audit::AuditExpression expr;  // qualified; the poll-identical verdict source
    std::string key;              // expr.ToString()
    size_t refs = 0;
    audit::OnlineAuditor::Screening last;  // last published state
  };
  std::map<int, StandingExpr> standing;        // by OnlineAuditor id
  std::map<std::string, int> standing_by_key;  // canonical text -> id

  /// Replication state (docs/replication.md). The hub is internally
  /// synchronized: handlers Ship committed frames under the writer
  /// lock, the loop drains them per follower connection, and acks are
  /// applied inline on the loop thread. The session pointer and the
  /// role flip are guarded by repl_mutex — PROMOTE must join the
  /// session thread with no other lock held, because the session's
  /// apply callbacks take the writer side of state_mutex.
  ReplicationHub hub;
  mutable std::mutex repl_mutex;
  std::unique_ptr<ReplicaSession> replica;
  std::atomic<bool> is_replica{false};
  /// Counts LoadDumps applied; shipped in handshakes so a follower
  /// that missed a dump load cannot silently catch up incrementally.
  std::atomic<uint64_t> load_generation{0};
  /// host:port other nodes reach this one at; fixed after Start().
  std::string advertise;

  /// Loop → handler handoff for subscription cleanup: CloseConn (loop
  /// thread) must not take state_mutex, so expressions released by a
  /// closing connection park here until the next handler that already
  /// holds the writer lock collects them (GcOrphans).
  std::mutex push_mutex;
  std::vector<int> orphaned_exprs;
  /// Publish → loop handoff: conn ids with freshly parked pushes /
  /// flagged for slow-subscriber eviction. Drained by DeliverPushes.
  std::vector<uint64_t> push_ready;
  std::vector<uint64_t> push_evict;

  /// Loop-thread-only reverse map for push delivery by conn id.
  std::unordered_map<uint64_t, int> fd_by_conn_id;

  struct Done {
    int fd;
    uint64_t conn_id;
    std::string frame;
  };
  std::mutex done_mutex;
  std::vector<Done> done;

  std::atomic<bool> stop_requested{false};
  std::atomic<bool> running{false};
  /// Handler jobs submitted whose responses are not yet delivered to a
  /// write buffer — the quantity graceful drain waits on.
  size_t in_flight = 0;
  bool draining = false;
  Clock::time_point drain_deadline;

  service::Counter* connections_accepted;
  service::Counter* connections_rejected;
  service::Gauge* connections_gauge;
  service::Counter* frames_received;
  service::Counter* frames_sent;
  service::Counter* bytes_read;
  service::Counter* bytes_written;
  service::Counter* frame_errors;
  service::Counter* oversized_frames;
  service::Counter* oversized_responses;
  service::Counter* evicted_idle;
  service::Counter* evicted_slow;
  service::Counter* admission_rejected;
  service::Counter* drain_cancelled;

  Impl(service::AuditService* service_in, Database* db_in,
       Backlog* backlog_in, QueryLog* log_in, AuditServerOptions options_in,
       service::MetricsRegistry* metrics_in)
      : service(service_in),
        db(db_in),
        backlog(backlog_in),
        log(log_in),
        options(std::move(options_in)),
        metrics(metrics_in),
        subscriptions(SubscriptionLimits{options.max_subscriptions,
                                         options.push_queue_depth,
                                         options.slow_subscriber_policy}),
        hub(options.repl_max_buffered) {
    LoadReplGeneration();
    handlers =
        std::make_unique<service::ThreadPool>(options.handlers, metrics);
    // The online monitor behind push subscriptions shares the service's
    // decision cache, so screening an executed query reuses the same
    // memoized candidacy decisions polls do.
    audit::OnlineAuditorOptions online_options;
    online_options.cache = service->decision_cache();
    online = std::make_unique<audit::OnlineAuditor>(db, online_options);
    // Observe → fan-out hook: runs on the handler thread inside
    // HandleExecuteQuery's Observe call, under the writer lock.
    online->SetScreeningListener(
        [this](const LoggedQuery& query,
               const std::vector<audit::OnlineAuditor::Screening>&
                   screenings) { PublishScreenings(query, screenings); });
    connections_accepted = metrics->counter("net.connections_accepted");
    connections_rejected = metrics->counter("net.connections_rejected");
    connections_gauge = metrics->gauge("net.connections");
    frames_received = metrics->counter("net.frames_received");
    frames_sent = metrics->counter("net.frames_sent");
    bytes_read = metrics->counter("net.bytes_read");
    bytes_written = metrics->counter("net.bytes_written");
    frame_errors = metrics->counter("net.frame_errors");
    oversized_frames = metrics->counter("net.oversized_frames");
    oversized_responses = metrics->counter("net.oversized_responses");
    evicted_idle = metrics->counter("net.evicted_idle");
    evicted_slow = metrics->counter("net.evicted_slow");
    admission_rejected = metrics->counter("net.admission_rejected");
    drain_cancelled = metrics->counter("net.drain_cancelled");
    // No cache-invalidation change listener: decision-cache entries are
    // keyed on per-table version epochs (catalog epoch for schema-only
    // decisions, FROM-table epoch fingerprints for executed profiles), so
    // a write can never produce a stale hit — it simply changes the key.
    // Wholesale eviction here would throw away exactly the cross-write
    // hit rates the versioned keys exist to preserve.
  }

  ~Impl() {
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_fd >= 0) ::close(wake_fd);
    if (epoll_fd >= 0) ::close(epoll_fd);
  }

  void Wake() {
    uint64_t one = 1;
    ssize_t ignored = ::write(wake_fd, &one, sizeof(one));
    (void)ignored;
  }

  void DrainWake() {
    uint64_t value;
    while (::read(wake_fd, &value, sizeof(value)) > 0) {
    }
  }

  void UpdateEpoll(Conn* conn) {
    epoll_event event{};
    event.data.fd = conn->fd;
    if (!conn->paused) event.events |= EPOLLIN;
    bool want_write = conn->out_offset < conn->out.size();
    if (want_write) event.events |= EPOLLOUT;
    conn->want_write = want_write;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn->fd, &event);
  }

  void CloseConn(int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    uint64_t conn_id = it->second->id;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns.erase(it);
    fd_by_conn_id.erase(conn_id);
    connections_gauge->Set(static_cast<int64_t>(conns.size()));
    // Drop the connection's subscriptions (registry mutex only — the
    // loop thread must never wait on state_mutex) and park the released
    // standing expressions for the next writer-lock holder to collect.
    std::vector<int> released = subscriptions.DropConnection(conn_id);
    if (!released.empty()) {
      std::lock_guard<std::mutex> lock(push_mutex);
      orphaned_exprs.insert(orphaned_exprs.end(), released.begin(),
                            released.end());
    }
    // A closing follower leaves the replica table; ack waiters
    // recompute their quorum over the survivors.
    hub.DropConnection(conn_id);
  }

  void CloseAll() {
    std::vector<int> fds;
    fds.reserve(conns.size());
    for (const auto& [fd, conn] : conns) fds.push_back(fd);
    for (int fd : fds) CloseConn(fd);
    if (listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
    }
  }

  void AcceptAll() {
    while (true) {
      sockaddr_in peer_addr{};
      socklen_t peer_len = sizeof(peer_addr);
      int fd = ::accept4(listen_fd,
                         reinterpret_cast<sockaddr*>(&peer_addr), &peer_len,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN or transient accept failure: try next wakeup
      }
      if (conns.size() >= options.max_connections) {
        connections_rejected->Increment();
        std::string frame = EncodeFrame(MakeErrorMessage(
            Status::ResourceExhausted("connection limit reached")));
        ::send(fd, frame.data(), frame.size(),
               MSG_DONTWAIT | MSG_NOSIGNAL);
        ::close(fd);
        continue;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      if (options.so_sndbuf > 0) {
        ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options.so_sndbuf,
                     sizeof(options.so_sndbuf));
      }
      auto conn = std::make_unique<Conn>(options.max_frame_bytes);
      conn->fd = fd;
      conn->id = next_conn_id++;
      if (peer_addr.sin_family == AF_INET) {
        char ip[INET_ADDRSTRLEN] = "";
        if (::inet_ntop(AF_INET, &peer_addr.sin_addr, ip, sizeof(ip)) !=
            nullptr) {
          conn->peer = ip;
        }
      }
      conn->last_read = conn->last_write_progress = Clock::now();
      epoll_event event{};
      event.data.fd = fd;
      event.events = EPOLLIN;
      if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &event) != 0) {
        ::close(fd);
        continue;
      }
      fd_by_conn_id[conn->id] = fd;
      conns.emplace(fd, std::move(conn));
      connections_accepted->Increment();
      connections_gauge->Set(static_cast<int64_t>(conns.size()));
    }
  }

  void QueueWrite(Conn* conn, Message message) {
    if (conn->out_offset == conn->out.size()) {
      conn->last_write_progress = Clock::now();
    }
    message.version = conn->version;
    conn->out.append(EncodeFrame(message));
    frames_sent->Increment();
    FlushConn(conn);
  }

  /// Tops a drained write buffer up with parked push frames. Loop
  /// thread only; a no-op for connections without pending pushes.
  void RefillPushes(Conn* conn) {
    if (conn->close_after_flush) return;
    if (conn->out_offset == conn->out.size()) {
      conn->last_write_progress = Clock::now();
    }
    size_t frames =
        subscriptions.DrainFrames(conn->id, kPushRefillBytes, &conn->out);
    frames += hub.DrainFrames(conn->id, kPushRefillBytes, &conn->out);
    if (frames > 0) frames_sent->Increment(frames);
  }

  /// Writes as much of the buffered response bytes as the socket takes,
  /// topping the buffer up from the connection's parked push queues
  /// whenever it drains — server-initiated pushes ride the same
  /// write-interest machinery as responses. May close the connection
  /// (write error, or close_after_flush done).
  void FlushConn(Conn* conn) {
    int fd = conn->fd;
    while (true) {
      while (conn->out_offset < conn->out.size()) {
        ssize_t n =
            ::send(fd, conn->out.data() + conn->out_offset,
                   conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
        if (n > 0) {
          conn->out_offset += static_cast<size_t>(n);
          bytes_written->Increment(static_cast<uint64_t>(n));
          conn->last_write_progress = Clock::now();
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          UpdateEpoll(conn);
          return;
        }
        CloseConn(fd);
        return;
      }
      conn->out.clear();
      conn->out_offset = 0;
      if (conn->close_after_flush) {
        CloseConn(fd);
        return;
      }
      RefillPushes(conn);
      if (conn->out.empty()) break;
    }
    if (conn->want_write) UpdateEpoll(conn);
  }

  Status SubmitHandler(Conn* conn, Message request) {
    int fd = conn->fd;
    uint64_t conn_id = conn->id;
    // Conn state is loop-thread-only; the handler gets its own copy.
    return handlers->TrySubmit([this, fd, conn_id, peer = conn->peer,
                                request = std::move(request)] {
      auto start = Clock::now();
      Message response = HandleRequest(request, conn_id, peer);
      // Never emit a frame the client's reader could refuse: oversized
      // replies (huge SELECT render, metrics dump, detailed report)
      // degrade to an OutOfRange error on a connection that stays in
      // sync. Non-idempotent handlers guard before their side effects.
      if (options.max_response_bytes > 0 &&
          1 + response.payload.size() > options.max_response_bytes) {
        oversized_responses->Increment();
        response = MakeErrorMessage(Status::OutOfRange(
            "response body of " +
            std::to_string(1 + response.payload.size()) +
            " bytes exceeds limit " +
            std::to_string(options.max_response_bytes)));
      }
      // Stamped after the oversized swap: every frame on this
      // connection must carry the magic its first frame pinned.
      response.version = request.version;
      uint64_t micros = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - start)
              .count());
      const char* endpoint = MessageTypeName(request.type);
      metrics->counter(std::string("net.requests.") + endpoint)
          ->Increment();
      metrics->histogram(std::string("net.request_micros.") + endpoint)
          ->Observe(micros);
      if (response.type == MessageType::kErrorResponse) {
        metrics->counter(std::string("net.request_errors.") + endpoint)
            ->Increment();
      }
      {
        std::lock_guard<std::mutex> lock(done_mutex);
        done.push_back(Done{fd, conn_id, EncodeFrame(response)});
      }
      Wake();
    });
  }

  /// Marks a connection dead after a protocol violation: reads stop for
  /// good, no further handlers start, and the connection closes once
  /// the error frame flushes. If a handler is in flight its response is
  /// delivered first — the in-order response guarantee holds even on a
  /// dying connection. May close the connection (error-frame write
  /// failure).
  void PoisonConn(Conn* conn, const Status& status) {
    conn->paused = true;
    conn->close_after_flush = true;
    if (conn->busy) {
      Message error = MakeErrorMessage(status);
      error.version = conn->version;
      conn->deferred_error = EncodeFrame(error);
      UpdateEpoll(conn);
      return;
    }
    QueueWrite(conn, MakeErrorMessage(status));
  }

  /// Parses complete frames already buffered in the connection's
  /// FrameReader into the pending queue, pausing reads at the
  /// pipelining cap and poisoning the connection on malformed input.
  /// Returns false when the connection was closed underneath us.
  bool ParseFrames(Conn* conn) {
    const int fd = conn->fd;
    while (!conn->close_after_flush &&
           conn->pending.size() < options.max_pipelined) {
      auto next = conn->reader.Next();
      if (!next.ok()) {
        frame_errors->Increment();
        if (next.status().code() == StatusCode::kOutOfRange) {
          oversized_frames->Increment();
        }
        // Tell the client why, then hang up: framing errors cannot be
        // resynchronized.
        PoisonConn(conn, next.status());
        return conns.count(fd) != 0;
      }
      if (!next->has_value()) return true;
      frames_received->Increment();
      Message message = std::move(**next);
      conn->version = message.version;
      // Replication acks are one-way frames applied inline on the loop
      // thread: ExecuteQuery handlers block in WaitForAcks, so routing
      // acks through the same handler pool could starve the very acks
      // those handlers are waiting on.
      if (message.type == MessageType::kReplicateAckRequest) {
        auto ack_fields = DecodeFields(message.payload);
        int64_t acked = 0;
        if (!ack_fields.ok() || ack_fields->size() != 1 ||
            !ParseInt64Field((*ack_fields)[0], &acked)) {
          frame_errors->Increment();
          PoisonConn(conn, Status::InvalidArgument(
                               "malformed replication ack"));
          return conns.count(fd) != 0;
        }
        hub.Ack(conn->id, acked);
        continue;
      }
      if (!IsRequestType(message.type)) {
        frame_errors->Increment();
        PoisonConn(conn, Status::InvalidArgument(
                             "expected a request frame"));
        return conns.count(fd) != 0;
      }
      conn->pending.push_back(std::move(message));
    }
    if (conn->pending.size() >= options.max_pipelined) {
      conn->paused = true;
      UpdateEpoll(conn);
    }
    return true;
  }

  /// Starts handlers for parsed requests, in order, one at a time per
  /// connection. Under kReject a full handler queue turns into an
  /// immediate RESOURCE_EXHAUSTED response; under kBlock the request
  /// parks at the head and reads stay paused until a slot frees up.
  void PumpConn(Conn* conn) {
    const int fd = conn->fd;
    bool unpaused = false;
    while (true) {
      while (!conn->busy && !conn->pending.empty() &&
             !conn->close_after_flush) {
        if (draining) {
          drain_cancelled->Increment();
          conn->pending.pop_front();
          QueueWrite(conn, MakeErrorMessage(Status::Cancelled(
                               "server draining, request not started")));
          if (conns.count(fd) == 0) return;  // write error closed it
          continue;
        }
        Status submitted = SubmitHandler(conn, conn->pending.front());
        if (submitted.ok()) {
          conn->pending.pop_front();
          conn->busy = true;
          ++in_flight;
          continue;
        }
        if (submitted.code() == StatusCode::kResourceExhausted &&
            options.handlers.admission ==
                service::AdmissionPolicy::kBlock) {
          break;  // retried by PumpStalled once a handler frees a slot
        }
        admission_rejected->Increment();
        conn->pending.pop_front();
        QueueWrite(conn, MakeErrorMessage(submitted));
        if (conns.count(fd) == 0) return;
      }
      // Resume reads once the pipeline buffer has room again (unless
      // the framing is poisoned, which pauses the connection for good).
      // Frames the client pipelined past the cap are already sitting in
      // the FrameReader and will never raise another EPOLLIN, so parse
      // them now instead of waiting on the socket.
      if (conn->paused && !conn->close_after_flush &&
          conn->pending.size() < options.max_pipelined) {
        conn->paused = false;
        unpaused = true;
        size_t before = conn->pending.size();
        if (!ParseFrames(conn)) return;  // error-frame write closed it
        if (conn->pending.size() > before && !conn->busy) continue;
      }
      break;
    }
    if (unpaused) UpdateEpoll(conn);
  }

  void PumpStalled() {
    std::vector<int> fds;
    fds.reserve(conns.size());
    for (const auto& [fd, conn] : conns) {
      if (!conn->busy && !conn->pending.empty()) fds.push_back(fd);
    }
    for (int fd : fds) {
      auto it = conns.find(fd);
      if (it != conns.end()) PumpConn(it->second.get());
    }
  }

  /// Pulls completed handler responses onto their connections' write
  /// buffers. Responses for connections that died in the meantime are
  /// dropped (the id check defeats fd reuse).
  void DeliverCompletions() {
    std::vector<Done> batch;
    {
      std::lock_guard<std::mutex> lock(done_mutex);
      batch.swap(done);
    }
    for (auto& d : batch) {
      --in_flight;
      auto it = conns.find(d.fd);
      if (it == conns.end() || it->second->id != d.conn_id) continue;
      Conn* conn = it->second.get();
      conn->busy = false;
      if (conn->out_offset == conn->out.size()) {
        conn->last_write_progress = Clock::now();
      }
      conn->out.append(d.frame);
      frames_sent->Increment();
      // A protocol violation detected while this handler ran parked its
      // error frame; it goes out right behind the response it waited
      // for, keeping the dying connection's responses in order.
      if (!conn->deferred_error.empty()) {
        conn->out.append(conn->deferred_error);
        conn->deferred_error.clear();
        frames_sent->Increment();
      }
      FlushConn(conn);
      it = conns.find(d.fd);
      if (it != conns.end() && it->second->id == d.conn_id) {
        PumpConn(it->second.get());
      }
    }
  }

  /// Reads until EAGAIN and parses complete frames into the pending
  /// queue. Returns false when the connection was closed.
  bool ReadConn(int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return false;
    Conn* conn = it->second.get();
    // A stale EPOLLIN for a paused connection is a no-op: the data
    // stays in the kernel buffer (level-triggered) and the unpause path
    // in PumpConn resumes parsing and re-arms the interest set.
    if (conn->paused) return true;
    char buf[16384];
    while (true) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        bytes_read->Increment(static_cast<uint64_t>(n));
        conn->reader.Feed(buf, static_cast<size_t>(n));
        conn->last_read = Clock::now();
        continue;
      }
      if (n == 0) {
        CloseConn(fd);
        return false;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(fd);
      return false;
    }
    if (!ParseFrames(conn)) return false;
    it = conns.find(fd);
    if (it == conns.end()) return false;
    PumpConn(it->second.get());
    return conns.count(fd) != 0;
  }

  void SweepTimeouts() {
    if (options.idle_timeout.count() == 0 &&
        options.write_timeout.count() == 0) {
      return;
    }
    auto now = Clock::now();
    std::vector<int> slow;
    std::vector<int> idle;
    for (const auto& [fd, conn] : conns) {
      if (options.write_timeout.count() > 0 &&
          conn->out_offset < conn->out.size() &&
          now - conn->last_write_progress > options.write_timeout) {
        slow.push_back(fd);
        continue;
      }
      if (options.idle_timeout.count() > 0 && !conn->busy &&
          conn->pending.empty() && conn->out.empty() &&
          now - conn->last_read > options.idle_timeout &&
          // A passive subscriber legitimately sends nothing for long
          // stretches; pushes are its liveness signal, and a dead peer
          // still surfaces through write errors or the write timeout.
          // Followers are likewise quiet between writes — a partitioned
          // one is evicted by the write timeout or queue overflow.
          !subscriptions.HasSubscriptions(conn->id) &&
          !hub.IsFollower(conn->id)) {
        idle.push_back(fd);
      }
    }
    for (int fd : slow) {
      evicted_slow->Increment();
      CloseConn(fd);
    }
    for (int fd : idle) {
      evicted_idle->Increment();
      CloseConn(fd);
    }
  }

  void BeginDrain() {
    draining = true;
    drain_deadline = Clock::now() + options.drain_timeout;
    if (listen_fd >= 0) {
      ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
      ::close(listen_fd);
      listen_fd = -1;
    }
  }

  bool DrainComplete() {
    if (Clock::now() >= drain_deadline) return true;
    if (in_flight > 0) return false;
    // Parked pushes and undelivered replication frames count as
    // undelivered responses: drain flushes them (or times out on a
    // peer that stopped reading).
    if (subscriptions.TotalPending() > 0) return false;
    if (hub.TotalPending() > 0) return false;
    for (const auto& [fd, conn] : conns) {
      if (conn->busy || !conn->pending.empty() ||
          conn->out_offset < conn->out.size()) {
        return false;
      }
    }
    return true;
  }

  /// Acts on Publish outcomes queued by handler threads: evicts flagged
  /// slow subscribers and starts flushing freshly parked pushes on
  /// connections whose write buffer is idle. Loop thread only.
  void DeliverPushes() {
    std::vector<uint64_t> ready, evict;
    {
      std::lock_guard<std::mutex> lock(push_mutex);
      ready.swap(push_ready);
      evict.swap(push_evict);
    }
    for (uint64_t conn_id : evict) {
      auto it = fd_by_conn_id.find(conn_id);
      if (it != fd_by_conn_id.end()) CloseConn(it->second);
    }
    for (uint64_t conn_id : ready) {
      auto it = fd_by_conn_id.find(conn_id);
      if (it == fd_by_conn_id.end()) continue;
      auto cit = conns.find(it->second);
      if (cit == conns.end() || cit->second->id != conn_id) continue;
      Conn* conn = cit->second.get();
      // A busy write buffer picks the pushes up when it drains
      // (FlushConn refills); only an idle one needs a kick here.
      if (conn->out_offset < conn->out.size() || conn->close_after_flush) {
        continue;
      }
      RefillPushes(conn);
      if (!conn->out.empty()) FlushConn(conn);
    }
  }

  std::string CombinedMetricsJson() const {
    std::string json = "{\"server\":" + metrics->ToJson() +
                       ",\"service\":" + service->MetricsJson();
    if (service->decision_cache() != nullptr) {
      json += ",\"index\":" + service->decision_cache()->stats()->ToJson();
    }
    if (options.durable_store != nullptr) {
      json += ",\"durability\":" + options.durable_store->MetricsJson();
    }
    json += ",\"push\":" + subscriptions.MetricsJson();
    if (options.policy != nullptr) {
      json += ",\"policy\":" + options.policy->MetricsJson();
    }
    json += ",\"replication\":" + ReplicationMetricsJson();
    json += ",\"versions\":" + VersionsMetricsJson();
    return json + "}";
  }

  bool ReplicationOn() const {
    return options.replication || !options.replicate_from.empty() ||
           is_replica.load() || hub.follower_count() > 0;
  }

  int64_t AppliedLogId() const {
    std::shared_lock<std::shared_mutex> lock(state_mutex);
    return static_cast<int64_t>(log->size());
  }

  std::string ReplicationMetricsJson() const {
    std::string json = "{\"role\":\"";
    json += is_replica.load() ? "replica" : "primary";
    json += "\",\"ack_policy\":\"";
    json += ReplAckPolicyName(options.repl_ack);
    json += "\",\"advertise\":\"" + advertise + "\"";
    json += ",\"applied_log_id\":" + std::to_string(AppliedLogId());
    json += ",\"load_generation\":" +
            std::to_string(load_generation.load());
    json += ",\"hub\":" + hub.MetricsJson();
    {
      std::lock_guard<std::mutex> lock(repl_mutex);
      if (replica != nullptr) {
        json += ",\"session\":" + replica->MetricsJson();
      }
    }
    return json + "}";
  }

  /// The `|role=...` tail appended to Health when replication is on —
  /// enough for a supervisor to pick the most-caught-up follower
  /// without parsing the metrics JSON.
  std::string ReplicationHealthSuffix() const {
    std::string suffix = std::string("|role=") +
                         (is_replica.load() ? "replica" : "primary") +
                         "|applied=" + std::to_string(AppliedLogId()) +
                         "|last_shipped=" +
                         std::to_string(hub.last_shipped()) +
                         "|followers=" +
                         std::to_string(hub.follower_count());
    std::lock_guard<std::mutex> lock(repl_mutex);
    if (replica != nullptr) {
      suffix += "|upstream=" + replica->upstream() + "|connected=" +
                (replica->connected() ? "1" : "0");
    }
    return suffix;
  }

  /// Ships one committed frame to every follower and queues the
  /// outcome for the loop (the same handoff PublishScreenings uses).
  /// Caller holds the writer lock, so ship order equals commit order.
  void QueueShip(int64_t log_id, const std::string& frame) {
    PublishOutcome outcome = hub.Ship(log_id, frame);
    if (outcome.ready_conns.empty() && outcome.evict_conns.empty()) {
      return;
    }
    {
      std::lock_guard<std::mutex> lock(push_mutex);
      push_ready.insert(push_ready.end(), outcome.ready_conns.begin(),
                        outcome.ready_conns.end());
      push_evict.insert(push_evict.end(), outcome.evict_conns.begin(),
                        outcome.evict_conns.end());
    }
    Wake();
  }

  /// The LoadDump generation survives restarts alongside the durable
  /// store (REPLGEN file), so a restarted node handshakes with the
  /// generation its on-disk state actually reflects.
  void PersistReplGeneration(uint64_t gen) {
    io::DurableStore* store = options.durable_store;
    if (store == nullptr) return;
    Status wrote =
        io::AtomicWriteFile(store->env(), store->dir() + "/REPLGEN",
                            std::to_string(gen) + "\n");
    (void)wrote;  // best-effort: a miss degrades to a rejoin bootstrap
  }

  void LoadReplGeneration() {
    io::DurableStore* store = options.durable_store;
    if (store == nullptr) return;
    auto data = store->env()->ReadFileToString(store->dir() + "/REPLGEN");
    if (!data.ok()) return;
    errno = 0;
    char* end = nullptr;
    unsigned long long gen = std::strtoull(data->c_str(), &end, 10);
    if (errno == 0 && end != data->c_str()) load_generation.store(gen);
  }

  /// Builds the replica-side apply callbacks and starts the streaming
  /// session against options.replicate_from.
  void StartReplica() {
    ReplicaApplier applier;
    applier.apply_query = [this](const LoggedQuery& entry) -> Status {
      std::unique_lock<std::shared_mutex> lock(state_mutex);
      int64_t expect = log->next_id();
      if (entry.id != expect) {
        return Status::Internal(
            "shipped record id " + std::to_string(entry.id) +
            " does not extend the log at " + std::to_string(expect));
      }
      io::DurableStore* store = options.durable_store;
      if (store != nullptr) {
        AUDITDB_RETURN_IF_ERROR(store->AppendQuery(entry));
        // fsync-before-ack: the ack promises the record survives
        // kill -9 regardless of the configured fsync cadence.
        if (store->store_options().fsync !=
            querylog::FsyncPolicy::kAlways) {
          AUDITDB_RETURN_IF_ERROR(store->Sync());
        }
      }
      log->Append(entry.sql, entry.timestamp, entry.user, entry.role,
                  entry.purpose);
      MaybeCheckpoint();
      // Replica subscribers get the same observe/push fan-out as on
      // the primary; policy emission stays with the node that actually
      // executed the query.
      if (subscriptions.active() > 0) {
        GcOrphans();
        auto observed = online->Observe(entry, service->pool());
        if (!observed.ok()) {
          metrics->counter("net.push_observe_errors")->Increment();
        }
      }
      return Status::Ok();
    };
    applier.apply_load = [this](const std::string& kind,
                                const std::string& dump, uint64_t gen,
                                int64_t stamp) -> Status {
      std::unique_lock<std::shared_mutex> lock(state_mutex);
      std::istringstream in(dump);
      Status loaded;
      if (kind == "db") {
        loaded = io::ReadDatabaseDump(in, db, Timestamp(stamp));
      } else if (kind == "log") {
        loaded = io::ReadQueryLogDump(in, log);
      } else {
        loaded = Status::InvalidArgument(
            "shipped load kind must be db|log, got: " + kind);
      }
      AUDITDB_RETURN_IF_ERROR(loaded);
      load_generation.store(gen);
      PersistReplGeneration(gen);
      if (options.durable_store != nullptr) {
        return options.durable_store->Checkpoint(*db, *log);
      }
      return Status::Ok();
    };
    applier.apply_bootstrap = [this](const std::string& db_dump,
                                     const std::string& log_dump,
                                     uint64_t gen,
                                     int64_t stamp) -> Status {
      std::unique_lock<std::shared_mutex> lock(state_mutex);
      if (log->size() > 0 || !db->TableNames().empty()) {
        return Status::InvalidArgument(
            "bootstrap checkpoint offered to a non-empty replica; wipe "
            "its data dir and restart");
      }
      std::istringstream db_in(db_dump);
      AUDITDB_RETURN_IF_ERROR(
          io::ReadDatabaseDump(db_in, db, Timestamp(stamp)));
      std::istringstream log_in(log_dump);
      AUDITDB_RETURN_IF_ERROR(io::ReadQueryLogDump(log_in, log));
      load_generation.store(gen);
      PersistReplGeneration(gen);
      // A checkpoint makes the bootstrap durable before it is acked.
      if (options.durable_store != nullptr) {
        return options.durable_store->Checkpoint(*db, *log);
      }
      return Status::Ok();
    };
    applier.applied_log_id = [this]() -> int64_t {
      return AppliedLogId();
    };
    applier.have_state = [this]() -> bool {
      std::shared_lock<std::shared_mutex> lock(state_mutex);
      return log->size() > 0 || !db->TableNames().empty();
    };
    applier.load_generation = [this]() -> uint64_t {
      return load_generation.load();
    };
    is_replica.store(true);
    std::lock_guard<std::mutex> lock(repl_mutex);
    replica = std::make_unique<ReplicaSession>(options.replicate_from,
                                               std::move(applier));
    replica->Start();
  }

  /// The NOT_PRIMARY rejection every mutating endpoint returns on a
  /// replica; carries the upstream so clients can fail over.
  Message RejectNotPrimary() {
    std::lock_guard<std::mutex> lock(repl_mutex);
    return MakeErrorMessage(MakeNotPrimaryStatus(
        replica != nullptr ? replica->upstream() : std::string()));
  }

  /// MVCC observability: per-table version/COW/columnar counters plus the
  /// query log's structural shape-dedup ratio. Walking the live catalog
  /// races LoadDump's CreateTable, so hold the shared state lock for the
  /// walk (the per-table counters themselves are atomics).
  std::string VersionsMetricsJson() const {
    std::shared_lock<std::shared_mutex> lock(state_mutex);
    std::string json = "{\"catalog_epoch\":" +
                       std::to_string(db->catalog_epoch()) + ",\"tables\":{";
    bool first = true;
    for (const auto& name : db->TableNames()) {
      auto table = db->GetTable(name);
      if (!table.ok()) continue;
      const TableStats& stats = (*table)->stats();
      if (!first) json += ",";
      first = false;
      json += "\"" + name + "\":{\"epoch\":" +
              std::to_string((*table)->epoch()) +
              ",\"live_versions\":" +
              std::to_string(stats.live_versions.load()) +
              ",\"versions_published\":" +
              std::to_string(stats.versions_published.load()) +
              ",\"cow_rows\":" + std::to_string(stats.cow_rows.load()) +
              ",\"cow_bytes\":" + std::to_string(stats.cow_bytes.load()) +
              ",\"columnar_builds\":" +
              std::to_string(stats.columnar_builds.load()) +
              ",\"columnar_hits\":" +
              std::to_string(stats.columnar_hits.load()) + "}";
    }
    const size_t entries = log->size();
    const size_t shapes = log->distinct_shapes();
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.3f",
                  shapes == 0 ? 1.0
                              : static_cast<double>(entries) /
                                    static_cast<double>(shapes));
    json += "},\"log_entries\":" + std::to_string(entries) +
            ",\"distinct_shapes\":" + std::to_string(shapes) +
            ",\"shape_dedup_ratio\":" + ratio + "}";
    return json;
  }

  /// Runs the automatic checkpoint cadence; call under the writer lock
  /// after a durable append. A failed checkpoint before the commit
  /// point is non-fatal: the store keeps running on its old WAL and the
  /// failure is visible in the durability metrics.
  void MaybeCheckpoint() {
    io::DurableStore* store = options.durable_store;
    if (store == nullptr || !store->ShouldCheckpoint()) return;
    Status ignored = store->Checkpoint(*db, *log);
    (void)ignored;
  }

  Message HandleRequest(const Message& request, uint64_t conn_id,
                        const std::string& peer);
  Message HandleAudit(const Message& request, bool static_only);
  Message HandleScreenLibrary(const Message& request);
  Message HandleExecuteQuery(const Message& request,
                             const std::string& peer);
  Message HandleLoadDump(const Message& request);
  std::string PolicyNote(
      const policy::PolicyEngine::Decision& decision,
      const policy::QueryContext& ctx,
      const std::vector<audit::OnlineAuditor::Screening>& screenings,
      bool observed_ok);
  Message HandleSubscribe(const Message& request, uint64_t conn_id);
  Message HandleUnsubscribe(const Message& request, uint64_t conn_id);
  Message HandleReplicate(const Message& request, uint64_t conn_id);
  Message HandlePromote(const Message& request);

  /// Collects standing expressions released by closed connections.
  /// Caller must hold the writer side of state_mutex.
  void GcOrphans() {
    std::vector<int> released;
    {
      std::lock_guard<std::mutex> lock(push_mutex);
      released.swap(orphaned_exprs);
    }
    for (int id : released) ReleaseStanding(id);
  }

  /// Drops one reference to a standing expression, removing it from the
  /// online monitor when the last subscription goes away. Caller must
  /// hold the writer side of state_mutex.
  void ReleaseStanding(int id) {
    auto it = standing.find(id);
    if (it == standing.end()) return;
    if (--it->second.refs > 0) return;
    standing_by_key.erase(it->second.key);
    standing.erase(it);
    Status removed = online->RemoveExpression(id);
    (void)removed;
  }

  /// The observe → fan-out hook body (OnlineAuditor screening
  /// listener): publishes a PROGRESS event for every expression whose
  /// suspicion state changed, and an ALERT — carrying the canonical
  /// poll-identical verdict — for every expression that just fired.
  /// Runs on the handler thread under the writer lock (the verdict
  /// audit must see exactly the log state the triggering query
  /// committed).
  void PublishScreenings(
      const LoggedQuery& query,
      const std::vector<audit::OnlineAuditor::Screening>& screenings) {
    std::vector<uint64_t> ready, evict;
    for (const auto& screening : screenings) {
      auto it = standing.find(screening.expression_id);
      if (it == standing.end()) continue;
      StandingExpr& se = it->second;
      bool newly_fired = screening.fired && !se.last.fired;
      if (screening.rank == se.last.rank &&
          screening.fired == se.last.fired) {
        continue;  // nothing the subscriber doesn't already know
      }
      std::string verdict;
      PushKind kind = PushKind::kProgress;
      if (newly_fired) {
        kind = PushKind::kAlert;
        // Same code path a poll takes (AuditService::Audit on the
        // qualified expression, default options, shared cache), so the
        // pushed verdict is byte-identical to auditing the log range
        // that ends at the triggering query.
        auto report = service->Audit(se.expr);
        if (report.ok()) {
          verdict = report->CanonicalString();
        } else {
          metrics->counter("net.push_verdict_errors")->Increment();
          verdict = "verdict-error: " + report.status().message();
        }
      }
      se.last = screening;
      PublishOutcome outcome = subscriptions.Publish(
          screening.expression_id, kind, query.id, screening.rank,
          screening.fired, verdict);
      ready.insert(ready.end(), outcome.ready_conns.begin(),
                   outcome.ready_conns.end());
      evict.insert(evict.end(), outcome.evict_conns.begin(),
                   outcome.evict_conns.end());
    }
    if (ready.empty() && evict.empty()) return;
    {
      std::lock_guard<std::mutex> lock(push_mutex);
      push_ready.insert(push_ready.end(), ready.begin(), ready.end());
      push_evict.insert(push_evict.end(), evict.begin(), evict.end());
    }
    Wake();
  }
};

Message AuditServer::Impl::HandleRequest(const Message& request,
                                         uint64_t conn_id,
                                         const std::string& peer) {
  switch (request.type) {
    case MessageType::kHealthRequest: {
      // The payload is ignored (load generators pad it to probe frame
      // sizes); a response proves loop + handler pool are alive. With a
      // durable store attached the response carries its vitals so a
      // probe can see recovery results and a wedged store without
      // parsing the full metrics JSON.
      io::DurableStore* store = options.durable_store;
      std::string payload;
      if (store == nullptr) {
        payload = "ok";
      } else {
        const io::RecoveryInfo& recovery = store->recovery();
        payload =
            std::string(store->broken() ? "wedged" : "ok") +
            "|durable|wal_records=" +
            std::to_string(store->wal_records()) +
            "|wal_bytes=" + std::to_string(store->wal_bytes()) +
            "|recovered_records=" +
            std::to_string(recovery.recovered_records) +
            "|torn_tail_dropped=" +
            std::to_string(recovery.torn_tail_dropped) +
            "|last_checkpoint_seq=" +
            std::to_string(store->last_checkpoint_seq());
      }
      // Appended only when replication is configured, so probes of a
      // standalone node keep their exact historical payload.
      if (ReplicationOn()) payload += ReplicationHealthSuffix();
      return MakeOk(payload);
    }
    case MessageType::kMetricsRequest:
      return MakeOk(CombinedMetricsJson());
    case MessageType::kAuditRequest:
      return HandleAudit(request, /*static_only=*/false);
    case MessageType::kAuditStaticRequest:
      return HandleAudit(request, /*static_only=*/true);
    case MessageType::kScreenLibraryRequest:
      return HandleScreenLibrary(request);
    case MessageType::kExecuteQueryRequest:
      return HandleExecuteQuery(request, peer);
    case MessageType::kLoadDumpRequest:
      return HandleLoadDump(request);
    case MessageType::kSubscribeRequest:
      return HandleSubscribe(request, conn_id);
    case MessageType::kUnsubscribeRequest:
      return HandleUnsubscribe(request, conn_id);
    case MessageType::kReplicateRequest:
      return HandleReplicate(request, conn_id);
    case MessageType::kPromoteRequest:
      return HandlePromote(request);
    default:
      return MakeErrorMessage(
          Status::InvalidArgument("not a request frame"));
  }
}

Message AuditServer::Impl::HandleAudit(const Message& request,
                                       bool static_only) {
  auto fields = DecodeFields(request.payload);
  if (!fields.ok()) return MakeErrorMessage(fields.status());
  int64_t now_micros = 0;
  if (fields->size() != 2 || !ParseInt64Field((*fields)[1], &now_micros)) {
    return MakeErrorMessage(Status::InvalidArgument(
        "audit request wants fields: expression|now_micros"));
  }
  audit::AuditOptions options;
  options.static_only = static_only;
  // Pin under a brief shared lock (so the capture is atomic against a
  // concurrent dump load), then audit with no lock held at all: the run
  // reads only the pinned immutable table versions and the wait-free
  // log/backlog prefixes, so a long audit never blocks the execute
  // path's writer section.
  audit::AuditPin pin;
  {
    std::shared_lock<std::shared_mutex> lock(state_mutex);
    pin = service->Pin();
  }
  auto report =
      service->AuditPinned((*fields)[0], Timestamp(now_micros), pin, options);
  if (!report.ok()) return MakeErrorMessage(report.status());
  return MakeOk(EncodeFields(
      {report->CanonicalString(), report->DetailedReport(*log)}));
}

Message AuditServer::Impl::HandleScreenLibrary(const Message& request) {
  auto fields = DecodeFields(request.payload);
  if (!fields.ok()) return MakeErrorMessage(fields.status());
  int64_t now_micros = 0;
  if (fields->size() < 2 || !ParseInt64Field((*fields)[0], &now_micros)) {
    return MakeErrorMessage(Status::InvalidArgument(
        "screen request wants fields: now_micros|expr[|expr...]"));
  }
  // Same discipline as HandleAudit: lock only the pin capture; the whole
  // library screens one consistent cut (the pinned view's catalog
  // included) with no lock held.
  audit::AuditPin pin;
  {
    std::shared_lock<std::shared_mutex> lock(state_mutex);
    pin = service->Pin();
  }
  audit::ExpressionLibrary library(&pin.db.catalog());
  for (size_t i = 1; i < fields->size(); ++i) {
    auto expr = audit::ParseAudit((*fields)[i], Timestamp(now_micros));
    if (!expr.ok()) return MakeErrorMessage(expr.status());
    auto added = library.Add(*expr);
    if (!added.ok()) return MakeErrorMessage(added.status());
    // Expressions subsumed by an existing member simply don't add a new
    // member; their coverage is implied by the subsuming screening.
  }
  auto screenings = service->ScreenLibraryPinned(library, pin);
  std::vector<std::string> out;
  out.reserve(screenings.size() * 4);
  for (const auto& screening : screenings) {
    out.push_back(std::to_string(screening.expression_id));
    out.push_back(StatusCodeName(screening.status.code()));
    out.push_back(screening.status.message());
    out.push_back(screening.status.ok()
                      ? screening.report.CanonicalString()
                      : std::string());
  }
  return MakeOk(EncodeFields(out));
}

Message AuditServer::Impl::HandleExecuteQuery(const Message& request,
                                              const std::string& peer) {
  // A replica's log is the primary's log: local writes would fork it.
  if (is_replica.load()) return RejectNotPrimary();
  auto fields = DecodeFields(request.payload);
  if (!fields.ok()) return MakeErrorMessage(fields.status());
  int64_t now_micros = 0;
  if (fields->size() != 5 || !ParseInt64Field((*fields)[4], &now_micros)) {
    return MakeErrorMessage(Status::InvalidArgument(
        "execute request wants fields: sql|user|role|purpose|now_micros"));
  }
  policy::PolicyEngine* engine = options.policy;
  auto make_ctx = [&](bool execute_failed) {
    policy::QueryContext ctx;
    ctx.sql = (*fields)[0];
    ctx.user = (*fields)[1];
    ctx.role = (*fields)[2];
    ctx.purpose = (*fields)[3];
    ctx.timestamp = Timestamp(now_micros);
    ctx.remote = peer;
    ctx.query_class = policy::ClassifySql(ctx.sql, execute_failed);
    // Matching only needs table names when a rule constrains on them;
    // otherwise the extra lex is deferred to matched-and-emitted
    // queries (fill_tables), keeping the 0%-hit path cheap.
    if (engine->NeedsTables()) {
      ctx.tables = policy::ExtractTables(ctx.sql);
    }
    return ctx;
  };
  auto fill_tables = [](const policy::PolicyEngine::Decision& decision,
                        policy::QueryContext* ctx) {
    if (decision.matched && decision.detail != policy::AuditDetail::kNone &&
        ctx->tables.empty()) {
      ctx->tables = policy::ExtractTables(ctx->sql);
    }
  };
  // Execute against a pinned snapshot with no writer lock held — the
  // expensive part of the handler (parse + execute) runs concurrently
  // with other executes and with audits. The brief shared lock only
  // makes the pin atomic against a concurrent dump load.
  DatabaseView exec_view;
  {
    std::shared_lock<std::shared_mutex> read_lock(state_mutex);
    exec_view = db->Snapshot();
  }
  auto result = ExecuteSql((*fields)[0], exec_view);
  if (!result.ok()) {
    // Rejected statements still face the policy (pgaudit's ERROR
    // class); they are never logged, so the record carries log_id 0.
    // The policy engine is internally synchronized — no state lock.
    if (engine != nullptr) {
      policy::QueryContext ctx = make_ctx(/*execute_failed=*/true);
      auto decision = engine->Decide(ctx);
      fill_tables(decision, &ctx);
      Status emitted = engine->Emit(decision, ctx, /*log_id=*/0,
                                    "error: " + result.status().message());
      (void)emitted;  // sink failures are counted, never fail the reply
    }
    return MakeErrorMessage(result.status());
  }
  // The log append is not idempotent, so an oversized response must be
  // refused *before* it — otherwise the client can never read the
  // appended entry's id. The id is digits-only (escaping is identity),
  // so `prefix` plus a separator and a worst-case int64 rendering
  // bounds the final payload.
  std::string prefix = EncodeFields(
      {result->ToString(), std::to_string(result->rows.size())});
  constexpr size_t kMaxInt64Digits = 19;
  if (options.max_response_bytes > 0 &&
      1 + prefix.size() + 1 + kMaxInt64Digits > options.max_response_bytes) {
    return MakeErrorMessage(Status::OutOfRange(
        "rendered query result would exceed max_response_bytes " +
        std::to_string(options.max_response_bytes) +
        "; query not logged"));
  }
  // The writer critical section starts here and covers only the commit:
  // WAL append (reads log->next_id()), in-memory log append, checkpoint
  // cadence, and the observe/publish fan-out that must see exactly the
  // log state this query committed. Execution stayed outside it.
  std::unique_lock<std::shared_mutex> lock(state_mutex);
  // WAL-append *before* the in-memory append and the ack: an error
  // response means nothing was committed anywhere; an OK means the
  // entry is in memory and (under fsync=always) survives kill -9. A
  // recovered-but-never-acked tail record is harmless — the durability
  // contract is acked ⊆ recovered.
  LoggedQuery entry;
  entry.id = log->next_id();
  entry.sql = (*fields)[0];
  entry.timestamp = Timestamp(now_micros);
  entry.user = (*fields)[1];
  entry.role = (*fields)[2];
  entry.purpose = (*fields)[3];
  if (options.durable_store != nullptr) {
    Status appended = options.durable_store->AppendQuery(entry);
    if (!appended.ok()) return MakeErrorMessage(appended);
  }
  // Consult the policy before logging/observing: the decision pins a
  // config snapshot, so a concurrent SIGHUP reload cannot change the
  // rule (or its redaction set) out from under this query.
  policy::PolicyEngine::Decision decision;
  policy::QueryContext ctx;
  if (engine != nullptr) {
    ctx = make_ctx(/*execute_failed=*/false);
    decision = engine->Decide(ctx);
  }
  int64_t id = log->Append((*fields)[0], Timestamp(now_micros),
                           (*fields)[1], (*fields)[2], (*fields)[3]);
  MaybeCheckpoint();
  // Ship the committed record to followers while still inside the
  // writer section: ship order equals commit order, and a follower
  // registering concurrently builds its catch-up backlog under this
  // same lock, so it sees each record exactly once.
  bool shipped = false;
  if (hub.follower_count() > 0) {
    Message event{MessageType::kReplicateEvent,
                  EncodeReplicateWal(querylog::EncodeWalRecord(
                      querylog::WalRecordType::kQuery,
                      querylog::EncodeQueryWalPayload(entry))),
                  WireVersion::kV2};
    QueueShip(id, EncodeFrame(event));
    shipped = true;
  }
  // Screen the freshly logged query against the standing expressions
  // and fan state changes out as pushes (the OnlineAuditor listener
  // publishes; the loop delivers). Skipped entirely when nobody is
  // subscribed — unless a full-audit policy rule asks for the
  // observation — so the no-subscriber fast path is unchanged. An
  // observe failure (e.g. a candidacy check against an unknown table)
  // must not fail the already-committed append — it is counted and the
  // query simply does not advance any screening.
  bool full_audit = decision.matched &&
                    decision.detail == policy::AuditDetail::kFullAudit;
  std::vector<audit::OnlineAuditor::Screening> screenings;
  bool observed_ok = false;
  if (subscriptions.active() > 0 || (full_audit && online->size() > 0)) {
    GcOrphans();
    auto observed = online->Observe(entry, service->pool());
    if (!observed.ok()) {
      metrics->counter("net.push_observe_errors")->Increment();
    } else {
      screenings = std::move(*observed);
      observed_ok = true;
    }
  }
  if (engine != nullptr) {
    fill_tables(decision, &ctx);
    Status emitted = engine->Emit(
        decision, ctx, id, PolicyNote(decision, ctx, screenings,
                                      observed_ok));
    (void)emitted;  // counted in policy.sink_errors
  }
  // The ack wait happens with the writer lock released — followers
  // apply and ack concurrently with the next writes, and a slow quorum
  // only delays this one response, not the whole commit path.
  lock.unlock();
  if (shipped && options.repl_ack != ReplAckPolicy::kNone) {
    Status acked =
        hub.WaitForAcks(id, options.repl_ack, options.repl_ack_timeout);
    // The write is committed locally either way; a timeout surfaces
    // the under-replication instead of silently narrowing durability.
    if (!acked.ok()) return MakeErrorMessage(acked);
  }
  return MakeOk(prefix + '|' + std::to_string(id));
}

/// Detail-level payload for a policy sink record: the statically
/// accessed columns (static-screen and up) and the standing-expression
/// screening summary (full-audit). Caller holds the writer lock.
std::string AuditServer::Impl::PolicyNote(
    const policy::PolicyEngine::Decision& decision,
    const policy::QueryContext& ctx,
    const std::vector<audit::OnlineAuditor::Screening>& screenings,
    bool observed_ok) {
  if (!decision.matched ||
      decision.detail < policy::AuditDetail::kStaticScreen) {
    return "";
  }
  std::string note;
  auto stmt = sql::ParseSelect(ctx.sql);
  if (!stmt.ok()) {
    note = "static-error: " + stmt.status().message();
  } else {
    auto cols = audit::StaticAccessedColumns(*stmt, db->catalog(),
                                             /*outputs_only=*/false);
    if (!cols.ok()) {
      note = "static-error: " + cols.status().message();
    } else {
      std::string joined;
      for (const auto& col : *cols) {
        if (!joined.empty()) joined += ",";
        joined += col.ToString();
      }
      note = "cols=" + joined;
    }
  }
  if (decision.detail == policy::AuditDetail::kFullAudit) {
    if (observed_ok) {
      size_t fired = 0;
      for (const auto& screening : screenings) {
        if (screening.fired) ++fired;
      }
      note += " standing=" + std::to_string(screenings.size()) +
              " fired=" + std::to_string(fired);
    } else {
      note += " standing=none";
    }
  }
  return note;
}

Message AuditServer::Impl::HandleSubscribe(const Message& request,
                                           uint64_t conn_id) {
  if (request.version != WireVersion::kV2) {
    return MakeErrorMessage(Status::InvalidArgument(
        "subscriptions require protocol ADB2 (this connection speaks "
        "ADB1)"));
  }
  auto fields = DecodeFields(request.payload);
  if (!fields.ok()) return MakeErrorMessage(fields.status());
  int64_t now_micros = 0;
  if (fields->size() != 3 || !ParseInt64Field((*fields)[2], &now_micros)) {
    return MakeErrorMessage(Status::InvalidArgument(
        "subscribe request wants fields: expr-or-id|value|now_micros"));
  }
  std::unique_lock<std::shared_mutex> lock(state_mutex);
  GcOrphans();
  int online_id = 0;
  bool created = false;
  if ((*fields)[0] == "id") {
    int64_t id = 0;
    if (!ParseInt64Field((*fields)[1], &id) ||
        standing.count(static_cast<int>(id)) == 0) {
      return MakeErrorMessage(Status::NotFound(
          "no standing expression with id " + (*fields)[1] +
          "; subscribe by inline source to register one"));
    }
    online_id = static_cast<int>(id);
  } else if ((*fields)[0] == "expr") {
    auto expr = audit::ParseAudit((*fields)[1], Timestamp(now_micros));
    if (!expr.ok()) return MakeErrorMessage(expr.status());
    audit::AuditExpression qualified = expr->Clone();
    Status status = qualified.Qualify(db->catalog());
    if (!status.ok()) return MakeErrorMessage(status);
    std::string key = qualified.ToString();
    auto existing = standing_by_key.find(key);
    if (existing != standing_by_key.end()) {
      online_id = existing->second;
    } else {
      auto added = online->AddExpression(*expr);
      if (!added.ok()) return MakeErrorMessage(added.status());
      online_id = *added;
      created = true;
      StandingExpr se;
      se.expr = std::move(qualified);
      se.key = key;
      // Seed the change detector with the fresh expression's state so
      // the first contributing query publishes a transition, not the
      // baseline.
      for (const auto& current : online->Current()) {
        if (current.expression_id == online_id) se.last = current;
      }
      standing.emplace(online_id, std::move(se));
      standing_by_key.emplace(std::move(key), online_id);
    }
  } else {
    return MakeErrorMessage(Status::InvalidArgument(
        "subscribe kind must be 'expr' or 'id', got: " + (*fields)[0]));
  }
  auto sub = subscriptions.Subscribe(conn_id, online_id);
  if (!sub.ok()) {
    // Roll a just-created standing expression back rather than leaking
    // an expression nobody subscribes to.
    if (created) {
      standing_by_key.erase(standing[online_id].key);
      standing.erase(online_id);
      Status removed = online->RemoveExpression(online_id);
      (void)removed;
    }
    return MakeErrorMessage(sub.status());
  }
  StandingExpr& se = standing[online_id];
  ++se.refs;
  return MakeOk(EncodeFields(
      {std::to_string(*sub), std::to_string(online_id),
       FormatRankField(se.last.rank), se.last.fired ? "1" : "0"}));
}

Message AuditServer::Impl::HandleUnsubscribe(const Message& request,
                                             uint64_t conn_id) {
  if (request.version != WireVersion::kV2) {
    return MakeErrorMessage(Status::InvalidArgument(
        "subscriptions require protocol ADB2 (this connection speaks "
        "ADB1)"));
  }
  auto fields = DecodeFields(request.payload);
  if (!fields.ok()) return MakeErrorMessage(fields.status());
  int64_t sub_id = 0;
  if (fields->size() != 1 || !ParseInt64Field((*fields)[0], &sub_id)) {
    return MakeErrorMessage(Status::InvalidArgument(
        "unsubscribe request wants fields: subscription_id"));
  }
  std::unique_lock<std::shared_mutex> lock(state_mutex);
  GcOrphans();
  auto released = subscriptions.Unsubscribe(conn_id, sub_id);
  if (!released.ok()) return MakeErrorMessage(released.status());
  ReleaseStanding(*released);
  return MakeOk("ok");
}

Message AuditServer::Impl::HandleLoadDump(const Message& request) {
  // Dump loads mutate replicated state; only the primary takes them.
  if (is_replica.load()) return RejectNotPrimary();
  auto fields = DecodeFields(request.payload);
  if (!fields.ok()) return MakeErrorMessage(fields.status());
  int64_t now_micros = 0;
  if (fields->size() != 3 || !ParseInt64Field((*fields)[2], &now_micros)) {
    return MakeErrorMessage(Status::InvalidArgument(
        "load request wants fields: db-or-log|dump-text|now_micros"));
  }
  std::unique_lock<std::shared_mutex> lock(state_mutex);
  std::istringstream in((*fields)[1]);
  Status loaded;
  if ((*fields)[0] == "db") {
    loaded = io::ReadDatabaseDump(in, db, Timestamp(now_micros));
  } else if ((*fields)[0] == "log") {
    loaded = io::ReadQueryLogDump(in, log);
  } else {
    return MakeErrorMessage(Status::InvalidArgument(
        "load kind must be 'db' or 'log', got: " + (*fields)[0]));
  }
  if (!loaded.ok()) return MakeErrorMessage(loaded);
  // A dump load mutates state the WAL does not cover, so it must be
  // made durable by a snapshot right away or a crash silently undoes
  // it. The load already applied in memory; surface a checkpoint
  // failure instead of acking durability we don't have.
  if (options.durable_store != nullptr) {
    Status persisted = options.durable_store->Checkpoint(*db, *log);
    if (!persisted.ok()) {
      return MakeErrorMessage(Status::Internal(
          "dump loaded in memory but checkpointing it failed: " +
          persisted.message()));
    }
  }
  // Every dump load opens a new replication generation: connected
  // followers get the delta (stamped with this load's timestamp so
  // restored rows agree byte-for-byte); a follower that missed it can
  // no longer catch up from the query stream alone and re-handshakes
  // into a bootstrap.
  uint64_t gen = load_generation.fetch_add(1) + 1;
  PersistReplGeneration(gen);
  if (hub.follower_count() > 0) {
    Message event{MessageType::kReplicateEvent,
                  EncodeReplicateLoad((*fields)[0], (*fields)[1], gen,
                                      now_micros),
                  WireVersion::kV2};
    QueueShip(0, EncodeFrame(event));
  }
  return MakeOk("ok");
}

Message AuditServer::Impl::HandleReplicate(const Message& request,
                                           uint64_t conn_id) {
  if (request.version != WireVersion::kV2) {
    return MakeErrorMessage(Status::InvalidArgument(
        "replication requires protocol ADB2 (this connection speaks "
        "ADB1)"));
  }
  // No chaining: a replica redirects would-be followers upstream.
  if (is_replica.load()) return RejectNotPrimary();
  auto handshake = DecodeReplicateHandshake(request.payload);
  if (!handshake.ok()) return MakeErrorMessage(handshake.status());
  // The backlog is built under the writer lock so it composes exactly
  // with the live Ship stream: everything committed before this point
  // is in the backlog, everything after arrives as a shipped frame.
  std::unique_lock<std::shared_mutex> lock(state_mutex);
  const int64_t size = static_cast<int64_t>(log->size());
  const uint64_t gen = load_generation.load();
  std::vector<std::string> backlog_frames;
  int64_t acked_from = handshake->applied_log_id;
  if (!handshake->have_state) {
    // Empty replica: bootstrap with a full checkpoint manifest. It is
    // registered as acked-through-0 — quorum cannot count it until it
    // durably applies and acks for itself.
    std::ostringstream db_out;
    std::ostringstream log_out;
    Status wrote = io::WriteDatabaseDump(*db, db_out);
    if (wrote.ok()) wrote = io::WriteQueryLogDump(*log, log_out);
    if (!wrote.ok()) return MakeErrorMessage(wrote);
    Message event{MessageType::kReplicateEvent,
                  EncodeReplicateCheckpoint(
                      db_out.str(), log_out.str(), gen,
                      options.bootstrap_stamp_micros),
                  WireVersion::kV2};
    backlog_frames.push_back(EncodeFrame(event));
    acked_from = 0;
  } else if (handshake->load_generation != gen ||
             handshake->applied_log_id > size) {
    // A non-empty follower whose history diverged — it missed a
    // LoadDump generation, or applied past this primary's log (an old
    // primary rejoining after failover). Incremental catch-up would
    // skip state and a bootstrap would double-apply onto what it has;
    // the operator restarts it with a fresh data dir.
    return MakeErrorMessage(Status::InvalidArgument(
        "replica state diverged: generation " +
        std::to_string(handshake->load_generation) + " vs " +
        std::to_string(gen) + ", applied " +
        std::to_string(handshake->applied_log_id) + " vs log size " +
        std::to_string(size) + "; wipe the replica's data dir"));
  } else {
    for (int64_t id = handshake->applied_log_id + 1; id <= size; ++id) {
      const LoggedQuery& entry = log->Entry(static_cast<size_t>(id - 1));
      Message event{MessageType::kReplicateEvent,
                    EncodeReplicateWal(querylog::EncodeWalRecord(
                        querylog::WalRecordType::kQuery,
                        querylog::EncodeQueryWalPayload(entry))),
                    WireVersion::kV2};
      backlog_frames.push_back(EncodeFrame(event));
    }
  }
  hub.RegisterFollower(conn_id, acked_from, std::move(backlog_frames));
  // Kick the loop so it starts flushing the parked backlog.
  {
    std::lock_guard<std::mutex> push_lock(push_mutex);
    push_ready.push_back(conn_id);
  }
  Wake();
  return MakeOk(EncodeFields(
      {advertise, std::to_string(size), std::to_string(gen)}));
}

Message AuditServer::Impl::HandlePromote(const Message& request) {
  auto fields = DecodeFields(request.payload);
  if (!fields.ok()) return MakeErrorMessage(fields.status());
  if (fields->size() == 1 && (*fields)[0] == "primary") {
    // Idempotent by design: a supervisor that lost the response can
    // retry, and promoting a primary is a no-op.
    std::unique_ptr<ReplicaSession> stopped;
    {
      std::lock_guard<std::mutex> repl_lock(repl_mutex);
      stopped = std::move(replica);
    }
    // Join the session thread with no lock held: its apply callbacks
    // take the writer side of state_mutex, so stopping it under any
    // server lock could deadlock against an in-flight apply.
    if (stopped != nullptr) stopped->Stop();
    is_replica.store(false);
    return MakeOk("primary");
  }
  if (fields->size() == 2 && (*fields)[0] == "follow") {
    auto endpoint = ParseHostPort((*fields)[1]);
    if (!endpoint.ok()) return MakeErrorMessage(endpoint.status());
    std::lock_guard<std::mutex> repl_lock(repl_mutex);
    if (!is_replica.load() || replica == nullptr) {
      return MakeErrorMessage(Status::InvalidArgument(
          "cannot demote a primary to a replica in place; restart it "
          "with --replicate-from"));
    }
    replica->Repoint((*fields)[1]);
    return MakeOk("following " + (*fields)[1]);
  }
  return MakeErrorMessage(Status::InvalidArgument(
      "promote request wants fields: primary | follow|host:port"));
}

AuditServer::AuditServer(service::AuditService* service, Database* db,
                         Backlog* backlog, QueryLog* log,
                         AuditServerOptions options)
    : host_(options.host) {
  impl_ = std::make_unique<Impl>(service, db, backlog, log,
                                 std::move(options), &metrics_);
}

AuditServer::~AuditServer() { Shutdown(); }

bool AuditServer::running() const { return impl_->running.load(); }

bool AuditServer::is_replica() const { return impl_->is_replica.load(); }

std::string AuditServer::replication_upstream() const {
  std::lock_guard<std::mutex> lock(impl_->repl_mutex);
  return impl_->replica != nullptr ? impl_->replica->upstream()
                                   : std::string();
}

size_t AuditServer::follower_count() const {
  return impl_->hub.follower_count();
}

int64_t AuditServer::applied_log_id() const {
  return impl_->AppliedLogId();
}

std::string AuditServer::MetricsJson() const {
  return impl_->CombinedMetricsJson();
}

Status AuditServer::Start() {
  if (started_) {
    return Status::AlreadyExists("server already started");
  }
  started_ = true;
  Impl& impl = *impl_;
  impl.listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK |
                                         SOCK_CLOEXEC,
                            0);
  if (impl.listen_fd < 0) {
    return Status::Internal(std::string("socket: ") + strerror(errno));
  }
  int one = 1;
  ::setsockopt(impl.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(impl.options.port);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 host: " + host_);
  }
  if (::bind(impl.listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::Internal("bind " + host_ + ":" +
                            std::to_string(impl.options.port) + ": " +
                            strerror(errno));
  }
  if (::listen(impl.listen_fd, impl.options.listen_backlog) != 0) {
    return Status::Internal(std::string("listen: ") + strerror(errno));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(impl.listen_fd, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    return Status::Internal(std::string("getsockname: ") +
                            strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  impl.epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  impl.wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (impl.epoll_fd < 0 || impl.wake_fd < 0) {
    return Status::Internal("epoll/eventfd setup failed");
  }
  epoll_event listen_event{};
  listen_event.data.fd = impl.listen_fd;
  listen_event.events = EPOLLIN;
  epoll_event wake_event{};
  wake_event.data.fd = impl.wake_fd;
  wake_event.events = EPOLLIN;
  if (::epoll_ctl(impl.epoll_fd, EPOLL_CTL_ADD, impl.listen_fd,
                  &listen_event) != 0 ||
      ::epoll_ctl(impl.epoll_fd, EPOLL_CTL_ADD, impl.wake_fd,
                  &wake_event) != 0) {
    return Status::Internal(std::string("epoll_ctl: ") + strerror(errno));
  }
  impl.advertise = impl.options.advertise_address.empty()
                       ? host_ + ":" + std::to_string(port_)
                       : impl.options.advertise_address;
  impl.stop_requested.store(false);
  impl.draining = false;
  impl.running.store(true);
  loop_ = std::thread(&AuditServer::LoopThread, this);
  // The streaming session starts after the loop so a replica already
  // answers reads (and NOT_PRIMARY redirects) while it catches up.
  if (!impl.options.replicate_from.empty()) impl.StartReplica();
  return Status::Ok();
}

void AuditServer::LoopThread() {
  Impl& impl = *impl_;
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (true) {
    int n = ::epoll_wait(impl.epoll_fd, events, kMaxEvents,
                         /*timeout_ms=*/50);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      uint32_t ev = events[i].events;
      if (fd == impl.wake_fd) {
        impl.DrainWake();
        continue;
      }
      if (fd == impl.listen_fd) {
        if (!impl.draining) impl.AcceptAll();
        continue;
      }
      if (ev & (EPOLLERR | EPOLLHUP)) {
        impl.CloseConn(fd);
        continue;
      }
      if (ev & EPOLLIN) {
        if (!impl.ReadConn(fd)) continue;
      }
      if (ev & EPOLLOUT) {
        auto it = impl.conns.find(fd);
        if (it != impl.conns.end()) impl.FlushConn(it->second.get());
      }
    }
    impl.DeliverCompletions();
    impl.DeliverPushes();
    impl.PumpStalled();
    impl.SweepTimeouts();
    if (impl.stop_requested.load() && !impl.draining) impl.BeginDrain();
    if (impl.draining && impl.DrainComplete()) break;
  }
  impl.CloseAll();
  impl.running.store(false);
}

void AuditServer::Shutdown() {
  // Stop the replica stream first so no apply races the drain; the
  // session is joined with no server lock held.
  std::unique_ptr<ReplicaSession> session;
  {
    std::lock_guard<std::mutex> lock(impl_->repl_mutex);
    session = std::move(impl_->replica);
  }
  if (session != nullptr) session->Stop();
  if (loop_.joinable()) {
    impl_->stop_requested.store(true);
    impl_->Wake();
    loop_.join();
  }
  impl_->handlers->Shutdown();
}

}  // namespace net
}  // namespace auditdb
