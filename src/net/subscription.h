#ifndef AUDITDB_NET_SUBSCRIPTION_H_
#define AUDITDB_NET_SUBSCRIPTION_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/net/wire.h"
#include "src/service/metrics.h"

namespace auditdb {
namespace net {

/// Server-push verdict subscriptions (protocol v2, docs/wire_protocol.md).
///
/// A subscription binds one connection to one standing audit expression
/// registered with the server's OnlineAuditor. Every observed query that
/// changes the expression's suspicion state generates a PushEvent; events
/// park in a bounded per-subscription queue until the connection's socket
/// can take them, and the queue's overflow behaviour is the backpressure
/// policy: drop the oldest events (summarized to the client as a GAP
/// frame so losses are never silent) or evict the slow consumer.

/// What the server does when a subscriber's push queue overflows.
enum class SlowSubscriberPolicy {
  /// Drop the oldest queued events and deliver a GAP frame covering the
  /// dropped sequence range before the surviving events.
  kDropOldest,
  /// Disconnect the subscriber (the PR 2 slow-client treatment); a
  /// consumer that cannot keep up loses the connection, not data
  /// integrity.
  kEvict,
};

const char* SlowSubscriberPolicyName(SlowSubscriberPolicy policy);
/// Parses "drop" / "evict" (the --slow-subscriber-policy flag values).
Result<SlowSubscriberPolicy> ParseSlowSubscriberPolicy(
    const std::string& name);

enum class PushKind {
  /// The expression's screening rank changed without firing.
  kProgress,
  /// The expression fired on this query; `verdict` carries the full
  /// canonical audit report (byte-identical to a poll of the same
  /// expression over the same log range).
  kAlert,
  /// `dropped` events starting at sequence `seq` were shed under
  /// kDropOldest; the subscriber saw every sequence number either as an
  /// event or inside a gap.
  kGap,
};

const char* PushKindName(PushKind kind);
Result<PushKind> ParsePushKind(const std::string& name);

/// One server-initiated PUSH frame body (MessageType::kPushEvent).
struct PushEvent {
  int64_t subscription_id = 0;
  /// Per-subscription sequence number, 1-based, assigned at generation
  /// time (before any queueing), so the client can detect loss. For
  /// kGap this is the first dropped sequence number.
  uint64_t seq = 0;
  PushKind kind = PushKind::kProgress;
  /// Log id of the query that triggered the event (0 for kGap).
  int64_t log_id = 0;
  /// The server-side standing-expression id the subscription names.
  int expression_id = 0;
  double rank = 0.0;
  bool fired = false;
  /// kGap only: number of consecutive dropped events starting at seq.
  uint64_t dropped = 0;
  /// kAlert only: AuditReport::CanonicalString() of the fired audit.
  std::string verdict;
};

std::string EncodePushPayload(const PushEvent& event);
Result<PushEvent> DecodePushPayload(const std::string& payload);

struct SubscriptionLimits {
  /// Server-wide cap on concurrently active subscriptions.
  size_t max_subscriptions = 1024;
  /// Bounded per-subscription outbound queue depth.
  size_t push_queue_depth = 64;
  SlowSubscriberPolicy slow_subscriber_policy =
      SlowSubscriberPolicy::kDropOldest;
};

/// What one Publish call asks the event loop to do. Conn ids may repeat
/// across calls; both lists are idempotent to act on.
struct PublishOutcome {
  /// Connections that now have parked events to flush.
  std::vector<uint64_t> ready_conns;
  /// Connections flagged for eviction under kEvict.
  std::vector<uint64_t> evict_conns;
};

/// Thread-safe subscription table + per-subscription bounded push
/// queues. Handlers publish from worker threads; the epoll loop drains
/// encoded frames; either side may add or remove subscriptions. All
/// state is guarded by one mutex — operations are short and the table
/// is small, so contention is not a concern at auditd's scale.
class SubscriptionRegistry {
 public:
  explicit SubscriptionRegistry(SubscriptionLimits limits = {});

  /// Registers conn_id for events on expression_id; returns the new
  /// subscription id. ResourceExhausted at max_subscriptions.
  Result<int64_t> Subscribe(uint64_t conn_id, int expression_id);

  /// Removes one subscription (must be owned by conn_id; NotFound
  /// otherwise). Returns the expression id it named so the caller can
  /// release the standing expression.
  Result<int> Unsubscribe(uint64_t conn_id, int64_t subscription_id);

  /// Drops every subscription of a closing connection, discarding its
  /// parked events. Returns the expression id of each dropped
  /// subscription (with multiplicity) for standing-expression release.
  std::vector<int> DropConnection(uint64_t conn_id);

  /// Fans one observation out to every subscription on expression_id:
  /// assigns sequence numbers, queues events, and applies the overflow
  /// policy. `verdict` is only attached to kAlert events.
  PublishOutcome Publish(int expression_id, PushKind kind, int64_t log_id,
                         double rank, bool fired, const std::string& verdict);

  /// Encodes parked frames for conn_id (any pending GAP summary first,
  /// then queued events in sequence order) into *out until the conn has
  /// nothing parked or at least max_bytes were appended. Returns the
  /// number of frames appended.
  size_t DrainFrames(uint64_t conn_id, size_t max_bytes, std::string* out);

  bool HasSubscriptions(uint64_t conn_id) const;
  bool HasPending(uint64_t conn_id) const;
  /// Parked events + pending gap summaries across all connections; the
  /// graceful-drain gate.
  size_t TotalPending() const;

  /// Active subscription count; lock-free so ExecuteQuery can skip the
  /// whole observe pipeline when nobody is listening.
  size_t active() const {
    return active_.load(std::memory_order_relaxed);
  }

  const SubscriptionLimits& limits() const { return limits_; }

  /// The metrics JSON "push" section:
  /// {"subscriptions_active","pushes_sent","pushes_dropped",
  ///  "gap_frames_sent","slow_subscribers_evicted","queue_depth_peak",
  ///  "pending_events"}.
  std::string MetricsJson() const;

 private:
  struct Subscription {
    int64_t id = 0;
    uint64_t conn_id = 0;
    int expression_id = 0;
    uint64_t next_seq = 1;
    /// Parked events, oldest first, size-bounded by push_queue_depth.
    std::deque<PushEvent> queue;
    /// Coalesced leading gap: events [gap_first, gap_first+gap_count)
    /// were dropped and not yet reported. Always older than everything
    /// in `queue` (drops take the queue front).
    uint64_t gap_first = 0;
    uint64_t gap_count = 0;
  };

  size_t PendingLocked(const Subscription& sub) const {
    return sub.queue.size() + (sub.gap_count > 0 ? 1 : 0);
  }

  SubscriptionLimits limits_;
  mutable std::mutex mutex_;
  std::map<int64_t, Subscription> subs_;
  std::map<uint64_t, std::set<int64_t>> by_conn_;
  /// Subscriptions indexed by expression for Publish fan-out.
  std::map<int, std::set<int64_t>> by_expr_;
  /// Connections already flagged for eviction (so the evicted counter
  /// bumps once per connection, not once per overflow).
  std::set<uint64_t> evict_flagged_;
  int64_t next_sub_id_ = 1;
  std::atomic<size_t> active_{0};

  service::Counter pushes_sent_;
  service::Counter pushes_dropped_;
  service::Counter gap_frames_sent_;
  service::Counter evicted_;
  service::Gauge queue_depth_;
};

}  // namespace net
}  // namespace auditdb

#endif  // AUDITDB_NET_SUBSCRIPTION_H_
