#include "src/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <random>
#include <thread>

#include "src/net/replication.h"

namespace auditdb {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

/// Receiver poll granularity: bounds both Close()-join latency and the
/// dispatch delay for pushes parked while a Subscribe was in flight.
constexpr int kReceiverPollMillis = 50;

/// Cap on pushes parked before the receiver starts (or while a
/// Subscribe is in flight). The server's own per-subscriber queue bound
/// keeps legitimate traffic far below this; crossing it means a
/// misbehaving peer.
constexpr size_t kMaxStashedPushes = 1u << 16;

int RemainingMillis(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > 60 * 60 * 1000) return 60 * 60 * 1000;
  return static_cast<int>(left.count());
}

/// Waits for `events` readiness until the deadline. OK, or
/// DeadlineExceeded / Internal.
Status Await(int fd, short events, Clock::time_point deadline) {
  while (true) {
    int timeout = RemainingMillis(deadline);
    if (timeout <= 0) {
      return Status::DeadlineExceeded("request deadline expired");
    }
    pollfd pfd{fd, events, 0};
    int n = ::poll(&pfd, 1, timeout);
    if (n > 0) {
      if (pfd.revents & (POLLERR | POLLNVAL)) {
        return Status::Internal("socket error");
      }
      return Status::Ok();
    }
    if (n == 0) {
      return Status::DeadlineExceeded("request deadline expired");
    }
    if (errno != EINTR) {
      return Status::Internal(std::string("poll: ") + strerror(errno));
    }
  }
}

}  // namespace

AuditClient::AuditClient(std::string host, uint16_t port,
                         AuditClientOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      jitter_state_(std::random_device{}()),
      reader_(options.max_frame_bytes) {
  endpoints_.emplace_back(host_, port_);
}

AuditClient::AuditClient(std::vector<std::string> endpoints,
                         AuditClientOptions options)
    : options_(options),
      jitter_state_(std::random_device{}()),
      reader_(options.max_frame_bytes) {
  for (const auto& endpoint : endpoints) {
    auto parsed = ParseHostPort(endpoint);
    if (parsed.ok()) {
      endpoints_.push_back(std::move(*parsed));
    } else {
      // Kept so Connect() surfaces the bad address instead of silently
      // shrinking the rotation.
      endpoints_.emplace_back(endpoint, 0);
    }
  }
  if (endpoints_.empty()) endpoints_.emplace_back("", 0);
  ActivateEndpoint(0);
}

void AuditClient::ActivateEndpoint(size_t index) {
  active_endpoint_ = index % endpoints_.size();
  host_ = endpoints_[active_endpoint_].first;
  port_ = endpoints_[active_endpoint_].second;
}

void AuditClient::RotateEndpoint() {
  if (endpoints_.size() > 1) ActivateEndpoint(active_endpoint_ + 1);
}

void AuditClient::RepointTo(const std::string& address) {
  auto parsed = ParseHostPort(address);
  if (!parsed.ok()) return;
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    if (endpoints_[i] == *parsed) {
      ActivateEndpoint(i);
      return;
    }
  }
  endpoints_.push_back(std::move(*parsed));
  ActivateEndpoint(endpoints_.size() - 1);
}

std::string AuditClient::endpoint() const {
  return host_ + ":" + std::to_string(port_);
}

std::vector<std::string> AuditClient::endpoints() const {
  std::vector<std::string> out;
  out.reserve(endpoints_.size());
  for (const auto& entry : endpoints_) {
    out.push_back(entry.first + ":" + std::to_string(entry.second));
  }
  return out;
}

AuditClient::~AuditClient() { Close(); }

void AuditClient::Close() {
  StopReceiver();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(stream_mutex_);
    handlers_.clear();
    stash_.clear();
    stream_ok_ = true;
    stream_error_ = Status::Ok();
  }
  {
    std::lock_guard<std::mutex> lock(mail_mutex_);
    mail_.reset();
    want_response_ = false;
  }
  subscribe_pending_.store(false);
}

Status AuditClient::Connect() {
  Close();
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                    0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + strerror(errno));
  }
  if (options_.so_rcvbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &options_.so_rcvbuf,
                 sizeof(options_.so_rcvbuf));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad IPv4 host: " + host_);
  }
  auto deadline = Clock::now() + options_.connect_timeout;
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    Status status = Status::Internal("connect " + host_ + ":" +
                                     std::to_string(port_) + ": " +
                                     strerror(errno));
    ::close(fd);
    return status;
  }
  if (rc != 0) {
    Status ready = Await(fd, POLLOUT, deadline);
    if (!ready.ok()) {
      ::close(fd);
      return ready;
    }
    int error = 0;
    socklen_t len = sizeof(error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &len) != 0 ||
        error != 0) {
      ::close(fd);
      return Status::Internal("connect " + host_ + ":" +
                              std::to_string(port_) + ": " +
                              strerror(error != 0 ? error : errno));
    }
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  reader_ = FrameReader(options_.max_frame_bytes);
  return Status::Ok();
}

Status AuditClient::SendAll(const std::string& bytes,
                            Clock::time_point deadline) {
  size_t offset = 0;
  while (offset < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + offset, bytes.size() - offset,
                       MSG_NOSIGNAL);
    if (n > 0) {
      offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      AUDITDB_RETURN_IF_ERROR(Await(fd_, POLLOUT, deadline));
      continue;
    }
    return Status::Internal(std::string("send: ") + strerror(errno));
  }
  return Status::Ok();
}

Result<Message> AuditClient::ReadResponse(Clock::time_point deadline) {
  char buf[16384];
  while (true) {
    auto next = reader_.Next();
    if (!next.ok()) return next.status();
    if (next->has_value()) {
      Message message = std::move(**next);
      if (message.type == MessageType::kPushEvent) {
        // A server-initiated push raced ahead of the response (legal:
        // the event loop may flush a parked push before the handler's
        // reply). Park it for the receiver thread.
        AUDITDB_RETURN_IF_ERROR(StashPush(message));
        continue;
      }
      return message;
    }
    AUDITDB_RETURN_IF_ERROR(Await(fd_, POLLIN, deadline));
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      reader_.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::Internal("connection closed before response");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
      continue;
    }
    return Status::Internal(std::string("read: ") + strerror(errno));
  }
}

Result<Message> AuditClient::TryOnce(const Message& request,
                                     Status* transport_error,
                                     Clock::time_point deadline) {
  *transport_error = Status::Ok();
  Status sent = SendAll(EncodeFrame(request), deadline);
  if (!sent.ok()) {
    *transport_error = sent;
    return sent;
  }
  auto response = ReadResponse(deadline);
  if (!response.ok()) {
    *transport_error = response.status();
    return response.status();
  }
  return response;
}

Result<Message> AuditClient::RoundTrip(const Message& request) {
  if (receiver_running_.load()) {
    return StreamingRoundTrip(request);
  }
  Message versioned = request;
  versioned.version = options_.wire_version;
  const bool retryable = options_.retry_idempotent &&
                         IsIdempotentType(request.type) &&
                         options_.max_retries > 0;
  // One deadline and ONE RetryBudget cover every failure mode of this
  // round trip — refused connects, torn transports, endpoint rotation —
  // so wrapping one retry mechanism in another can never multiply the
  // configured budget (retries spend the request's time budget, they do
  // not extend it).
  const auto deadline = Clock::now() + options_.request_timeout;
  RetryBudget budget(
      BackoffOptions{options_.retry_initial_backoff,
                     options_.retry_max_backoff},
      retryable ? options_.max_retries : 0, deadline, jitter_state_);
  // NOT_PRIMARY redirects are separate from the retry budget: the
  // server rejected *before* any side effect, so following the carried
  // address is safe even for writes, sleep-free, and bounded (one hop
  // to the primary plus one more in case a promotion races it).
  int redirects_left = options_.follow_not_primary ? 2 : 0;
  while (true) {
    if (fd_ < 0) {
      Status connected = Connect();
      if (!connected.ok()) {
        // A refused/failed connect is always safe to retry (nothing was
        // sent), still bounded by max_retries and the deadline; with a
        // multi-endpoint config each retry tries the next node.
        if (retryable &&
            connected.code() != StatusCode::kDeadlineExceeded &&
            budget.SleepBeforeRetry()) {
          RotateEndpoint();
          continue;
        }
        jitter_state_ = budget.jitter_state();
        return connected;
      }
    }
    Status transport_error;
    auto response = TryOnce(versioned, &transport_error, deadline);
    if (!response.ok()) {
      Close();
      // Only transport failures on idempotent requests retry, never
      // timeouts (the server may still be working on it).
      if (retryable &&
          transport_error.code() == StatusCode::kInternal &&
          budget.SleepBeforeRetry()) {
        RotateEndpoint();
        continue;
      }
      jitter_state_ = budget.jitter_state();
      return response.status();
    }
    jitter_state_ = budget.jitter_state();
    if (response->type == MessageType::kErrorResponse) {
      // Server-side error: the connection stays healthy and the carried
      // Status (e.g. ResourceExhausted from admission control) is the
      // result.
      Status error = DecodeErrorMessage(response->payload);
      if (IsNotPrimaryStatus(error) && redirects_left > 0) {
        --redirects_left;
        Close();
        std::string primary = NotPrimaryAddress(error);
        if (!primary.empty()) {
          RepointTo(primary);
        } else {
          RotateEndpoint();
        }
        continue;
      }
      return error;
    }
    if (response->type != MessageType::kOkResponse) {
      Close();
      return Status::Internal("unexpected response frame type");
    }
    return response;
  }
}

Result<Message> AuditClient::StreamingRoundTrip(const Message& request) {
  {
    std::lock_guard<std::mutex> lock(stream_mutex_);
    if (!stream_ok_) return stream_error_;
  }
  Message versioned = request;
  versioned.version = options_.wire_version;
  const auto deadline = Clock::now() + options_.request_timeout;
  {
    std::lock_guard<std::mutex> lock(mail_mutex_);
    mail_.reset();
    want_response_ = true;
  }
  // The receiver owns reads; writes stay on the calling thread — the
  // socket is full-duplex, so the two never collide.
  Status sent = SendAll(EncodeFrame(versioned), deadline);
  if (!sent.ok()) {
    FailStream(sent);
    Close();
    return sent;
  }
  std::unique_lock<std::mutex> lock(mail_mutex_);
  mail_cv_.wait_until(lock, deadline, [&] {
    if (mail_.has_value()) return true;
    std::lock_guard<std::mutex> slock(stream_mutex_);
    return !stream_ok_;
  });
  if (!mail_.has_value()) {
    want_response_ = false;
    lock.unlock();
    Status error;
    {
      std::lock_guard<std::mutex> slock(stream_mutex_);
      error = stream_ok_
                  ? Status::DeadlineExceeded("request deadline expired")
                  : stream_error_;
    }
    // A timed-out streaming session cannot resynchronize (the response
    // may still arrive); poison it.
    FailStream(error);
    Close();
    return error;
  }
  Message response = std::move(*mail_);
  mail_.reset();
  want_response_ = false;
  lock.unlock();
  if (response.type == MessageType::kErrorResponse) {
    return DecodeErrorMessage(response.payload);
  }
  if (response.type != MessageType::kOkResponse) {
    Status error = Status::Internal("unexpected response frame type");
    FailStream(error);
    Close();
    return error;
  }
  return response;
}

Status AuditClient::StashPush(const Message& message) {
  auto event = DecodePushPayload(message.payload);
  if (!event.ok()) return event.status();
  std::lock_guard<std::mutex> lock(stream_mutex_);
  if (stash_.size() >= kMaxStashedPushes) {
    return Status::Internal("push backlog overflow");
  }
  stash_.push_back(std::move(*event));
  return Status::Ok();
}

void AuditClient::DrainStash() {
  std::vector<std::pair<PushHandler, PushEvent>> ready;
  {
    std::lock_guard<std::mutex> lock(stream_mutex_);
    if (stash_.empty()) return;
    const bool keep_unknown = subscribe_pending_.load();
    std::deque<PushEvent> kept;
    for (auto& event : stash_) {
      auto it = handlers_.find(event.subscription_id);
      if (it != handlers_.end()) {
        ready.emplace_back(it->second, std::move(event));
      } else if (keep_unknown) {
        // The SUBSCRIBE OK has not been processed yet; its pushes may
        // legally arrive first. Park until the handler registers.
        kept.push_back(std::move(event));
      }
      // else: straggler for an unsubscribed id — drop silently.
    }
    stash_.swap(kept);
  }
  for (auto& entry : ready) {
    entry.first(entry.second);
  }
}

void AuditClient::FailStream(const Status& error) {
  {
    std::lock_guard<std::mutex> lock(stream_mutex_);
    if (stream_ok_) {
      stream_ok_ = false;
      stream_error_ = error;
    }
  }
  std::lock_guard<std::mutex> lock(mail_mutex_);
  mail_cv_.notify_all();
}

void AuditClient::EnsureReceiver() {
  if (receiver_running_.load()) return;
  receiver_stop_.store(false);
  receiver_running_.store(true);
  receiver_ = std::thread([this] { ReceiverLoop(); });
}

void AuditClient::StopReceiver() {
  receiver_stop_.store(true);
  if (receiver_.joinable()) {
    receiver_.join();
  }
  receiver_running_.store(false);
}

void AuditClient::ReceiverLoop() {
  char buf[16384];
  while (!receiver_stop_.load()) {
    // Drain every frame already buffered before blocking again.
    while (true) {
      auto next = reader_.Next();
      if (!next.ok()) {
        FailStream(next.status());
        return;
      }
      if (!next->has_value()) break;
      Message message = std::move(**next);
      if (message.type == MessageType::kPushEvent) {
        Status stashed = StashPush(message);
        if (!stashed.ok()) {
          FailStream(stashed);
          return;
        }
        continue;
      }
      bool unexpected = false;
      {
        std::lock_guard<std::mutex> lock(mail_mutex_);
        if (!want_response_ || mail_.has_value()) {
          unexpected = true;
        } else {
          mail_ = std::move(message);
          mail_cv_.notify_all();
        }
      }
      if (unexpected) {
        FailStream(Status::Internal("unsolicited response frame"));
        return;
      }
    }
    DrainStash();
    if (receiver_stop_.load()) return;
    pollfd pfd{fd_, POLLIN, 0};
    int n = ::poll(&pfd, 1, kReceiverPollMillis);
    if (n < 0) {
      if (errno == EINTR) continue;
      FailStream(Status::Internal(std::string("poll: ") + strerror(errno)));
      return;
    }
    if (n == 0) continue;
    ssize_t r = ::read(fd_, buf, sizeof(buf));
    if (r > 0) {
      reader_.Feed(buf, static_cast<size_t>(r));
      continue;
    }
    if (r == 0) {
      FailStream(Status::Internal("server closed the connection"));
      return;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
      continue;
    }
    FailStream(Status::Internal(std::string("read: ") + strerror(errno)));
    return;
  }
}

Result<AuditClient::Subscription> AuditClient::Subscribe(
    const std::string& expression, Timestamp now, PushHandler handler) {
  return SubscribeInternal("expr", expression, now, std::move(handler));
}

Result<AuditClient::Subscription> AuditClient::SubscribeById(
    int expression_id, PushHandler handler) {
  return SubscribeInternal("id", std::to_string(expression_id),
                           Timestamp(), std::move(handler));
}

Result<AuditClient::Subscription> AuditClient::SubscribeInternal(
    const std::string& kind, const std::string& value, Timestamp now,
    PushHandler handler) {
  if (!handler) {
    return Status::InvalidArgument("Subscribe requires a push handler");
  }
  if (options_.wire_version != WireVersion::kV2) {
    return Status::InvalidArgument(
        "subscriptions require wire_version kV2 (ADB2)");
  }
  Message request{
      MessageType::kSubscribeRequest,
      EncodeFields({kind, value, std::to_string(now.micros())})};
  // While the round trip is in flight, pushes for the not-yet-known
  // subscription id are parked instead of dropped.
  subscribe_pending_.store(true);
  auto response = RoundTrip(request);
  if (!response.ok()) {
    subscribe_pending_.store(false);
    return response.status();
  }
  auto fields = DecodeFields(response->payload);
  if (!fields.ok()) {
    subscribe_pending_.store(false);
    return fields.status();
  }
  if (fields->size() != 4) {
    subscribe_pending_.store(false);
    return Status::Internal("malformed subscribe response");
  }
  Subscription sub;
  sub.id = std::strtoll((*fields)[0].c_str(), nullptr, 10);
  sub.expression_id =
      static_cast<int>(std::strtol((*fields)[1].c_str(), nullptr, 10));
  sub.rank = std::strtod((*fields)[2].c_str(), nullptr);
  sub.fired = (*fields)[3] == "1";
  {
    std::lock_guard<std::mutex> lock(stream_mutex_);
    handlers_[sub.id] = std::move(handler);
  }
  // Order matters: register the handler before clearing the pending
  // flag, so a concurrent DrainStash never sees parked events for this
  // id as droppable strays.
  subscribe_pending_.store(false);
  EnsureReceiver();
  return sub;
}

Status AuditClient::Unsubscribe(int64_t subscription_id) {
  if (options_.wire_version != WireVersion::kV2) {
    return Status::InvalidArgument(
        "subscriptions require wire_version kV2 (ADB2)");
  }
  Message request{MessageType::kUnsubscribeRequest,
                  EncodeFields({std::to_string(subscription_id)})};
  auto response = RoundTrip(request);
  if (!response.ok()) return response.status();
  std::lock_guard<std::mutex> lock(stream_mutex_);
  handlers_.erase(subscription_id);
  return Status::Ok();
}

size_t AuditClient::active_subscriptions() const {
  std::lock_guard<std::mutex> lock(stream_mutex_);
  return handlers_.size();
}

Status AuditClient::StreamStatus() const {
  std::lock_guard<std::mutex> lock(stream_mutex_);
  return stream_ok_ ? Status::Ok() : stream_error_;
}

Result<AuditClient::RemoteReport> AuditClient::Audit(
    const std::string& expression, Timestamp now, bool static_only) {
  Message request{static_only ? MessageType::kAuditStaticRequest
                              : MessageType::kAuditRequest,
                  EncodeFields({expression, std::to_string(now.micros())})};
  auto response = RoundTrip(request);
  if (!response.ok()) return response.status();
  auto fields = DecodeFields(response->payload);
  if (!fields.ok()) return fields.status();
  if (fields->size() != 2) {
    return Status::Internal("malformed audit response");
  }
  return RemoteReport{std::move((*fields)[0]), std::move((*fields)[1])};
}

Result<std::vector<AuditClient::RemoteScreening>>
AuditClient::ScreenLibrary(const std::vector<std::string>& expressions,
                           Timestamp now) {
  std::vector<std::string> fields;
  fields.reserve(expressions.size() + 1);
  fields.push_back(std::to_string(now.micros()));
  fields.insert(fields.end(), expressions.begin(), expressions.end());
  Message request{MessageType::kScreenLibraryRequest,
                  EncodeFields(fields)};
  auto response = RoundTrip(request);
  if (!response.ok()) return response.status();
  auto decoded = DecodeFields(response->payload);
  if (!decoded.ok()) return decoded.status();
  if (decoded->size() % 4 != 0) {
    return Status::Internal("malformed screening response");
  }
  std::vector<RemoteScreening> out;
  for (size_t i = 0; i + 3 < decoded->size(); i += 4) {
    RemoteScreening screening;
    if (!(*decoded)[i].empty()) {
      screening.expression_id = std::strtoll((*decoded)[i].c_str(),
                                             nullptr, 10);
    }
    StatusCode code = StatusCodeFromName((*decoded)[i + 1]);
    screening.status = code == StatusCode::kOk
                           ? Status::Ok()
                           : Status(code, (*decoded)[i + 2]);
    screening.canonical = std::move((*decoded)[i + 3]);
    out.push_back(std::move(screening));
  }
  return out;
}

Result<AuditClient::RemoteQueryResult> AuditClient::ExecuteQuery(
    const std::string& sql, const std::string& user,
    const std::string& role, const std::string& purpose, Timestamp now) {
  Message request{
      MessageType::kExecuteQueryRequest,
      EncodeFields({sql, user, role, purpose,
                    std::to_string(now.micros())})};
  auto response = RoundTrip(request);
  if (!response.ok()) return response.status();
  auto fields = DecodeFields(response->payload);
  if (!fields.ok()) return fields.status();
  if (fields->size() != 3) {
    return Status::Internal("malformed execute response");
  }
  RemoteQueryResult result;
  result.rendered = std::move((*fields)[0]);
  result.num_rows =
      static_cast<size_t>(std::strtoull((*fields)[1].c_str(), nullptr, 10));
  result.log_id = std::strtoll((*fields)[2].c_str(), nullptr, 10);
  return result;
}

Status AuditClient::LoadDatabaseDump(const std::string& dump_text,
                                     Timestamp now) {
  Message request{
      MessageType::kLoadDumpRequest,
      EncodeFields({"db", dump_text, std::to_string(now.micros())})};
  auto response = RoundTrip(request);
  return response.ok() ? Status::Ok() : response.status();
}

Status AuditClient::LoadQueryLogDump(const std::string& dump_text) {
  Message request{MessageType::kLoadDumpRequest,
                  EncodeFields({"log", dump_text, "0"})};
  auto response = RoundTrip(request);
  return response.ok() ? Status::Ok() : response.status();
}

Result<std::string> AuditClient::Health() {
  auto response = RoundTrip(Message{MessageType::kHealthRequest, ""});
  if (!response.ok()) return response.status();
  return response->payload;
}

Result<std::string> AuditClient::MetricsJson() {
  auto response = RoundTrip(Message{MessageType::kMetricsRequest, ""});
  if (!response.ok()) return response.status();
  return response->payload;
}

}  // namespace net
}  // namespace auditdb
