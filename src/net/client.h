#ifndef AUDITDB_NET_CLIENT_H_
#define AUDITDB_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/timestamp.h"
#include "src/net/wire.h"

namespace auditdb {
namespace net {

struct AuditClientOptions {
  /// Deadline for establishing the TCP connection.
  std::chrono::milliseconds connect_timeout{2000};
  /// Per-request deadline covering send + receive. Audits over big logs
  /// are slow by design; size accordingly.
  std::chrono::milliseconds request_timeout{30000};
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Retry idempotent requests over a fresh connection when the
  /// transport fails (stale pooled connection, server restart, refused
  /// connect): up to `max_retries` extra attempts with exponential
  /// backoff + jitter, all within the request_timeout budget — a retry
  /// that cannot fit its backoff before the deadline is not attempted.
  /// Timeouts never retry (the server may still be working on the
  /// request), and non-idempotent requests (ExecuteQuery, LoadDump)
  /// never retry: the first attempt may have committed.
  bool retry_idempotent = true;
  int max_retries = 3;
  /// First retry waits ~this long (jittered to [base/2, base]); each
  /// further retry doubles it up to retry_max_backoff.
  std::chrono::milliseconds retry_initial_backoff{10};
  std::chrono::milliseconds retry_max_backoff{500};
};

/// Blocking client for the auditd wire protocol: one TCP connection,
/// one request in flight at a time (the protocol itself pipelines, a
/// client that needs concurrency uses one AuditClient per thread).
/// Connects lazily on the first request.
class AuditClient {
 public:
  AuditClient(std::string host, uint16_t port,
              AuditClientOptions options = AuditClientOptions{});
  ~AuditClient();

  AuditClient(const AuditClient&) = delete;
  AuditClient& operator=(const AuditClient&) = delete;

  /// Establishes the connection now (otherwise the first request does).
  Status Connect();
  void Close();
  bool connected() const { return fd_ >= 0; }
  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

  /// A remote audit outcome: the deterministic CanonicalString (the
  /// byte-identical-to-serial contract) plus the investigator-facing
  /// DetailedReport rendered server-side.
  struct RemoteReport {
    std::string canonical;
    std::string detailed;
  };
  Result<RemoteReport> Audit(const std::string& expression, Timestamp now,
                             bool static_only = false);

  /// One library member's screening outcome.
  struct RemoteScreening {
    int64_t expression_id = 0;
    Status status;
    std::string canonical;  // empty unless status.ok()
  };
  Result<std::vector<RemoteScreening>> ScreenLibrary(
      const std::vector<std::string>& expressions, Timestamp now);

  struct RemoteQueryResult {
    std::string rendered;
    size_t num_rows = 0;
    int64_t log_id = 0;
  };
  /// Executes on the server and appends to its query log.
  Result<RemoteQueryResult> ExecuteQuery(const std::string& sql,
                                         const std::string& user,
                                         const std::string& role,
                                         const std::string& purpose,
                                         Timestamp now);

  /// Ships a dump (the src/io text format) into the server's stores.
  Status LoadDatabaseDump(const std::string& dump_text, Timestamp now);
  Status LoadQueryLogDump(const std::string& dump_text);

  /// "ok" when the server's loop and handler pool are responsive.
  Result<std::string> Health();
  /// {"server": ..., "service": ...} metrics JSON.
  Result<std::string> MetricsJson();

  /// Sends one request frame and blocks for its response. Error
  /// responses come back as their carried Status (a server-side
  /// RESOURCE_EXHAUSTED rejection keeps its code); transport failures
  /// map to Internal/DeadlineExceeded. Exposed for tools and tests.
  Result<Message> RoundTrip(const Message& request);

 private:
  Status SendAll(const std::string& bytes,
                 std::chrono::steady_clock::time_point deadline);
  Result<Message> ReadResponse(
      std::chrono::steady_clock::time_point deadline);
  Result<Message> TryOnce(const Message& request, Status* transport_error,
                          std::chrono::steady_clock::time_point deadline);
  /// Sleeps the next jittered backoff and doubles it, or returns false
  /// without sleeping when the delay would cross `deadline`.
  bool BackoffBeforeRetry(std::chrono::milliseconds* backoff,
                          std::chrono::steady_clock::time_point deadline);

  std::string host_;
  uint16_t port_;
  AuditClientOptions options_;
  uint64_t jitter_state_;
  int fd_ = -1;
};

}  // namespace net
}  // namespace auditdb

#endif  // AUDITDB_NET_CLIENT_H_
