#ifndef AUDITDB_NET_CLIENT_H_
#define AUDITDB_NET_CLIENT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/timestamp.h"
#include "src/net/backoff.h"
#include "src/net/subscription.h"
#include "src/net/wire.h"

namespace auditdb {
namespace net {

struct AuditClientOptions {
  /// Deadline for establishing the TCP connection.
  std::chrono::milliseconds connect_timeout{2000};
  /// Per-request deadline covering send + receive. Audits over big logs
  /// are slow by design; size accordingly.
  std::chrono::milliseconds request_timeout{30000};
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Retry idempotent requests over a fresh connection when the
  /// transport fails (stale pooled connection, server restart, refused
  /// connect): up to `max_retries` extra attempts with exponential
  /// backoff + jitter, all within the request_timeout budget — a retry
  /// that cannot fit its backoff before the deadline is not attempted.
  /// Timeouts never retry (the server may still be working on the
  /// request), and non-idempotent requests (ExecuteQuery, LoadDump)
  /// never retry: the first attempt may have committed.
  bool retry_idempotent = true;
  int max_retries = 3;
  /// Follow NOT_PRIMARY rejections to the primary address they carry
  /// (safe even for writes: the replica rejects before any side
  /// effect). Off = surface the rejection to the caller, which cluster
  /// tools use to observe roles directly.
  bool follow_not_primary = true;
  /// First retry waits ~this long (jittered to [base/2, base]); each
  /// further retry doubles it up to retry_max_backoff.
  std::chrono::milliseconds retry_initial_backoff{10};
  std::chrono::milliseconds retry_max_backoff{500};
  /// Protocol version spoken on the wire. kV2 (the default) is required
  /// for Subscribe/Unsubscribe; kV1 interoperates with pre-subscription
  /// servers byte-for-byte.
  WireVersion wire_version = WireVersion::kV2;
  /// SO_RCVBUF for the connection; 0 keeps the kernel default. Shrinking
  /// it makes a deliberately slow subscriber exert backpressure with
  /// little traffic (the kernel clamps to its minimum, ~2 KiB).
  int so_rcvbuf = 0;
};

/// Blocking client for the auditd wire protocol: one TCP connection,
/// one request in flight at a time (the protocol itself pipelines, a
/// client that needs concurrency uses one AuditClient per thread).
/// Connects lazily on the first request.
///
/// Streaming (protocol v2): after the first successful Subscribe() the
/// client starts a receiver thread that owns all reads — server PUSH
/// frames are dispatched to the subscription's handler in wire order,
/// responses are routed back to the requesting thread. In streaming
/// mode there are no retries and no reconnects: subscriptions are bound
/// to the connection, so a transport failure or request timeout poisons
/// the session (every later call fails until Close() + a fresh
/// connection re-subscribes). Handlers run on the receiver thread and
/// must not call back into this client (the receiver cannot serve a
/// response while it is inside a handler).
class AuditClient {
 public:
  AuditClient(std::string host, uint16_t port,
              AuditClientOptions options = AuditClientOptions{});
  /// Cluster-aware form: one or more "host:port" endpoints. Requests go
  /// to the current endpoint; a refused connect or torn transport
  /// rotates to the next one on each retry (all drawing from the single
  /// per-request RetryBudget), and a NOT_PRIMARY rejection — which the
  /// server issues *before* any side effect, so following it is safe
  /// even for writes — redirects to the primary address it carries
  /// (learned endpoints join the rotation). Reads are served by any
  /// node; only mutations bounce to the primary.
  explicit AuditClient(std::vector<std::string> endpoints,
                       AuditClientOptions options = AuditClientOptions{});
  ~AuditClient();

  AuditClient(const AuditClient&) = delete;
  AuditClient& operator=(const AuditClient&) = delete;

  /// Establishes the connection now (otherwise the first request does).
  Status Connect();
  void Close();
  bool connected() const { return fd_ >= 0; }
  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }
  /// The endpoint requests currently target, as "host:port".
  std::string endpoint() const;
  /// All endpoints in rotation order: the configured list plus any
  /// primaries learned from NOT_PRIMARY redirects.
  std::vector<std::string> endpoints() const;

  /// A remote audit outcome: the deterministic CanonicalString (the
  /// byte-identical-to-serial contract) plus the investigator-facing
  /// DetailedReport rendered server-side.
  struct RemoteReport {
    std::string canonical;
    std::string detailed;
  };
  Result<RemoteReport> Audit(const std::string& expression, Timestamp now,
                             bool static_only = false);

  /// One library member's screening outcome.
  struct RemoteScreening {
    int64_t expression_id = 0;
    Status status;
    std::string canonical;  // empty unless status.ok()
  };
  Result<std::vector<RemoteScreening>> ScreenLibrary(
      const std::vector<std::string>& expressions, Timestamp now);

  struct RemoteQueryResult {
    std::string rendered;
    size_t num_rows = 0;
    int64_t log_id = 0;
  };
  /// Executes on the server and appends to its query log.
  Result<RemoteQueryResult> ExecuteQuery(const std::string& sql,
                                         const std::string& user,
                                         const std::string& role,
                                         const std::string& purpose,
                                         Timestamp now);

  /// Ships a dump (the src/io text format) into the server's stores.
  Status LoadDatabaseDump(const std::string& dump_text, Timestamp now);
  Status LoadQueryLogDump(const std::string& dump_text);

  /// "ok" when the server's loop and handler pool are responsive.
  Result<std::string> Health();
  /// {"server": ..., "service": ...} metrics JSON.
  Result<std::string> MetricsJson();

  /// A registered push subscription, as acknowledged by the server.
  struct Subscription {
    int64_t id = 0;         // server-assigned subscription id
    int expression_id = 0;  // server-side standing-expression id
    double rank = 0.0;      // rank at subscription time
    bool fired = false;     // already past threshold when subscribed
  };
  /// Invoked on the receiver thread for every PUSH frame of a
  /// subscription, in sequence order. Must not call back into this
  /// client and should return quickly: the server's per-subscriber
  /// queue is bounded, and a handler that stalls the receiver
  /// eventually triggers the server's slow-subscriber policy.
  using PushHandler = std::function<void(const PushEvent&)>;

  /// Registers a standing audit expression (audit grammar source) and
  /// streams its verdict changes to `handler`. Requires wire_version
  /// kV2. The first successful Subscribe switches the client into
  /// streaming mode (see class comment).
  Result<Subscription> Subscribe(const std::string& expression,
                                 Timestamp now, PushHandler handler);
  /// Same, but attaches to an existing server-side standing expression.
  Result<Subscription> SubscribeById(int expression_id, PushHandler handler);
  /// Cancels one subscription. Pushes already in flight for it are
  /// silently discarded. Must not be called from a push handler.
  Status Unsubscribe(int64_t subscription_id);
  /// Number of live subscriptions on this client.
  size_t active_subscriptions() const;
  /// True once the receiver thread owns the read side.
  bool streaming() const { return receiver_running_.load(); }
  /// OK while the streaming session is healthy; afterwards, the
  /// transport error that poisoned it (e.g. the server closed the
  /// connection during a graceful drain).
  Status StreamStatus() const;

  /// Sends one request frame and blocks for its response. Error
  /// responses come back as their carried Status (a server-side
  /// RESOURCE_EXHAUSTED rejection keeps its code); transport failures
  /// map to Internal/DeadlineExceeded. Exposed for tools and tests.
  Result<Message> RoundTrip(const Message& request);

 private:
  Status SendAll(const std::string& bytes,
                 std::chrono::steady_clock::time_point deadline);
  Result<Message> ReadResponse(
      std::chrono::steady_clock::time_point deadline);
  Result<Message> TryOnce(const Message& request, Status* transport_error,
                          std::chrono::steady_clock::time_point deadline);
  /// Points host_/port_ at endpoints_[index].
  void ActivateEndpoint(size_t index);
  /// Advances to the next endpoint (no-op with a single one).
  void RotateEndpoint();
  /// Retargets at the "host:port" a NOT_PRIMARY rejection carried,
  /// appending it to the rotation if it is new. Ignores garbage.
  void RepointTo(const std::string& address);

  Result<Subscription> SubscribeInternal(const std::string& kind,
                                         const std::string& value,
                                         Timestamp now, PushHandler handler);
  /// One round trip in streaming mode: send from the calling thread,
  /// wait on the mailbox for the receiver to route the response.
  Result<Message> StreamingRoundTrip(const Message& request);
  /// Decodes and stashes a PUSH frame seen by a *blocking* read (the
  /// receiver isn't running yet; the event waits for it).
  Status StashPush(const Message& message);
  void EnsureReceiver();
  void StopReceiver();
  void ReceiverLoop();
  /// Dispatches stashed pushes that have handlers (wire order); drops
  /// ones for unknown subscriptions unless a Subscribe is in flight.
  void DrainStash();
  /// Marks the streaming session dead and wakes any waiting round trip.
  void FailStream(const Status& error);

  std::string host_;
  uint16_t port_;
  AuditClientOptions options_;
  /// Endpoint rotation (host, port); active_endpoint_ indexes the one
  /// host_/port_ mirror.
  std::vector<std::pair<std::string, uint16_t>> endpoints_;
  size_t active_endpoint_ = 0;
  /// Jitter LCG state threaded through each request's RetryBudget so
  /// backoff decorrelation carries across requests.
  uint64_t jitter_state_;
  int fd_ = -1;
  /// Persistent frame reader: push frames buffered behind a response
  /// must survive across reads. Reset on (re)connect.
  FrameReader reader_;

  // --- streaming state ---
  std::thread receiver_;
  std::atomic<bool> receiver_running_{false};
  std::atomic<bool> receiver_stop_{false};
  /// True while a Subscribe round trip is in flight: pushes for ids
  /// with no handler yet are parked instead of dropped.
  std::atomic<bool> subscribe_pending_{false};
  /// Guards handlers_, stash_, stream_ok_/stream_error_.
  mutable std::mutex stream_mutex_;
  std::map<int64_t, PushHandler> handlers_;
  std::deque<PushEvent> stash_;
  bool stream_ok_ = true;
  Status stream_error_;
  /// Response mailbox: the receiver parks one routed response here for
  /// the thread blocked in StreamingRoundTrip.
  std::mutex mail_mutex_;
  std::condition_variable mail_cv_;
  std::optional<Message> mail_;
  bool want_response_ = false;
};

}  // namespace net
}  // namespace auditdb

#endif  // AUDITDB_NET_CLIENT_H_
