#include "src/net/backoff.h"

#include <algorithm>
#include <thread>

namespace auditdb {
namespace net {

RetryBudget::RetryBudget(BackoffOptions options, int max_retries,
                         Clock::time_point deadline, uint64_t seed)
    : options_(options),
      max_retries_(max_retries < 0 ? 0 : max_retries),
      backoff_(options.initial_backoff),
      deadline_(deadline),
      jitter_state_(seed) {}

std::optional<std::chrono::milliseconds> RetryBudget::NextDelay() {
  if (retries_used_ >= max_retries_) return std::nullopt;
  int64_t base = backoff_.count();
  jitter_state_ =
      jitter_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
  int64_t half = base / 2;
  int64_t delay =
      half + (half > 0
                  ? static_cast<int64_t>((jitter_state_ >> 33) % (half + 1))
                  : 0);
  if (Clock::now() + std::chrono::milliseconds(delay) >= deadline_) {
    return std::nullopt;  // the retry could not finish in budget
  }
  ++retries_used_;
  backoff_ = std::min(backoff_ * 2, options_.max_backoff);
  return std::chrono::milliseconds(delay);
}

bool RetryBudget::SleepBeforeRetry() {
  auto delay = NextDelay();
  if (!delay.has_value()) return false;
  std::this_thread::sleep_for(*delay);
  return true;
}

}  // namespace net
}  // namespace auditdb
