#include "src/net/wire.h"

#include <cstring>

#include "src/io/dump.h"

namespace auditdb {
namespace net {

namespace {

constexpr size_t kCompactThreshold = 64u << 10;

uint32_t ReadBigEndian32(const char* p) {
  return (static_cast<uint32_t>(static_cast<unsigned char>(p[0])) << 24) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 8) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3]));
}

void AppendBigEndian32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>((v >> 24) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>(v & 0xff));
}

}  // namespace

const char* WireVersionName(WireVersion version) {
  switch (version) {
    case WireVersion::kV1:
      return "ADB1";
    case WireVersion::kV2:
      return "ADB2";
  }
  return "unknown";
}

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kHealthRequest:
      return "health";
    case MessageType::kMetricsRequest:
      return "metrics";
    case MessageType::kAuditRequest:
      return "audit";
    case MessageType::kAuditStaticRequest:
      return "audit_static";
    case MessageType::kScreenLibraryRequest:
      return "screen_library";
    case MessageType::kExecuteQueryRequest:
      return "execute_query";
    case MessageType::kLoadDumpRequest:
      return "load_dump";
    case MessageType::kSubscribeRequest:
      return "subscribe";
    case MessageType::kUnsubscribeRequest:
      return "unsubscribe";
    case MessageType::kReplicateRequest:
      return "replicate";
    case MessageType::kReplicateAckRequest:
      return "replicate_ack";
    case MessageType::kPromoteRequest:
      return "promote";
    case MessageType::kOkResponse:
      return "ok";
    case MessageType::kErrorResponse:
      return "error";
    case MessageType::kPushEvent:
      return "push";
    case MessageType::kReplicateEvent:
      return "replicate_event";
  }
  return "unknown";
}

bool IsKnownMessageType(uint8_t byte) {
  switch (static_cast<MessageType>(byte)) {
    case MessageType::kHealthRequest:
    case MessageType::kMetricsRequest:
    case MessageType::kAuditRequest:
    case MessageType::kAuditStaticRequest:
    case MessageType::kScreenLibraryRequest:
    case MessageType::kExecuteQueryRequest:
    case MessageType::kLoadDumpRequest:
    case MessageType::kSubscribeRequest:
    case MessageType::kUnsubscribeRequest:
    case MessageType::kReplicateRequest:
    case MessageType::kReplicateAckRequest:
    case MessageType::kPromoteRequest:
    case MessageType::kOkResponse:
    case MessageType::kErrorResponse:
    case MessageType::kPushEvent:
    case MessageType::kReplicateEvent:
      return true;
  }
  return false;
}

bool IsRequestType(MessageType type) {
  return IsKnownMessageType(static_cast<uint8_t>(type)) &&
         type != MessageType::kOkResponse &&
         type != MessageType::kErrorResponse &&
         type != MessageType::kPushEvent &&
         type != MessageType::kReplicateEvent;
}

bool IsIdempotentType(MessageType type) {
  switch (type) {
    case MessageType::kHealthRequest:
    case MessageType::kMetricsRequest:
    case MessageType::kAuditRequest:
    case MessageType::kAuditStaticRequest:
    case MessageType::kScreenLibraryRequest:
    // Promote is state-changing but idempotent by design: promoting a
    // node that is already primary (or repointing to the upstream it
    // already follows) succeeds without further effect, so a failover
    // supervisor can safely retry it over a fresh connection.
    case MessageType::kPromoteRequest:
      return true;
    // Subscribe/Unsubscribe mutate per-connection server state; a blind
    // retry over a fresh connection could double-register or target a
    // subscription id the new connection does not own. Replicate/
    // ReplicateAck bind connection state too (the replica session owns
    // its own reconnect protocol).
    default:
      return false;
  }
}

std::string EncodeFrame(const Message& message) {
  std::string out;
  out.reserve(kFrameHeaderBytes + 1 + message.payload.size());
  if (message.version == WireVersion::kV2) {
    out.append(kFrameMagicV2, sizeof(kFrameMagicV2));
  } else {
    out.append(kFrameMagic, sizeof(kFrameMagic));
  }
  AppendBigEndian32(static_cast<uint32_t>(1 + message.payload.size()), &out);
  out.push_back(static_cast<char>(message.type));
  out.append(message.payload);
  return out;
}

std::string EncodeFields(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back('|');
    out.append(io::EscapeField(fields[i]));
  }
  return out;
}

Result<std::vector<std::string>> DecodeFields(const std::string& payload) {
  std::vector<std::string> out;
  for (const auto& field : io::SplitEscapedFields(payload)) {
    auto raw = io::UnescapeField(field);
    if (!raw.ok()) return raw.status();
    out.push_back(std::move(*raw));
  }
  return out;
}

Message MakeErrorMessage(const Status& status) {
  return Message{
      MessageType::kErrorResponse,
      EncodeFields({StatusCodeName(status.code()), status.message()})};
}

namespace {
constexpr char kNotPrimaryPrefix[] = "NOT_PRIMARY primary=";
}  // namespace

Status MakeNotPrimaryStatus(const std::string& primary_address) {
  return Status::InvalidArgument(
      kNotPrimaryPrefix +
      (primary_address.empty() ? std::string("unknown") : primary_address));
}

bool IsNotPrimaryStatus(const Status& status) {
  return status.code() == StatusCode::kInvalidArgument &&
         status.message().rfind(kNotPrimaryPrefix, 0) == 0;
}

std::string NotPrimaryAddress(const Status& status) {
  if (!IsNotPrimaryStatus(status)) return "";
  std::string address =
      status.message().substr(sizeof(kNotPrimaryPrefix) - 1);
  return address == "unknown" ? "" : address;
}

Status DecodeErrorMessage(const std::string& payload) {
  auto fields = DecodeFields(payload);
  if (!fields.ok() || fields->size() != 2) {
    return Status::Internal("malformed error response from server");
  }
  return Status(StatusCodeFromName((*fields)[0]), (*fields)[1]);
}

StatusCode StatusCodeFromName(const std::string& name) {
  static const struct {
    const char* name;
    StatusCode code;
  } kCodes[] = {
      {"OK", StatusCode::kOk},
      {"InvalidArgument", StatusCode::kInvalidArgument},
      {"NotFound", StatusCode::kNotFound},
      {"AlreadyExists", StatusCode::kAlreadyExists},
      {"OutOfRange", StatusCode::kOutOfRange},
      {"ParseError", StatusCode::kParseError},
      {"TypeError", StatusCode::kTypeError},
      {"Unimplemented", StatusCode::kUnimplemented},
      {"Internal", StatusCode::kInternal},
      {"Cancelled", StatusCode::kCancelled},
      {"DeadlineExceeded", StatusCode::kDeadlineExceeded},
      {"ResourceExhausted", StatusCode::kResourceExhausted},
  };
  for (const auto& entry : kCodes) {
    if (name == entry.name) return entry.code;
  }
  return StatusCode::kInternal;
}

Result<std::optional<Message>> FrameReader::Next() {
  if (!failure_.ok()) return failure_;
  auto fail = [this](Status status) -> Result<std::optional<Message>> {
    failure_ = status;
    return failure_;
  };
  if (buffer_.size() - offset_ < kFrameHeaderBytes) {
    // Partial header; compact so a drip-fed connection can't pin memory.
    if (offset_ > kCompactThreshold) {
      buffer_.erase(0, offset_);
      offset_ = 0;
    }
    return std::optional<Message>();
  }
  const char* head = buffer_.data() + offset_;
  WireVersion frame_version;
  if (std::memcmp(head, kFrameMagic, sizeof(kFrameMagic)) == 0) {
    frame_version = WireVersion::kV1;
  } else if (std::memcmp(head, kFrameMagicV2, sizeof(kFrameMagicV2)) == 0) {
    frame_version = WireVersion::kV2;
  } else {
    return fail(Status::ParseError("bad frame magic"));
  }
  if (version_.has_value() && *version_ != frame_version) {
    return fail(Status::ParseError(
        std::string("mixed protocol versions on one connection (") +
        WireVersionName(*version_) + " then " +
        WireVersionName(frame_version) + ")"));
  }
  uint32_t body_len = ReadBigEndian32(head + 4);
  if (body_len == 0) {
    return fail(Status::ParseError("zero-length frame body"));
  }
  if (body_len > max_frame_bytes_) {
    return fail(Status::OutOfRange(
        "frame body of " + std::to_string(body_len) +
        " bytes exceeds limit " + std::to_string(max_frame_bytes_)));
  }
  if (buffer_.size() - offset_ < kFrameHeaderBytes + body_len) {
    return std::optional<Message>();
  }
  uint8_t type_byte = static_cast<uint8_t>(head[kFrameHeaderBytes]);
  if (!IsKnownMessageType(type_byte)) {
    return fail(Status::ParseError("unknown message type byte " +
                                   std::to_string(type_byte)));
  }
  version_ = frame_version;
  Message message;
  message.type = static_cast<MessageType>(type_byte);
  message.version = frame_version;
  message.payload.assign(buffer_, offset_ + kFrameHeaderBytes + 1,
                         body_len - 1);
  offset_ += kFrameHeaderBytes + body_len;
  if (offset_ == buffer_.size() || offset_ > kCompactThreshold) {
    buffer_.erase(0, offset_);
    offset_ = 0;
  }
  return std::optional<Message>(std::move(message));
}

}  // namespace net
}  // namespace auditdb
