#include "src/net/subscription.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace auditdb {
namespace net {

namespace {

std::string FormatRank(double rank) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", rank);
  return buf;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseI64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

}  // namespace

const char* SlowSubscriberPolicyName(SlowSubscriberPolicy policy) {
  switch (policy) {
    case SlowSubscriberPolicy::kDropOldest:
      return "drop";
    case SlowSubscriberPolicy::kEvict:
      return "evict";
  }
  return "unknown";
}

Result<SlowSubscriberPolicy> ParseSlowSubscriberPolicy(
    const std::string& name) {
  if (name == "drop") return SlowSubscriberPolicy::kDropOldest;
  if (name == "evict") return SlowSubscriberPolicy::kEvict;
  return Status::InvalidArgument("unknown slow-subscriber policy '" + name +
                                 "' (want drop or evict)");
}

const char* PushKindName(PushKind kind) {
  switch (kind) {
    case PushKind::kProgress:
      return "progress";
    case PushKind::kAlert:
      return "alert";
    case PushKind::kGap:
      return "gap";
  }
  return "unknown";
}

Result<PushKind> ParsePushKind(const std::string& name) {
  if (name == "progress") return PushKind::kProgress;
  if (name == "alert") return PushKind::kAlert;
  if (name == "gap") return PushKind::kGap;
  return Status::ParseError("unknown push kind '" + name + "'");
}

std::string EncodePushPayload(const PushEvent& event) {
  return EncodeFields({std::to_string(event.subscription_id),
                       std::to_string(event.seq), PushKindName(event.kind),
                       std::to_string(event.log_id),
                       std::to_string(event.expression_id),
                       FormatRank(event.rank), event.fired ? "1" : "0",
                       std::to_string(event.dropped), event.verdict});
}

Result<PushEvent> DecodePushPayload(const std::string& payload) {
  auto fields = DecodeFields(payload);
  if (!fields.ok()) return fields.status();
  if (fields->size() != 9) {
    return Status::ParseError("push payload wants 9 fields, got " +
                              std::to_string(fields->size()));
  }
  PushEvent event;
  int64_t expr_id = 0;
  if (!ParseI64((*fields)[0], &event.subscription_id) ||
      !ParseU64((*fields)[1], &event.seq) ||
      !ParseI64((*fields)[3], &event.log_id) ||
      !ParseI64((*fields)[4], &expr_id) ||
      !ParseU64((*fields)[7], &event.dropped)) {
    return Status::ParseError("malformed numeric field in push payload");
  }
  event.expression_id = static_cast<int>(expr_id);
  auto kind = ParsePushKind((*fields)[2]);
  if (!kind.ok()) return kind.status();
  event.kind = *kind;
  char* end = nullptr;
  event.rank = std::strtod((*fields)[5].c_str(), &end);
  if (end != (*fields)[5].c_str() + (*fields)[5].size()) {
    return Status::ParseError("malformed rank in push payload");
  }
  const std::string& fired = (*fields)[6];
  if (fired != "0" && fired != "1") {
    return Status::ParseError("malformed fired flag in push payload");
  }
  event.fired = fired == "1";
  event.verdict = std::move((*fields)[8]);
  return event;
}

SubscriptionRegistry::SubscriptionRegistry(SubscriptionLimits limits)
    : limits_(limits) {
  if (limits_.push_queue_depth == 0) limits_.push_queue_depth = 1;
}

Result<int64_t> SubscriptionRegistry::Subscribe(uint64_t conn_id,
                                                int expression_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (subs_.size() >= limits_.max_subscriptions) {
    return Status::ResourceExhausted(
        "subscription limit reached (" +
        std::to_string(limits_.max_subscriptions) + ")");
  }
  int64_t id = next_sub_id_++;
  Subscription sub;
  sub.id = id;
  sub.conn_id = conn_id;
  sub.expression_id = expression_id;
  subs_.emplace(id, std::move(sub));
  by_conn_[conn_id].insert(id);
  by_expr_[expression_id].insert(id);
  active_.store(subs_.size(), std::memory_order_relaxed);
  return id;
}

Result<int> SubscriptionRegistry::Unsubscribe(uint64_t conn_id,
                                              int64_t subscription_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = subs_.find(subscription_id);
  if (it == subs_.end() || it->second.conn_id != conn_id) {
    return Status::NotFound("no subscription " +
                            std::to_string(subscription_id) +
                            " on this connection");
  }
  int expression_id = it->second.expression_id;
  by_conn_[conn_id].erase(subscription_id);
  if (by_conn_[conn_id].empty()) by_conn_.erase(conn_id);
  by_expr_[expression_id].erase(subscription_id);
  if (by_expr_[expression_id].empty()) by_expr_.erase(expression_id);
  subs_.erase(it);
  active_.store(subs_.size(), std::memory_order_relaxed);
  return expression_id;
}

std::vector<int> SubscriptionRegistry::DropConnection(uint64_t conn_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> released;
  auto it = by_conn_.find(conn_id);
  if (it == by_conn_.end()) {
    evict_flagged_.erase(conn_id);
    return released;
  }
  for (int64_t sub_id : it->second) {
    auto sub_it = subs_.find(sub_id);
    if (sub_it == subs_.end()) continue;
    int expression_id = sub_it->second.expression_id;
    released.push_back(expression_id);
    by_expr_[expression_id].erase(sub_id);
    if (by_expr_[expression_id].empty()) by_expr_.erase(expression_id);
    subs_.erase(sub_it);
  }
  by_conn_.erase(it);
  evict_flagged_.erase(conn_id);
  active_.store(subs_.size(), std::memory_order_relaxed);
  return released;
}

PublishOutcome SubscriptionRegistry::Publish(int expression_id, PushKind kind,
                                             int64_t log_id, double rank,
                                             bool fired,
                                             const std::string& verdict) {
  PublishOutcome outcome;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_expr_.find(expression_id);
  if (it == by_expr_.end()) return outcome;
  std::set<uint64_t> ready, evict;
  for (int64_t sub_id : it->second) {
    auto sub_it = subs_.find(sub_id);
    if (sub_it == subs_.end()) continue;
    Subscription& sub = sub_it->second;
    if (evict_flagged_.count(sub.conn_id)) continue;  // frozen, going away
    PushEvent event;
    event.subscription_id = sub.id;
    event.seq = sub.next_seq++;
    event.kind = kind;
    event.log_id = log_id;
    event.expression_id = expression_id;
    event.rank = rank;
    event.fired = fired;
    if (kind == PushKind::kAlert) event.verdict = verdict;
    if (sub.queue.size() >= limits_.push_queue_depth) {
      if (limits_.slow_subscriber_policy == SlowSubscriberPolicy::kEvict) {
        // Do not queue past the bound; the connection is on its way out.
        --sub.next_seq;
        evict_flagged_.insert(sub.conn_id);
        evicted_.Increment();
        evict.insert(sub.conn_id);
        continue;
      }
      // kDropOldest: shed the queue front (the oldest surviving
      // sequence numbers) into the coalesced gap.
      const PushEvent& oldest = sub.queue.front();
      if (sub.gap_count == 0) sub.gap_first = oldest.seq;
      // Drops are contiguous from gap_first: everything between it and
      // the queue front was already dropped or delivered before the gap
      // opened.
      sub.gap_count = oldest.seq - sub.gap_first + 1;
      sub.queue.pop_front();
      pushes_dropped_.Increment();
    }
    sub.queue.push_back(std::move(event));
    queue_depth_.Set(static_cast<int64_t>(sub.queue.size()));
    ready.insert(sub.conn_id);
  }
  outcome.ready_conns.assign(ready.begin(), ready.end());
  outcome.evict_conns.assign(evict.begin(), evict.end());
  return outcome;
}

size_t SubscriptionRegistry::DrainFrames(uint64_t conn_id, size_t max_bytes,
                                         std::string* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_conn_.find(conn_id);
  if (it == by_conn_.end()) return 0;
  size_t start = out->size();
  size_t frames = 0;
  for (int64_t sub_id : it->second) {
    auto sub_it = subs_.find(sub_id);
    if (sub_it == subs_.end()) continue;
    Subscription& sub = sub_it->second;
    if (sub.gap_count > 0) {
      if (out->size() - start >= max_bytes) return frames;
      PushEvent gap;
      gap.subscription_id = sub.id;
      gap.seq = sub.gap_first;
      gap.kind = PushKind::kGap;
      gap.expression_id = sub.expression_id;
      gap.dropped = sub.gap_count;
      out->append(EncodeFrame(Message{MessageType::kPushEvent,
                                      EncodePushPayload(gap),
                                      WireVersion::kV2}));
      sub.gap_first = 0;
      sub.gap_count = 0;
      gap_frames_sent_.Increment();
      ++frames;
    }
    while (!sub.queue.empty()) {
      if (out->size() - start >= max_bytes) return frames;
      out->append(EncodeFrame(Message{MessageType::kPushEvent,
                                      EncodePushPayload(sub.queue.front()),
                                      WireVersion::kV2}));
      sub.queue.pop_front();
      pushes_sent_.Increment();
      ++frames;
    }
  }
  return frames;
}

bool SubscriptionRegistry::HasSubscriptions(uint64_t conn_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return by_conn_.count(conn_id) > 0;
}

bool SubscriptionRegistry::HasPending(uint64_t conn_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_conn_.find(conn_id);
  if (it == by_conn_.end()) return false;
  for (int64_t sub_id : it->second) {
    auto sub_it = subs_.find(sub_id);
    if (sub_it != subs_.end() && PendingLocked(sub_it->second) > 0) {
      return true;
    }
  }
  return false;
}

size_t SubscriptionRegistry::TotalPending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const auto& [id, sub] : subs_) total += PendingLocked(sub);
  return total;
}

std::string SubscriptionRegistry::MetricsJson() const {
  std::string out = "{";
  out += "\"subscriptions_active\":" + std::to_string(active());
  out += ",\"pushes_sent\":" + std::to_string(pushes_sent_.value());
  out += ",\"pushes_dropped\":" + std::to_string(pushes_dropped_.value());
  out += ",\"gap_frames_sent\":" + std::to_string(gap_frames_sent_.value());
  out += ",\"slow_subscribers_evicted\":" + std::to_string(evicted_.value());
  out += ",\"queue_depth_peak\":" + std::to_string(queue_depth_.max());
  out += ",\"pending_events\":" + std::to_string(TotalPending());
  out += "}";
  return out;
}

}  // namespace net
}  // namespace auditdb
