#include "src/net/replication.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <random>

#include "src/querylog/wal.h"

namespace auditdb {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

/// Session poll granularity: bounds Stop() latency and repoint pickup.
constexpr int kSessionPollMillis = 50;
/// Reconnect backoff sleeps in stop-aware slices of this size.
constexpr int kBackoffSliceMillis = 20;
/// Cap on ship-time entries kept for ack-latency metrics.
constexpr size_t kMaxShipTimes = 1u << 16;

int RemainingMillis(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > 60 * 60 * 1000) return 60 * 60 * 1000;
  return static_cast<int>(left.count());
}

Status Await(int fd, short events, Clock::time_point deadline) {
  while (true) {
    int timeout = RemainingMillis(deadline);
    if (timeout <= 0) {
      return Status::DeadlineExceeded("replication deadline expired");
    }
    pollfd pfd{fd, events, 0};
    int n = ::poll(&pfd, 1, timeout);
    if (n > 0) {
      if (pfd.revents & (POLLERR | POLLNVAL)) {
        return Status::Internal("socket error");
      }
      return Status::Ok();
    }
    if (n == 0) {
      return Status::DeadlineExceeded("replication deadline expired");
    }
    if (errno != EINTR) {
      return Status::Internal(std::string("poll: ") + strerror(errno));
    }
  }
}

Status SendAllFd(int fd, const std::string& bytes,
                 Clock::time_point deadline) {
  size_t offset = 0;
  while (offset < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + offset, bytes.size() - offset,
                       MSG_NOSIGNAL);
    if (n > 0) {
      offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      AUDITDB_RETURN_IF_ERROR(Await(fd, POLLOUT, deadline));
      continue;
    }
    return Status::Internal(std::string("send: ") + strerror(errno));
  }
  return Status::Ok();
}

Result<int> DialBlocking(const std::string& host, uint16_t port,
                         std::chrono::milliseconds connect_timeout) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad IPv4 host: " + host);
  }
  auto deadline = Clock::now() + connect_timeout;
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    Status status = Status::Internal("connect " + host + ":" +
                                     std::to_string(port) + ": " +
                                     strerror(errno));
    ::close(fd);
    return status;
  }
  if (rc != 0) {
    Status ready = Await(fd, POLLOUT, deadline);
    if (!ready.ok()) {
      ::close(fd);
      return ready;
    }
    int error = 0;
    socklen_t len = sizeof(error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &len) != 0 ||
        error != 0) {
      ::close(fd);
      return Status::Internal("connect " + host + ":" +
                              std::to_string(port) + ": " +
                              strerror(error != 0 ? error : errno));
    }
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool ParseInt64Text(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

bool ParseUint64Text(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

}  // namespace

Result<ReplAckPolicy> ParseReplAckPolicy(const std::string& text) {
  if (text == "none") return ReplAckPolicy::kNone;
  if (text == "quorum") return ReplAckPolicy::kQuorum;
  if (text == "all") return ReplAckPolicy::kAll;
  return Status::InvalidArgument(
      "replication ack policy must be none | quorum | all, got: " + text);
}

const char* ReplAckPolicyName(ReplAckPolicy policy) {
  switch (policy) {
    case ReplAckPolicy::kNone:
      return "none";
    case ReplAckPolicy::kQuorum:
      return "quorum";
    case ReplAckPolicy::kAll:
      return "all";
  }
  return "unknown";
}

Result<std::pair<std::string, uint16_t>> ParseHostPort(
    const std::string& address) {
  size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == address.size()) {
    return Status::InvalidArgument("address must be host:port, got: " +
                                   address);
  }
  errno = 0;
  char* end = nullptr;
  unsigned long port = std::strtoul(address.c_str() + colon + 1, &end, 10);
  if (errno != 0 || *end != '\0' || port == 0 || port > 65535) {
    return Status::InvalidArgument("bad port in address: " + address);
  }
  return std::make_pair(address.substr(0, colon),
                        static_cast<uint16_t>(port));
}

std::string EncodeReplicateWal(const std::string& framed_record) {
  return EncodeFields({"wal", framed_record});
}

std::string EncodeReplicateCheckpoint(const std::string& db_dump,
                                      const std::string& log_dump,
                                      uint64_t load_generation,
                                      int64_t stamp_micros) {
  return EncodeFields({"ckpt", db_dump, log_dump,
                       std::to_string(load_generation),
                       std::to_string(stamp_micros)});
}

std::string EncodeReplicateLoad(const std::string& load_kind,
                                const std::string& load_dump,
                                uint64_t load_generation,
                                int64_t stamp_micros) {
  return EncodeFields({"load", load_kind, load_dump,
                       std::to_string(load_generation),
                       std::to_string(stamp_micros)});
}

Result<ReplicateEvent> DecodeReplicateEvent(const std::string& payload) {
  AUDITDB_ASSIGN_OR_RETURN(auto fields, DecodeFields(payload));
  if (fields.empty()) {
    return Status::ParseError("empty replicate event");
  }
  ReplicateEvent event;
  if (fields[0] == "wal") {
    if (fields.size() != 2) {
      return Status::ParseError("wal replicate event needs 2 fields");
    }
    event.kind = ReplicateEvent::Kind::kWal;
    event.wal_record = std::move(fields[1]);
    return event;
  }
  if (fields[0] == "ckpt") {
    if (fields.size() != 5 ||
        !ParseUint64Text(fields[3], &event.load_generation) ||
        !ParseInt64Text(fields[4], &event.stamp_micros)) {
      return Status::ParseError("ckpt replicate event needs 5 fields");
    }
    event.kind = ReplicateEvent::Kind::kCheckpoint;
    event.db_dump = std::move(fields[1]);
    event.log_dump = std::move(fields[2]);
    return event;
  }
  if (fields[0] == "load") {
    if (fields.size() != 5 ||
        !ParseUint64Text(fields[3], &event.load_generation) ||
        !ParseInt64Text(fields[4], &event.stamp_micros)) {
      return Status::ParseError("load replicate event needs 5 fields");
    }
    if (fields[1] != "db" && fields[1] != "log") {
      return Status::ParseError("load replicate event kind must be db|log");
    }
    event.kind = ReplicateEvent::Kind::kLoad;
    event.load_kind = std::move(fields[1]);
    event.load_dump = std::move(fields[2]);
    return event;
  }
  return Status::ParseError("unknown replicate event kind: " + fields[0]);
}

std::string EncodeReplicateHandshake(const ReplicateHandshake& handshake) {
  return EncodeFields({std::to_string(handshake.applied_log_id),
                       handshake.have_state ? "1" : "0",
                       std::to_string(handshake.load_generation)});
}

Result<ReplicateHandshake> DecodeReplicateHandshake(
    const std::string& payload) {
  AUDITDB_ASSIGN_OR_RETURN(auto fields, DecodeFields(payload));
  if (fields.size() != 3) {
    return Status::ParseError("replicate handshake needs 3 fields, got " +
                              std::to_string(fields.size()));
  }
  ReplicateHandshake handshake;
  if (!ParseInt64Text(fields[0], &handshake.applied_log_id) ||
      handshake.applied_log_id < 0) {
    return Status::ParseError("bad applied log id: " + fields[0]);
  }
  if (fields[1] != "0" && fields[1] != "1") {
    return Status::ParseError("bad have_state flag: " + fields[1]);
  }
  handshake.have_state = fields[1] == "1";
  if (!ParseUint64Text(fields[2], &handshake.load_generation)) {
    return Status::ParseError("bad load generation: " + fields[2]);
  }
  return handshake;
}

ShipDecision DecideShippedQuery(int64_t applied_log_id, int64_t record_id) {
  if (record_id <= applied_log_id) return ShipDecision::kDuplicate;
  if (record_id == applied_log_id + 1) return ShipDecision::kApply;
  return ShipDecision::kResync;
}

// --- ReplicationHub ---

ReplicationHub::ReplicationHub(size_t max_buffered_records)
    : max_buffered_records_(std::max<size_t>(1, max_buffered_records)) {}

void ReplicationHub::RegisterFollower(
    uint64_t conn_id, int64_t acked_log_id,
    std::vector<std::string> backlog_frames) {
  std::lock_guard<std::mutex> lock(mutex_);
  Follower& follower = followers_[conn_id];
  follower.acked = acked_log_id;
  follower.queue.clear();
  follower.queued_bytes = 0;
  for (auto& frame : backlog_frames) {
    follower.queued_bytes += frame.size();
    follower.queue.push_back(std::move(frame));
  }
  followers_active_.store(followers_.size(), std::memory_order_relaxed);
}

void ReplicationHub::DropConnection(uint64_t conn_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (followers_.erase(conn_id) == 0) return;
  followers_active_.store(followers_.size(), std::memory_order_relaxed);
  // Quorum shrinks with membership; waiters recompute over survivors.
  ack_cv_.notify_all();
}

bool ReplicationHub::IsFollower(uint64_t conn_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return followers_.count(conn_id) > 0;
}

PublishOutcome ReplicationHub::Ship(int64_t log_id,
                                    const std::string& frame) {
  PublishOutcome outcome;
  std::lock_guard<std::mutex> lock(mutex_);
  if (log_id > 0) {
    last_shipped_.store(log_id, std::memory_order_relaxed);
    if (ship_times_.size() < kMaxShipTimes) {
      ship_times_[log_id] = Clock::now();
    }
  }
  for (auto it = followers_.begin(); it != followers_.end();) {
    Follower& follower = it->second;
    if (follower.queue.size() >= max_buffered_records_) {
      // Bounded divergence: a follower that cannot drain its queue is
      // cut loose now and re-syncs from its durable position later.
      outcome.evict_conns.push_back(it->first);
      followers_evicted_.Increment();
      it = followers_.erase(it);
      continue;
    }
    follower.queued_bytes += frame.size();
    follower.queue.push_back(frame);
    outcome.ready_conns.push_back(it->first);
    ++it;
  }
  if (!outcome.evict_conns.empty()) {
    followers_active_.store(followers_.size(), std::memory_order_relaxed);
    ack_cv_.notify_all();
  }
  records_shipped_.Increment();
  bytes_shipped_.Increment(frame.size());
  return outcome;
}

void ReplicationHub::Ack(uint64_t conn_id, int64_t log_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = followers_.find(conn_id);
  if (it == followers_.end()) return;
  acks_received_.Increment();
  if (log_id <= it->second.acked) return;
  it->second.acked = log_id;
  auto shipped = ship_times_.find(log_id);
  if (shipped != ship_times_.end()) {
    it->second.last_ack_latency_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - shipped->second)
            .count();
  }
  // Trim ship times below the slowest follower's ack.
  int64_t min_acked = log_id;
  for (const auto& entry : followers_) {
    min_acked = std::min(min_acked, entry.second.acked);
  }
  ship_times_.erase(ship_times_.begin(),
                    ship_times_.lower_bound(min_acked + 1));
  ack_cv_.notify_all();
}

Status ReplicationHub::WaitForAcks(int64_t log_id, ReplAckPolicy policy,
                                   std::chrono::milliseconds timeout) {
  if (policy == ReplAckPolicy::kNone) return Status::Ok();
  std::unique_lock<std::mutex> lock(mutex_);
  auto satisfied = [&] {
    size_t need = policy == ReplAckPolicy::kAll
                      ? followers_.size()
                      : (followers_.size() + 1) / 2;
    size_t have = 0;
    for (const auto& entry : followers_) {
      if (entry.second.acked >= log_id) ++have;
    }
    return have >= need;
  };
  if (!ack_cv_.wait_for(lock, timeout, satisfied)) {
    ack_wait_timeouts_.Increment();
    return Status::DeadlineExceeded(
        "replication ack timeout at log id " + std::to_string(log_id) +
        " under policy " + ReplAckPolicyName(policy) +
        " (the write is committed locally but under-replicated)");
  }
  return Status::Ok();
}

size_t ReplicationHub::DrainFrames(uint64_t conn_id, size_t max_bytes,
                                   std::string* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = followers_.find(conn_id);
  if (it == followers_.end()) return 0;
  Follower& follower = it->second;
  size_t frames = 0;
  size_t appended = 0;
  while (!follower.queue.empty() && appended < max_bytes) {
    const std::string& frame = follower.queue.front();
    out->append(frame);
    appended += frame.size();
    follower.queued_bytes -= frame.size();
    follower.queue.pop_front();
    ++frames;
  }
  return frames;
}

bool ReplicationHub::HasPending(uint64_t conn_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = followers_.find(conn_id);
  return it != followers_.end() && !it->second.queue.empty();
}

size_t ReplicationHub::TotalPending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const auto& entry : followers_) {
    total += entry.second.queue.size();
  }
  return total;
}

std::string ReplicationHub::MetricsJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t shipped = last_shipped_.load(std::memory_order_relaxed);
  std::string json = "{";
  json += "\"last_shipped\":" + std::to_string(shipped);
  json += ",\"followers_active\":" + std::to_string(followers_.size());
  json +=
      ",\"records_shipped\":" + std::to_string(records_shipped_.value());
  json += ",\"bytes_shipped\":" + std::to_string(bytes_shipped_.value());
  json += ",\"acks_received\":" + std::to_string(acks_received_.value());
  json += ",\"ack_wait_timeouts\":" +
          std::to_string(ack_wait_timeouts_.value());
  json += ",\"followers_evicted\":" +
          std::to_string(followers_evicted_.value());
  json += ",\"followers\":[";
  bool first = true;
  for (const auto& entry : followers_) {
    if (!first) json += ",";
    first = false;
    const Follower& follower = entry.second;
    int64_t lag = shipped - follower.acked;
    json += "{\"conn_id\":" + std::to_string(entry.first);
    json += ",\"acked\":" + std::to_string(follower.acked);
    json += ",\"lag_records\":" + std::to_string(lag < 0 ? 0 : lag);
    json += ",\"lag_bytes\":" + std::to_string(follower.queued_bytes);
    json += ",\"last_ack_latency_ms\":" +
            std::to_string(follower.last_ack_latency_ms);
    json += "}";
  }
  json += "]}";
  return json;
}

// --- ReplicaSession ---

ReplicaSession::ReplicaSession(std::string upstream, ReplicaApplier applier,
                               ReplicaSessionOptions options)
    : applier_(std::move(applier)),
      options_(options),
      upstream_(std::move(upstream)) {}

ReplicaSession::~ReplicaSession() { Stop(); }

void ReplicaSession::Start() {
  if (started_.exchange(true)) return;
  stop_.store(false);
  thread_ = std::thread([this] { Run(); });
}

void ReplicaSession::Stop() {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  started_.store(false);
}

void ReplicaSession::Repoint(const std::string& upstream) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (upstream == upstream_) return;
  upstream_ = upstream;
  repoint_pending_ = true;
}

std::string ReplicaSession::upstream() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return upstream_;
}

std::string ReplicaSession::MetricsJson() const {
  std::string json = "{";
  json += "\"upstream\":\"" + upstream() + "\"";
  json += ",\"connected\":" + std::string(connected() ? "true" : "false");
  json += ",\"reconnects\":" + std::to_string(reconnects_.value());
  json += ",\"resyncs\":" + std::to_string(resyncs_.value());
  json +=
      ",\"records_applied\":" + std::to_string(records_applied_.value());
  json += ",\"bytes_received\":" + std::to_string(bytes_received_.value());
  json += ",\"apply_errors\":" + std::to_string(apply_errors_.value());
  json += "}";
  return json;
}

bool ReplicaSession::SleepReconnectBackoff(RetryBudget* budget) {
  auto delay = budget->NextDelay();
  // An exhausted budget only means the doubling hit its cap; keep
  // retrying at the cap — a replica never gives up on its primary.
  int64_t millis =
      delay.has_value() ? delay->count() : options_.backoff.max_backoff.count();
  while (millis > 0 && !stop_.load()) {
    int64_t slice = std::min<int64_t>(millis, kBackoffSliceMillis);
    std::this_thread::sleep_for(std::chrono::milliseconds(slice));
    millis -= slice;
  }
  return !stop_.load();
}

bool ReplicaSession::SendAck(int fd, int64_t applied) {
  Message ack{MessageType::kReplicateAckRequest,
              EncodeFields({std::to_string(applied)}), WireVersion::kV2};
  auto deadline = Clock::now() + options_.connect_timeout;
  return SendAllFd(fd, EncodeFrame(ack), deadline).ok();
}

void ReplicaSession::ApplyEvent(const ReplicateEvent& event, int fd,
                                bool* resync) {
  switch (event.kind) {
    case ReplicateEvent::Kind::kWal: {
      querylog::WalRecordType type;
      std::string payload;
      size_t consumed = 0;
      auto decoded = querylog::DecodeWalRecord(event.wal_record, &type,
                                               &payload, &consumed);
      if (!decoded.ok() || !*decoded ||
          consumed != event.wal_record.size()) {
        // Corrupt or truncated on the stream; never apply past it.
        resyncs_.Increment();
        *resync = true;
        return;
      }
      if (type == querylog::WalRecordType::kCheckpoint) {
        // Checkpoint markers delimit the primary's WAL rotation; they
        // carry no log entries, so validate and move on.
        return;
      }
      auto entry = querylog::DecodeQueryWalPayload(payload);
      if (!entry.ok()) {
        resyncs_.Increment();
        *resync = true;
        return;
      }
      switch (DecideShippedQuery(applier_.applied_log_id(), entry->id)) {
        case ShipDecision::kDuplicate:
          // Catch-up overlap after a re-sync; already applied.
          return;
        case ShipDecision::kResync:
          resyncs_.Increment();
          *resync = true;
          return;
        case ShipDecision::kApply:
          break;
      }
      Status applied = applier_.apply_query(*entry);
      if (!applied.ok()) {
        apply_errors_.Increment();
        *resync = true;
        return;
      }
      records_applied_.Increment();
      if (!SendAck(fd, entry->id)) *resync = true;
      return;
    }
    case ReplicateEvent::Kind::kCheckpoint: {
      Status applied = applier_.apply_bootstrap(
          event.db_dump, event.log_dump, event.load_generation,
          event.stamp_micros);
      if (!applied.ok()) {
        apply_errors_.Increment();
        *resync = true;
        return;
      }
      records_applied_.Increment();
      if (!SendAck(fd, applier_.applied_log_id())) *resync = true;
      return;
    }
    case ReplicateEvent::Kind::kLoad: {
      Status applied = applier_.apply_load(
          event.load_kind, event.load_dump, event.load_generation,
          event.stamp_micros);
      if (!applied.ok()) {
        apply_errors_.Increment();
        *resync = true;
        return;
      }
      records_applied_.Increment();
      if (!SendAck(fd, applier_.applied_log_id())) *resync = true;
      return;
    }
  }
}

void ReplicaSession::Run() {
  RetryBudget budget(options_.backoff, /*max_retries=*/1 << 20,
                     Clock::time_point::max(), std::random_device{}());
  while (!stop_.load()) {
    std::string target;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      repoint_pending_ = false;
      target = upstream_;
    }
    auto endpoint = ParseHostPort(target);
    if (!endpoint.ok()) {
      if (!SleepReconnectBackoff(&budget)) return;
      continue;
    }
    auto fd = DialBlocking(endpoint->first, endpoint->second,
                           options_.connect_timeout);
    if (!fd.ok()) {
      if (!SleepReconnectBackoff(&budget)) return;
      continue;
    }
    reconnects_.Increment();
    ReplicateHandshake handshake;
    handshake.applied_log_id = applier_.applied_log_id();
    handshake.have_state = applier_.have_state();
    handshake.load_generation = applier_.load_generation();
    Message hello{MessageType::kReplicateRequest,
                  EncodeReplicateHandshake(handshake), WireVersion::kV2};
    if (!SendAllFd(*fd, EncodeFrame(hello),
                   Clock::now() + options_.connect_timeout)
             .ok()) {
      ::close(*fd);
      if (!SleepReconnectBackoff(&budget)) return;
      continue;
    }
    connected_.store(true);
    bool handshake_acked = false;
    bool resync = false;
    FrameReader reader(options_.max_frame_bytes);
    char buf[65536];
    while (!stop_.load() && !resync) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (repoint_pending_) break;
      }
      bool progressed = false;
      while (!resync) {
        auto next = reader.Next();
        if (!next.ok()) {
          resyncs_.Increment();
          resync = true;
          break;
        }
        if (!next->has_value()) break;
        Message message = std::move(**next);
        if (message.type == MessageType::kReplicateEvent) {
          auto event = DecodeReplicateEvent(message.payload);
          if (!event.ok()) {
            resyncs_.Increment();
            resync = true;
            break;
          }
          ApplyEvent(*event, *fd, &resync);
          progressed = true;
          continue;
        }
        if (message.type == MessageType::kOkResponse) {
          // The REPLICATE handshake ack. Events may legally arrive
          // before it (the loop can flush hub frames ahead of the
          // handler's response), so it carries no state we need.
          if (handshake_acked) {
            resync = true;  // unsolicited response: protocol violation
            break;
          }
          handshake_acked = true;
          continue;
        }
        if (message.type == MessageType::kErrorResponse) {
          Status error = DecodeErrorMessage(message.payload);
          std::string redirect = NotPrimaryAddress(error);
          if (!redirect.empty()) Repoint(redirect);
          resync = true;
          break;
        }
        resync = true;  // anything else is a protocol violation
        break;
      }
      if (stop_.load() || resync) break;
      if (progressed) continue;  // drain buffered frames before polling
      pollfd pfd{*fd, POLLIN, 0};
      int n = ::poll(&pfd, 1, kSessionPollMillis);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (n == 0) continue;
      ssize_t r = ::read(*fd, buf, sizeof(buf));
      if (r > 0) {
        reader.Feed(buf, static_cast<size_t>(r));
        bytes_received_.Increment(static_cast<uint64_t>(r));
        continue;
      }
      if (r == 0) break;  // primary closed (shutdown or our eviction)
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      break;
    }
    connected_.store(false);
    ::close(*fd);
    if (stop_.load()) return;
    bool repoint;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      repoint = repoint_pending_;
    }
    if (handshake_acked && !resync && repoint) {
      // A healthy stream being repointed reconnects immediately.
      budget = RetryBudget(options_.backoff, 1 << 20,
                           Clock::time_point::max(), budget.jitter_state());
      continue;
    }
    if (!SleepReconnectBackoff(&budget)) return;
    if (handshake_acked) {
      // Progress was made on this connection; start the next attempt's
      // backoff from the base again.
      budget = RetryBudget(options_.backoff, 1 << 20,
                           Clock::time_point::max(), budget.jitter_state());
    }
  }
}

}  // namespace net
}  // namespace auditdb
