#ifndef AUDITDB_NET_BACKOFF_H_
#define AUDITDB_NET_BACKOFF_H_

#include <chrono>
#include <cstdint>
#include <optional>

namespace auditdb {
namespace net {

/// Shared retry/backoff policy (docs/wire_protocol.md "Retries").
///
/// One RetryBudget covers one logical operation: every retryable failure
/// — refused connect, torn transport, replica failover — draws from the
/// same attempt counter and the same deadline, so wrapping one retry
/// mechanism in another can never multiply the configured budget. The
/// delay sequence is exponential with equal jitter: sleep in
/// [base/2, base], doubling base up to `max_backoff`. A retry whose
/// jittered delay would cross the deadline is not attempted at all —
/// the budget fails fast instead of sleeping past it.

struct BackoffOptions {
  /// First retry waits ~this long (jittered to [initial/2, initial]).
  std::chrono::milliseconds initial_backoff{10};
  /// Doubling cap.
  std::chrono::milliseconds max_backoff{500};
};

class RetryBudget {
 public:
  using Clock = std::chrono::steady_clock;

  /// `max_retries` extra attempts after the first (so max_retries + 1
  /// attempts total); `deadline` caps every attempt and sleep. `seed`
  /// feeds the jitter LCG — pass per-client state so a burst of clients
  /// hitting the same restarted server decorrelates.
  RetryBudget(BackoffOptions options, int max_retries,
              Clock::time_point deadline, uint64_t seed);

  /// The next jittered delay, or nullopt when retries are exhausted or
  /// the delay would cross the deadline. Consumes one retry and doubles
  /// the base on success.
  std::optional<std::chrono::milliseconds> NextDelay();

  /// NextDelay() + sleep. False (without sleeping) when the budget is
  /// exhausted — the caller should surface the last error.
  bool SleepBeforeRetry();

  int retries_used() const { return retries_used_; }
  int retries_left() const { return max_retries_ - retries_used_; }
  Clock::time_point deadline() const { return deadline_; }
  /// The advanced jitter state, so a caller owning a long-lived seed can
  /// carry decorrelation across budgets.
  uint64_t jitter_state() const { return jitter_state_; }

 private:
  BackoffOptions options_;
  int max_retries_;
  int retries_used_ = 0;
  std::chrono::milliseconds backoff_;
  Clock::time_point deadline_;
  uint64_t jitter_state_;
};

}  // namespace net
}  // namespace auditdb

#endif  // AUDITDB_NET_BACKOFF_H_
