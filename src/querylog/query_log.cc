#include "src/querylog/query_log.h"

namespace auditdb {

std::string LoggedQuery::ToString() const {
  return "#" + std::to_string(id) + " [" + timestamp.ToString() + " user=" +
         user + " role=" + role + " purpose=" + purpose + "] " + sql;
}

int64_t QueryLog::Append(std::string sql, Timestamp ts, std::string user,
                         std::string role, std::string purpose) {
  LoggedQuery entry;
  entry.sql = std::move(sql);
  entry.timestamp = ts;
  entry.user = std::move(user);
  entry.role = std::move(role);
  entry.purpose = std::move(purpose);
  entry.shape = sql::ComputeQueryShape(entry.sql);
  std::lock_guard<std::mutex> lock(shapes_mu_);
  ++shape_counts_[entry.shape];
  // Ids are dense from 1 in append order; assigning under the same
  // lock keeps id == position + 1 even with concurrent appenders.
  int64_t id = static_cast<int64_t>(entries_.size()) + 1;
  entry.id = id;
  entries_.Append(std::move(entry));
  return id;
}

Result<const LoggedQuery*> QueryLog::Get(int64_t id) const {
  if (id < 1 || static_cast<size_t>(id) > entries_.size()) {
    return Status::NotFound("no logged query with id " + std::to_string(id));
  }
  return &entries_.At(static_cast<size_t>(id - 1));
}

std::string QueryLog::Render(const LoggedQuery& entry) const {
  if (!redactor_) return entry.ToString();
  LoggedQuery redacted = entry;
  redacted.sql = redactor_(entry.sql);
  return redacted.ToString();
}

std::vector<const LoggedQuery*> QueryLog::InInterval(
    const TimeInterval& interval) const {
  size_t n = entries_.size();
  std::vector<const LoggedQuery*> out;
  for (size_t i = 0; i < n; ++i) {
    const LoggedQuery& entry = entries_.At(i);
    if (interval.Contains(entry.timestamp)) out.push_back(&entry);
  }
  return out;
}

size_t QueryLog::distinct_shapes() const {
  std::lock_guard<std::mutex> lock(shapes_mu_);
  return shape_counts_.size();
}

}  // namespace auditdb
