#include "src/querylog/query_log.h"

namespace auditdb {

std::string LoggedQuery::ToString() const {
  return "#" + std::to_string(id) + " [" + timestamp.ToString() + " user=" +
         user + " role=" + role + " purpose=" + purpose + "] " + sql;
}

int64_t QueryLog::Append(std::string sql, Timestamp ts, std::string user,
                         std::string role, std::string purpose) {
  LoggedQuery entry;
  entry.id = static_cast<int64_t>(entries_.size()) + 1;
  entry.sql = std::move(sql);
  entry.timestamp = ts;
  entry.user = std::move(user);
  entry.role = std::move(role);
  entry.purpose = std::move(purpose);
  entries_.push_back(std::move(entry));
  return entries_.back().id;
}

Result<const LoggedQuery*> QueryLog::Get(int64_t id) const {
  if (id < 1 || static_cast<size_t>(id) > entries_.size()) {
    return Status::NotFound("no logged query with id " + std::to_string(id));
  }
  return &entries_[static_cast<size_t>(id - 1)];
}

std::string QueryLog::Render(const LoggedQuery& entry) const {
  if (!redactor_) return entry.ToString();
  LoggedQuery redacted = entry;
  redacted.sql = redactor_(entry.sql);
  return redacted.ToString();
}

std::vector<const LoggedQuery*> QueryLog::InInterval(
    const TimeInterval& interval) const {
  std::vector<const LoggedQuery*> out;
  for (const auto& entry : entries_) {
    if (interval.Contains(entry.timestamp)) out.push_back(&entry);
  }
  return out;
}

}  // namespace auditdb
