#ifndef AUDITDB_QUERYLOG_WAL_H_
#define AUDITDB_QUERYLOG_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/io/file.h"
#include "src/querylog/query_log.h"

namespace auditdb {
namespace querylog {

/// Write-ahead log of query-log records (docs/durability.md). The WAL
/// is a flat file of length-prefixed, CRC32C-framed records:
///
///   offset  size  field
///   0       4     masked CRC32C of [type byte + payload], little-endian
///   4       4     payload length, little-endian uint32
///   8       1     record type byte
///   9       n     payload
///
/// Appends are ack'd according to the fsync policy; the reader replays
/// the longest valid prefix and reports how much torn/corrupt tail it
/// dropped. Any record whose CRC, type, or length fails validation ends
/// the replay — nothing after the first bad record is trusted, so a
/// torn tail can never smuggle a corrupt record into the store.

enum class WalRecordType : uint8_t {
  /// One appended query-log entry. Payload is the dump format's QUERY
  /// line body (io::EscapeField-escaped pipe-separated fields):
  /// `id|timestamp_micros|user|role|purpose|sql`.
  kQuery = 'Q',
  /// First record of every WAL: names the snapshot this log extends.
  /// Payload: `checkpoint_seq|last_log_id`.
  kCheckpoint = 'C',
};

bool IsKnownWalRecordType(uint8_t byte);

/// When an Append() is made crash-durable:
///   kAlways  fdatasync before returning (an OK Append survives kill -9)
///   kEveryN  fdatasync every N appends (bounded loss window)
///   kNever   leave it to the OS (fastest, crash loses the page cache)
enum class FsyncPolicy { kAlways, kEveryN, kNever };

/// Parses "always", "every_n:N" / "everyN" forms, "never".
Result<FsyncPolicy> ParseFsyncPolicy(const std::string& text,
                                     size_t* every_n);
const char* FsyncPolicyName(FsyncPolicy policy);

struct WalWriterOptions {
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  /// Sync cadence under kEveryN.
  size_t every_n = 64;
};

/// Encodes one framed record (exposed for tests and the bench).
std::string EncodeWalRecord(WalRecordType type, std::string_view payload);

/// Validates and decodes the first framed record in `data` (the exact
/// inverse of EncodeWalRecord — the replication stream ships raw framed
/// bytes and the follower re-validates them with this).
///   Ok(true)   one record decoded; *consumed bytes were used
///   Ok(false)  `data` holds only a partial record — feed more
///   error      CRC/type/length validation failed (corrupt record)
Result<bool> DecodeWalRecord(std::string_view data, WalRecordType* type,
                             std::string* payload, size_t* consumed);

/// Renders / parses the kQuery payload (the dump QUERY line body).
std::string EncodeQueryWalPayload(const LoggedQuery& entry);
Result<LoggedQuery> DecodeQueryWalPayload(const std::string& payload);

/// Appender over one WAL file. Not thread-safe; the durable store
/// serializes access under its writer lock.
class WalWriter {
 public:
  /// `truncate` starts a fresh log; otherwise appends after a recovered
  /// valid prefix (the caller must have truncated any torn tail first).
  static Result<std::unique_ptr<WalWriter>> Open(
      io::Env* env, const std::string& path, WalWriterOptions options,
      bool truncate = true);

  /// Frames, appends, and syncs per policy. On OK under kAlways the
  /// record is crash-durable.
  Status Append(WalRecordType type, std::string_view payload);
  /// Forces an fdatasync regardless of policy.
  Status Sync();
  Status Close();

  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t records_written() const { return records_written_; }

 private:
  WalWriter(std::unique_ptr<io::WritableFile> file, WalWriterOptions options,
            uint64_t existing_bytes);

  std::unique_ptr<io::WritableFile> file_;
  WalWriterOptions options_;
  uint64_t bytes_written_;  // includes a recovered prefix on reopen
  uint64_t records_written_ = 0;
  size_t unsynced_records_ = 0;
};

struct WalReplayStats {
  /// Valid records delivered to the callback.
  uint64_t records_recovered = 0;
  /// Bytes of torn/corrupt tail after the valid prefix.
  uint64_t torn_tail_bytes = 0;
  /// Byte length of the valid prefix (the safe truncation point).
  uint64_t valid_prefix_bytes = 0;
  bool tail_truncated() const { return torn_tail_bytes > 0; }
};

/// Replays every valid record in order into `callback`, stopping at the
/// first torn or corrupt record (everything after it is dropped and
/// counted in `stats`). A missing file replays zero records. A non-OK
/// callback status aborts the replay and is returned as-is.
Status ReplayWal(
    io::Env* env, const std::string& path,
    const std::function<Status(WalRecordType, const std::string&)>& callback,
    WalReplayStats* stats);

/// Truncates the WAL file to its valid prefix so a writer can append
/// after recovery without leaving garbage mid-file. No-op when the
/// tail is clean or the file is missing.
Status TruncateWalToValidPrefix(io::Env* env, const std::string& path,
                                const WalReplayStats& stats);

/// A tailing reader over a live WAL file: the shipping side of
/// replication follows the writer record-by-record without ever holding
/// the file open (each Poll re-reads from the cursor offset, so it can
/// race both an appender and a TruncateWalToValidPrefix).
///
/// Poll() returns:
///   Ok(true)   one CRC-valid record decoded; the cursor advanced
///   Ok(false)  no complete valid record at the cursor yet (clean EOF,
///              or a torn/corrupt tail that a concurrent truncate may
///              still repair) — poll again later
///   OutOfRange the file shrank below the cursor (truncated prefix or
///              rotated WAL): the reader's position is gone and it must
///              re-sync from a fresh position
///   other      I/O failure
class WalCursor {
 public:
  WalCursor(io::Env* env, std::string path);

  Result<bool> Poll(WalRecordType* type, std::string* payload);
  /// Same, but also hands back the raw framed bytes (what replication
  /// ships).
  Result<bool> Poll(WalRecordType* type, std::string* payload,
                    std::string* framed);

  uint64_t offset() const { return offset_; }
  uint64_t records_read() const { return records_read_; }
  /// Repositions (e.g. after re-sync onto a rotated WAL).
  void Seek(const std::string& path, uint64_t offset);

 private:
  io::Env* env_;
  std::string path_;
  uint64_t offset_ = 0;
  uint64_t records_read_ = 0;
};

}  // namespace querylog
}  // namespace auditdb

#endif  // AUDITDB_QUERYLOG_WAL_H_
