#ifndef AUDITDB_QUERYLOG_QUERY_LOG_H_
#define AUDITDB_QUERYLOG_QUERY_LOG_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/append_log.h"
#include "src/common/status.h"
#include "src/common/timestamp.h"
#include "src/sql/query_shape.h"

namespace auditdb {

/// One entry of the query log. During normal operation the text of every
/// query processed by the database is logged with annotations: execution
/// time, the submitting user, and the role and purpose under which the
/// access was authorized (the Hippocratic-database access metadata the
/// paper's limiting parameters filter on).
struct LoggedQuery {
  int64_t id = 0;
  std::string sql;
  Timestamp timestamp;
  std::string user;
  std::string role;
  std::string purpose;
  /// Structural fingerprint of `sql`, computed once at append time.
  /// Entries with equal shapes lex to the same token stream, so audits
  /// parse/screen one representative per shape instead of every entry.
  sql::QueryShape shape;

  std::string ToString() const;
};

/// Rewrites query text for human/wire display (the policy layer's
/// sensitive-value redaction). Must be pure and thread-safe.
using SqlRedactor = std::function<std::string(const std::string& sql)>;

/// Append-only query log. Entries live in a chunked append-only store:
/// a pinned audit captures size() once and reads entries [0, size)
/// wait-free while the server keeps logging new queries.
class QueryLog {
 public:
  QueryLog() = default;
  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  /// Appends and assigns a log id; returns the id. Computes the entry's
  /// structural shape as part of the append (the only lex this text ever
  /// gets on the audit path).
  int64_t Append(std::string sql, Timestamp ts, std::string user,
                 std::string role, std::string purpose);

  /// Entries published so far; entries below this index are immutable.
  size_t size() const { return entries_.size(); }

  /// Entry `i` (0-based position, not id); requires observed size() > i.
  const LoggedQuery& Entry(size_t i) const { return entries_.At(i); }

  /// The id the next Append will assign (ids are dense from 1), so a
  /// write-ahead log can frame the record before the in-memory append.
  int64_t next_id() const { return static_cast<int64_t>(entries_.size()) + 1; }

  /// Entry by id, or NotFound.
  Result<const LoggedQuery*> Get(int64_t id) const;

  /// Entries whose timestamps fall in the closed interval (the DURING
  /// clause of an audit expression).
  std::vector<const LoggedQuery*> InInterval(const TimeInterval& interval)
      const;

  /// Number of distinct structural shapes among logged entries. The
  /// dedup ratio (size() / distinct_shapes()) is how much of the backlog
  /// the shape-incremental screen avoids re-processing.
  size_t distinct_shapes() const;

  /// Installs the display redactor. The stored entries keep the
  /// unredacted text — audits must run over what actually executed —
  /// but everything rendered for humans or the wire goes through
  /// Render/RenderSql. Set before the log is shared across threads.
  void SetRedactor(SqlRedactor redactor) { redactor_ = std::move(redactor); }
  bool has_redactor() const { return static_cast<bool>(redactor_); }

  /// The entry's SQL as it may be displayed (redacted when a redactor
  /// is installed).
  std::string RenderSql(const LoggedQuery& entry) const {
    return redactor_ ? redactor_(entry.sql) : entry.sql;
  }

  /// LoggedQuery::ToString with the display redaction applied;
  /// byte-identical to ToString when no redactor is installed.
  std::string Render(const LoggedQuery& entry) const;

 private:
  AppendOnlyLog<LoggedQuery> entries_;
  mutable std::mutex shapes_mu_;
  std::unordered_map<sql::QueryShape, uint64_t, sql::QueryShapeHash>
      shape_counts_;
  SqlRedactor redactor_;
};

}  // namespace auditdb

#endif  // AUDITDB_QUERYLOG_QUERY_LOG_H_
