#ifndef AUDITDB_QUERYLOG_QUERY_LOG_H_
#define AUDITDB_QUERYLOG_QUERY_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/timestamp.h"

namespace auditdb {

/// One entry of the query log. During normal operation the text of every
/// query processed by the database is logged with annotations: execution
/// time, the submitting user, and the role and purpose under which the
/// access was authorized (the Hippocratic-database access metadata the
/// paper's limiting parameters filter on).
struct LoggedQuery {
  int64_t id = 0;
  std::string sql;
  Timestamp timestamp;
  std::string user;
  std::string role;
  std::string purpose;

  std::string ToString() const;
};

/// Append-only query log.
class QueryLog {
 public:
  QueryLog() = default;

  /// Appends and assigns a log id; returns the id.
  int64_t Append(std::string sql, Timestamp ts, std::string user,
                 std::string role, std::string purpose);

  const std::vector<LoggedQuery>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  /// The id the next Append will assign (ids are dense from 1), so a
  /// write-ahead log can frame the record before the in-memory append.
  int64_t next_id() const { return static_cast<int64_t>(entries_.size()) + 1; }

  /// Entry by id, or NotFound.
  Result<const LoggedQuery*> Get(int64_t id) const;

  /// Entries whose timestamps fall in the closed interval (the DURING
  /// clause of an audit expression).
  std::vector<const LoggedQuery*> InInterval(const TimeInterval& interval)
      const;

 private:
  std::vector<LoggedQuery> entries_;
};

}  // namespace auditdb

#endif  // AUDITDB_QUERYLOG_QUERY_LOG_H_
