#include "src/querylog/wal.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "src/io/checksum.h"
#include "src/io/dump.h"

namespace auditdb {
namespace querylog {

namespace {

/// crc(4) + len(4) + type(1).
constexpr size_t kWalHeaderBytes = 9;
/// Sanity cap on one record's payload: a corrupt length field must not
/// drive a multi-gigabyte allocation. Far above any real record (SQL
/// text plus annotations).
constexpr uint32_t kMaxWalPayloadBytes = 64u << 20;

void PutFixed32(std::string* out, uint32_t v) {
  char buf[4] = {static_cast<char>(v & 0xff),
                 static_cast<char>((v >> 8) & 0xff),
                 static_cast<char>((v >> 16) & 0xff),
                 static_cast<char>((v >> 24) & 0xff)};
  out->append(buf, 4);
}

uint32_t GetFixed32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

bool ParseInt64Text(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

}  // namespace

bool IsKnownWalRecordType(uint8_t byte) {
  return byte == static_cast<uint8_t>(WalRecordType::kQuery) ||
         byte == static_cast<uint8_t>(WalRecordType::kCheckpoint);
}

Result<FsyncPolicy> ParseFsyncPolicy(const std::string& text,
                                     size_t* every_n) {
  if (text == "always") return FsyncPolicy::kAlways;
  if (text == "never") return FsyncPolicy::kNever;
  if (text.rfind("every_n", 0) == 0) {
    if (text.size() > 8 && text[7] == ':') {
      errno = 0;
      char* end = nullptr;
      unsigned long long n = std::strtoull(text.c_str() + 8, &end, 10);
      if (errno == 0 && *end == '\0' && n > 0) {
        *every_n = static_cast<size_t>(n);
        return FsyncPolicy::kEveryN;
      }
    } else if (text.size() == 7) {
      return FsyncPolicy::kEveryN;  // keep the default cadence
    }
  }
  return Status::InvalidArgument(
      "fsync policy must be always | every_n[:N] | never, got: " + text);
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kEveryN:
      return "every_n";
    case FsyncPolicy::kNever:
      return "never";
  }
  return "unknown";
}

std::string EncodeWalRecord(WalRecordType type, std::string_view payload) {
  std::string out;
  out.reserve(kWalHeaderBytes + payload.size());
  std::string body;
  body.reserve(1 + payload.size());
  body.push_back(static_cast<char>(type));
  body.append(payload);
  PutFixed32(&out, io::MaskCrc(io::Crc32c(body)));
  PutFixed32(&out, static_cast<uint32_t>(payload.size()));
  out.append(body);
  return out;
}

Result<bool> DecodeWalRecord(std::string_view data, WalRecordType* type,
                             std::string* payload, size_t* consumed) {
  if (data.size() < kWalHeaderBytes) return false;
  uint32_t stored_crc = io::UnmaskCrc(GetFixed32(data.data()));
  uint32_t payload_len = GetFixed32(data.data() + 4);
  if (payload_len > kMaxWalPayloadBytes) {
    return Status::ParseError("corrupt WAL record length " +
                              std::to_string(payload_len));
  }
  if (data.size() - kWalHeaderBytes < payload_len) return false;
  const char* body = data.data() + 8;  // type byte + payload
  if (io::Crc32c(body, 1 + payload_len) != stored_crc) {
    return Status::ParseError("WAL record CRC mismatch");
  }
  uint8_t type_byte = static_cast<uint8_t>(body[0]);
  if (!IsKnownWalRecordType(type_byte)) {
    return Status::ParseError("unknown WAL record type byte " +
                              std::to_string(type_byte));
  }
  *type = static_cast<WalRecordType>(type_byte);
  payload->assign(body + 1, payload_len);
  *consumed = kWalHeaderBytes + payload_len;
  return true;
}

std::string EncodeQueryWalPayload(const LoggedQuery& entry) {
  return std::to_string(entry.id) + "|" +
         std::to_string(entry.timestamp.micros()) + "|" +
         io::EscapeField(entry.user) + "|" + io::EscapeField(entry.role) +
         "|" + io::EscapeField(entry.purpose) + "|" +
         io::EscapeField(entry.sql);
}

Result<LoggedQuery> DecodeQueryWalPayload(const std::string& payload) {
  auto fields = io::SplitEscapedFields(payload);
  if (fields.size() != 6) {
    return Status::ParseError("query WAL payload needs 6 fields, got " +
                              std::to_string(fields.size()));
  }
  LoggedQuery entry;
  int64_t micros;
  if (!ParseInt64Text(fields[0], &entry.id)) {
    return Status::ParseError("bad WAL query id: " + fields[0]);
  }
  if (!ParseInt64Text(fields[1], &micros)) {
    return Status::ParseError("bad WAL query timestamp: " + fields[1]);
  }
  entry.timestamp = Timestamp(micros);
  auto user = io::UnescapeField(fields[2]);
  auto role = io::UnescapeField(fields[3]);
  auto purpose = io::UnescapeField(fields[4]);
  auto sql = io::UnescapeField(fields[5]);
  if (!user.ok()) return user.status();
  if (!role.ok()) return role.status();
  if (!purpose.ok()) return purpose.status();
  if (!sql.ok()) return sql.status();
  entry.user = std::move(*user);
  entry.role = std::move(*role);
  entry.purpose = std::move(*purpose);
  entry.sql = std::move(*sql);
  return entry;
}

WalWriter::WalWriter(std::unique_ptr<io::WritableFile> file,
                     WalWriterOptions options, uint64_t existing_bytes)
    : file_(std::move(file)), options_(options),
      bytes_written_(existing_bytes) {}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(io::Env* env,
                                                   const std::string& path,
                                                   WalWriterOptions options,
                                                   bool truncate) {
  uint64_t existing = 0;
  if (!truncate) {
    auto size = env->GetFileSize(path);
    if (size.ok()) existing = *size;
  }
  AUDITDB_ASSIGN_OR_RETURN(auto file, env->NewWritableFile(path, truncate));
  return std::unique_ptr<WalWriter>(
      new WalWriter(std::move(file), options, existing));
}

Status WalWriter::Append(WalRecordType type, std::string_view payload) {
  if (payload.size() > kMaxWalPayloadBytes) {
    return Status::OutOfRange("WAL record payload of " +
                              std::to_string(payload.size()) +
                              " bytes exceeds the record cap");
  }
  std::string framed = EncodeWalRecord(type, payload);
  AUDITDB_RETURN_IF_ERROR(file_->Append(framed));
  bytes_written_ += framed.size();
  ++records_written_;
  switch (options_.fsync) {
    case FsyncPolicy::kAlways:
      return file_->Sync();
    case FsyncPolicy::kEveryN:
      if (++unsynced_records_ >= options_.every_n) {
        unsynced_records_ = 0;
        return file_->Sync();
      }
      return Status::Ok();
    case FsyncPolicy::kNever:
      return Status::Ok();
  }
  return Status::Ok();
}

Status WalWriter::Sync() {
  unsynced_records_ = 0;
  return file_->Sync();
}

Status WalWriter::Close() { return file_->Close(); }

Status ReplayWal(
    io::Env* env, const std::string& path,
    const std::function<Status(WalRecordType, const std::string&)>& callback,
    WalReplayStats* stats) {
  *stats = WalReplayStats{};
  if (!env->FileExists(path)) return Status::Ok();
  AUDITDB_ASSIGN_OR_RETURN(std::string data, env->ReadFileToString(path));
  size_t offset = 0;
  while (true) {
    if (data.size() - offset < kWalHeaderBytes) break;  // torn header
    uint32_t stored_crc = io::UnmaskCrc(GetFixed32(data.data() + offset));
    uint32_t payload_len = GetFixed32(data.data() + offset + 4);
    if (payload_len > kMaxWalPayloadBytes ||
        data.size() - offset - kWalHeaderBytes < payload_len) {
      break;  // corrupt length or torn payload
    }
    const char* body = data.data() + offset + 8;  // type byte + payload
    if (io::Crc32c(body, 1 + payload_len) != stored_crc) break;
    uint8_t type_byte = static_cast<uint8_t>(body[0]);
    if (!IsKnownWalRecordType(type_byte)) break;
    std::string payload(body + 1, payload_len);
    AUDITDB_RETURN_IF_ERROR(
        callback(static_cast<WalRecordType>(type_byte), payload));
    offset += kWalHeaderBytes + payload_len;
    ++stats->records_recovered;
  }
  stats->valid_prefix_bytes = offset;
  stats->torn_tail_bytes = data.size() - offset;
  return Status::Ok();
}

Status TruncateWalToValidPrefix(io::Env* env, const std::string& path,
                                const WalReplayStats& stats) {
  if (stats.torn_tail_bytes == 0 || !env->FileExists(path)) {
    return Status::Ok();
  }
  return env->TruncateFile(path, stats.valid_prefix_bytes);
}

WalCursor::WalCursor(io::Env* env, std::string path)
    : env_(env), path_(std::move(path)) {}

void WalCursor::Seek(const std::string& path, uint64_t offset) {
  path_ = path;
  offset_ = offset;
}

Result<bool> WalCursor::Poll(WalRecordType* type, std::string* payload) {
  std::string framed;
  return Poll(type, payload, &framed);
}

Result<bool> WalCursor::Poll(WalRecordType* type, std::string* payload,
                             std::string* framed) {
  if (!env_->FileExists(path_)) {
    if (offset_ > 0) {
      return Status::OutOfRange("WAL file vanished beneath the cursor: " +
                                path_);
    }
    return false;
  }
  // Re-read each poll instead of holding the file open: the writer may
  // append and TruncateWalToValidPrefix may shrink the tail between
  // polls, and a stale descriptor would read through either.
  AUDITDB_ASSIGN_OR_RETURN(std::string data, env_->ReadFileToString(path_));
  if (data.size() < offset_) {
    return Status::OutOfRange(
        "WAL truncated beneath the cursor (file " +
        std::to_string(data.size()) + " bytes, cursor at " +
        std::to_string(offset_) + "): " + path_);
  }
  std::string_view tail(data.data() + offset_, data.size() - offset_);
  WalRecordType decoded_type;
  std::string decoded_payload;
  size_t consumed = 0;
  auto decoded =
      DecodeWalRecord(tail, &decoded_type, &decoded_payload, &consumed);
  if (!decoded.ok() || !*decoded) {
    // Partial record, or a torn/corrupt tail a concurrent
    // TruncateWalToValidPrefix may still repair — either way the valid
    // prefix ends here for now.
    return false;
  }
  *type = decoded_type;
  *payload = std::move(decoded_payload);
  framed->assign(tail.data(), consumed);
  offset_ += consumed;
  ++records_read_;
  return true;
}

}  // namespace querylog
}  // namespace auditdb
