/// Incident investigation on a realistic workload.
///
/// A hospital runs a Hippocratic database: a privacy policy authorizes
/// each (role, purpose) to read certain columns, every query is logged,
/// and backlog triggers capture all updates. A patient complains that
/// their diabetes diagnosis leaked. The investigator knows the leak did
/// not come from treatment staff (doctors and nurses acting for
/// treatment are authorized), so the audit uses the paper's limiting
/// parameters to exclude them and zero in on the remaining accesses —
/// then compares suspicion notions on the same expression.

#include <cstdio>

#include "src/audit/auditor.h"
#include "src/audit/suspicion.h"
#include "src/policy/policy.h"
#include "src/workload/generator.h"
#include "src/workload/hospital.h"

using namespace auditdb;

namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

void PrintReport(const char* label, const audit::AuditReport& report) {
  std::printf("%-22s %s\n", label, report.Summary().c_str());
}

}  // namespace

int main() {
  // --- Setup: database, policy, workload -----------------------------
  Database db;
  Backlog backlog;
  backlog.Attach(&db);
  workload::HospitalConfig hospital;
  hospital.num_patients = 200;
  hospital.seed = 2008;
  Status status = workload::PopulateHospital(&db, hospital, Ts(1));
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  // The privacy policy (used here to document which accesses were
  // authorized; the audit combs authorized accesses for the leak).
  PrivacyPolicy policy;
  policy.AddRule({"doctor", "treatment", "P-Health", {}});
  policy.AddRule({"doctor", "treatment", "P-Personal", {}});
  policy.AddRule({"nurse", "treatment", "P-Health", {"pid", "ward"}});
  policy.AddRule({"analyst", "research", "P-Health", {"disease"}});
  policy.AddRule({"clerk", "billing", "P-Employ", {}});

  QueryLog log;
  workload::WorkloadConfig config;
  config.num_queries = 500;
  config.seed = 99;
  config.start = Ts(1000);
  config.sensitive_fraction = 0.4;
  status = workload::GenerateWorkload(&log, config, hospital);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("logged %zu queries from %zu users\n", log.size(),
              config.users.size());

  // --- The audit ------------------------------------------------------
  audit::Auditor auditor(&db, &backlog, &log);
  const std::string base =
      "DURING 1/1/1970 to 2/1/1970 "
      "DATA-INTERVAL 1/1/1970 to 2/1/1970 "
      "AUDIT (name,disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease = 'diabetic'";

  // Unfiltered: every access in scope.
  auto everyone = auditor.Audit(base, Ts(1000000));
  if (!everyone.ok()) {
    std::fprintf(stderr, "%s\n", everyone.status().ToString().c_str());
    return 1;
  }
  PrintReport("all accesses:", *everyone);

  // Treatment staff excluded (Neg-Role-Purpose), per the investigation.
  auto filtered = auditor.Audit(
      "Neg-Role-Purpose (doctor,treatment) (nurse,treatment) " + base,
      Ts(1000000));
  if (!filtered.ok()) {
    std::fprintf(stderr, "%s\n", filtered.status().ToString().c_str());
    return 1;
  }
  PrintReport("minus treatment:", *filtered);

  // Single suspect (Pos-User-Identity).
  auto suspect = auditor.Audit("Pos-User-Identity eve " + base,
                               Ts(1000000));
  if (!suspect.ok()) {
    std::fprintf(stderr, "%s\n", suspect.status().ToString().c_str());
    return 1;
  }
  PrintReport("only eve:", *suspect);

  // --- Same target data, different suspicion notions ------------------
  std::printf("\nsuspicion notion comparison (same target data):\n");
  auto parsed = audit::ParseAudit(base, Ts(1000000));
  if (!parsed.ok()) return 1;
  if (!parsed->Qualify(db.catalog()).ok()) return 1;

  struct Notion {
    const char* name;
    audit::AuditExpression expr;
  };
  std::vector<Notion> notions;
  notions.push_back({"semantic", audit::MakeSemantic(*parsed)});
  notions.push_back({"weak-syntactic", audit::MakeWeakSyntactic(*parsed)});
  notions.push_back({"perfect-privacy", audit::MakePerfectPrivacy(*parsed)});
  notions.push_back({"threshold-10",
                     audit::MakeThresholdNotion(*parsed,
                                                audit::Threshold::N(10))});
  for (auto& notion : notions) {
    auto report = auditor.Audit(notion.expr);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-17s suspicious_queries=%zu batch=%s\n", notion.name,
                report->SuspiciousQueryIds().size(),
                report->batch_suspicious ? "yes" : "no");
  }

  // Authorized-but-flagged accesses are exactly the interesting ones:
  std::printf("\nflagged queries (minus treatment staff):\n");
  for (int64_t id : filtered->SuspiciousQueryIds()) {
    auto entry = log.Get(id);
    if (entry.ok()) std::printf("  %s\n", (*entry)->ToString().c_str());
  }
  return 0;
}
