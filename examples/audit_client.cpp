/// Remote auditing end to end: spin up a loopback auditd, run the
/// hospital fixture audit over the wire, and check the remote report is
/// byte-identical to the serial Auditor's.
///
/// Usage:
///   audit_client               self-contained: in-process server on an
///                              ephemeral port + identity check
///   audit_client HOST:PORT     client-only smoke against a running
///                              auditd (e.g. the CI ASan stage)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/audit/auditor.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/workload/generator.h"
#include "src/workload/hospital.h"

using namespace auditdb;

namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

const char kAudit[] =
    "DURING 1/1/1970 to 2/1/1970 "
    "DATA-INTERVAL 1/1/1970 to 2/1/1970 "
    "AUDIT (name,disease) FROM P-Personal, P-Health "
    "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'";

int RunRemoteOnly(const std::string& target) {
  auto colon = target.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "expected HOST:PORT, got %s\n", target.c_str());
    return 2;
  }
  net::AuditClient client(target.substr(0, colon),
                          static_cast<uint16_t>(
                              std::atoi(target.c_str() + colon + 1)));
  auto health = client.Health();
  if (!health.ok()) {
    std::fprintf(stderr, "health: %s\n",
                 health.status().ToString().c_str());
    return 1;
  }
  std::printf("health: %s\n", health->c_str());
  auto report = client.Audit(kAudit, Ts(1000000));
  if (!report.ok()) {
    std::fprintf(stderr, "audit: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", report->detailed.c_str());
  auto metrics = client.MetricsJson();
  if (metrics.ok()) std::printf("metrics: %s\n", metrics->c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) return RunRemoteOnly(argv[1]);

  // --- A hospital incident world, served over loopback ---------------
  Database db;
  Backlog backlog;
  backlog.Attach(&db);
  workload::HospitalConfig hospital;
  hospital.num_patients = 200;
  hospital.seed = 2008;
  Status status = workload::PopulateHospital(&db, hospital, Ts(1));
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  QueryLog log;
  workload::WorkloadConfig workload;
  workload.num_queries = 600;
  workload.start = Ts(100);
  status = workload::GenerateWorkload(&log, workload, hospital);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  service::AuditService audit_service(&db, &backlog, &log);
  net::AuditServer server(&audit_service, &db, &backlog, &log);
  status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("auditd on %s:%u (ephemeral)\n", server.host().c_str(),
              server.port());

  // --- The serial ground truth, then the same audit over the wire ----
  audit::Auditor auditor(&db, &backlog, &log);
  auto serial = auditor.Audit(kAudit, Ts(1000000));
  if (!serial.ok()) {
    std::fprintf(stderr, "%s\n", serial.status().ToString().c_str());
    return 1;
  }

  net::AuditClient client(server.host(), server.port());
  auto remote = client.Audit(kAudit, Ts(1000000));
  if (!remote.ok()) {
    std::fprintf(stderr, "remote audit: %s\n",
                 remote.status().ToString().c_str());
    return 1;
  }
  bool identical = remote->canonical == serial->CanonicalString();
  std::printf("%s", remote->detailed.c_str());
  std::printf("remote report vs serial Auditor: %s\n",
              identical ? "byte-identical" : "DIFFER (bug!)");

  // --- Live traffic: a remote query lands in the served audit log ----
  auto executed = client.ExecuteQuery(
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease = 'diabetic'",
      "mallory", "clerk", "billing", Ts(900000));
  if (!executed.ok()) {
    std::fprintf(stderr, "execute: %s\n",
                 executed.status().ToString().c_str());
    return 1;
  }
  std::printf("remote query logged as #%lld (%zu rows)\n",
              static_cast<long long>(executed->log_id),
              executed->num_rows);
  auto second = client.Audit(kAudit, Ts(1000000));
  if (second.ok()) {
    std::printf("audit after remote query: %zu logged (was %zu)\n",
                log.size(), static_cast<size_t>(workload.num_queries));
  }

  server.Shutdown();
  return identical ? 0 : 1;
}
