/// Online auditing (the paper's future work, Section 4).
///
/// Standing audit expressions screen queries as they arrive; after every
/// query each expression reports a suspicion rank (closeness value) in
/// [0,1] and fires the moment the accumulated batch fully accesses a
/// granule. Shows a slow-burn attack whose rank creeps up query by query
/// until the monitor fires — before any offline audit would have run.

#include <cstdio>

#include "src/audit/audit_parser.h"
#include "src/audit/online.h"
#include "src/workload/hospital.h"

using namespace auditdb;

namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

LoggedQuery Q(int64_t id, const std::string& sql, int64_t at) {
  LoggedQuery q;
  q.id = id;
  q.sql = sql;
  q.timestamp = Ts(at);
  q.user = "mallory";
  q.role = "clerk";
  q.purpose = "billing";
  return q;
}

}  // namespace

int main() {
  Database db;
  Status status = workload::BuildPaperDatabase(&db, Ts(1));
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  audit::OnlineAuditor monitor(&db);
  auto expr = audit::ParseAudit(
      "DURING 1/1/1970 to 2/1/1970 "
      "AUDIT (name,disease,address) "
      "FROM P-Personal, P-Health, P-Employ "
      "WHERE P-Personal.pid=P-Health.pid AND P-Health.pid=P-Employ.pid "
      "AND P-Personal.zipcode='145568' AND P-Employ.salary > 10000 "
      "AND P-Health.disease='diabetic'",
      Ts(1000));
  if (!expr.ok()) {
    std::fprintf(stderr, "%s\n", expr.status().ToString().c_str());
    return 1;
  }
  auto id = monitor.AddExpression(*expr);
  if (!id.ok()) {
    std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
    return 1;
  }
  std::printf("standing audit expression #%d registered\n\n", *id);

  // The slow-burn attack: each query looks harmless on its own.
  const struct {
    const char* description;
    const char* sql;
  } steps[] = {
      {"scout the ward layout (irrelevant)",
       "SELECT ward FROM P-Health WHERE ward = 'W14'"},
      {"names of the zip-code population",
       "SELECT name, pid FROM P-Personal WHERE zipcode = '145568'"},
      {"addresses of the same population",
       "SELECT address FROM P-Personal WHERE zipcode = '145568'"},
      {"diagnoses, joined to complete the disclosure",
       "SELECT disease FROM P-Personal, P-Health "
       "WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'"},
  };

  int64_t at = 100;
  int64_t qid = 1;
  for (const auto& step : steps) {
    auto screenings = monitor.Observe(Q(qid, step.sql, at));
    if (!screenings.ok()) {
      std::fprintf(stderr, "%s\n",
                   screenings.status().ToString().c_str());
      return 1;
    }
    const auto& s = (*screenings)[0];
    std::printf("q%lld %-45s rank=%.2f%s\n",
                static_cast<long long>(qid), step.description, s.rank,
                s.fired ? "  *** FIRED ***" : "");
    ++qid;
    at += 10;
  }

  auto final_state = monitor.Current();
  return final_state[0].fired ? 0 : 2;
}
