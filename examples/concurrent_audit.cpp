/// Concurrent auditing through the service layer.
///
/// A production audit deployment screens large query logs against
/// standing expressions continuously; the pipeline is embarrassingly
/// parallel across (standing expression × query-log range × database
/// version). This example stands up the concurrent audit service over a
/// generated hospital workload and shows:
///
///   1. a parallel audit run whose report is byte-identical
///      (CanonicalString) to the serial Auditor's,
///   2. batch screening of a standing-expression library, one job per
///      expression,
///   3. the service metrics (queue depth watermark, per-stage latency)
///      dumped as JSON.

#include <cstdio>

#include "src/audit/audit_parser.h"
#include "src/audit/auditor.h"
#include "src/service/audit_service.h"
#include "src/workload/generator.h"
#include "src/workload/hospital.h"

using namespace auditdb;

namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

const char kAudit[] =
    "DURING 1/1/1970 to 2/1/1970 "
    "DATA-INTERVAL 1/1/1970 to 2/1/1970 "
    "AUDIT (name,disease) FROM P-Personal, P-Health "
    "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'";

}  // namespace

int main() {
  // --- Setup: hospital database, backlog, generated query log --------
  Database db;
  Backlog backlog;
  backlog.Attach(&db);
  workload::HospitalConfig hospital;
  hospital.num_patients = 300;
  hospital.seed = 2008;
  Status status = workload::PopulateHospital(&db, hospital, Ts(1));
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  QueryLog log;
  workload::WorkloadConfig workload;
  workload.num_queries = 1500;
  workload.start = Ts(100);
  status = workload::GenerateWorkload(&log, workload, hospital);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  // --- 1. Serial baseline vs parallel service run --------------------
  audit::Auditor auditor(&db, &backlog, &log);
  auto serial = auditor.Audit(kAudit, Ts(1000000));
  if (!serial.ok()) {
    std::fprintf(stderr, "%s\n", serial.status().ToString().c_str());
    return 1;
  }
  std::printf("serial:   %s\n", serial->Summary().c_str());

  service::AuditServiceOptions options;
  options.pool.num_threads = 4;
  service::AuditService audit_service(&db, &backlog, &log, options);
  auto parallel = audit_service.Audit(kAudit, Ts(1000000));
  if (!parallel.ok()) {
    std::fprintf(stderr, "%s\n", parallel.status().ToString().c_str());
    return 1;
  }
  std::printf("parallel: %s\n", parallel->Summary().c_str());
  std::printf("deterministic merge: reports %s\n",
              serial->CanonicalString() == parallel->CanonicalString()
                  ? "identical"
                  : "DIFFER (bug!)");

  // --- 2. Standing-expression library screening ----------------------
  audit::ExpressionLibrary library(&db.catalog());
  const char* standing[] = {
      kAudit,
      "DURING 1/1/1970 to 2/1/1970 DATA-INTERVAL 1/1/1970 to 2/1/1970 "
      "AUDIT (name,salary) FROM P-Personal, P-Employ "
      "WHERE P-Personal.pid = P-Employ.pid",
      "DURING 1/1/1970 to 2/1/1970 DATA-INTERVAL 1/1/1970 to 2/1/1970 "
      "THRESHOLD 5 AUDIT (zipcode),[disease] FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid",
  };
  for (const char* text : standing) {
    auto expr = audit::ParseAudit(text, Ts(1000000));
    if (!expr.ok()) continue;
    auto added = library.Add(*expr);
    if (!added.ok()) {
      std::fprintf(stderr, "%s\n", added.status().ToString().c_str());
    }
  }
  std::printf("\nscreening %zu standing expressions:\n", library.size());
  for (const auto& screening : audit_service.ScreenLibrary(library)) {
    if (screening.status.ok()) {
      std::printf("  expr #%d: %s\n", screening.expression_id,
                  screening.report.Summary().c_str());
    } else {
      std::printf("  expr #%d: %s\n", screening.expression_id,
                  screening.status.ToString().c_str());
    }
  }

  // --- 3. Service metrics --------------------------------------------
  std::printf("\nmetrics: %s\n", audit_service.MetricsJson().c_str());
  return serial->CanonicalString() == parallel->CanonicalString() ? 0 : 1;
}
