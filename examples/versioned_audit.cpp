/// Data versions and DATA-INTERVAL (Section 3.1).
///
/// The paper's motivating ambiguity: after Reku's zip code is updated,
/// "the disease of patients in zip code 145568" means different things
/// on different database versions — Agrawal et al. read it against the
/// whole backlog, Motwani et al. against the current instance. The
/// unified model's DATA-INTERVAL clause makes the choice explicit. This
/// example shows the same audit over three different DATA-INTERVALs
/// producing three different verdict sets.

#include <cstdio>

#include "src/audit/auditor.h"
#include "src/audit/target_view.h"
#include "src/workload/hospital.h"

using namespace auditdb;

namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

}  // namespace

int main() {
  Database db;
  Backlog backlog;
  backlog.Attach(&db);
  Status status = workload::BuildPaperDatabase(&db, Ts(1));
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  QueryLog log;
  // t=100: a query reads diseases in zip 145568 (Reku + Lucy).
  log.Append(
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'",
      Ts(100), "alice", "doctor", "treatment");

  // t=200: Reku moves away; the zipcode column is updated (the backlog
  // records the old version).
  status = db.UpdateColumn("P-Personal", 12, "zipcode",
                           Value::String("500001"), Ts(200));
  if (!status.ok()) return 1;
  std::printf("t=200: Reku's zipcode updated 145568 -> 500001\n\n");

  // t=300: the same query again — now it only sees Lucy.
  log.Append(
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'",
      Ts(300), "bob", "doctor", "treatment");

  audit::Auditor auditor(&db, &backlog, &log);
  struct Variant {
    const char* label;
    const char* data_interval;
  };
  const Variant variants[] = {
      {"old version only  (t=100)",
       "DATA-INTERVAL 1/1/1970:00-01-40 to 1/1/1970:00-01-40 "},
      {"current version   (t=400)",
       "DATA-INTERVAL 1/1/1970:00-06-40 to 1/1/1970:00-06-40 "},
      {"all versions      (t=100..400)",
       "DATA-INTERVAL 1/1/1970:00-01-40 to 1/1/1970:00-06-40 "},
  };

  // Audit: who read Reku's disease while he lived in 145568? The name
  // pins the target tuple, so the data version decides whether the
  // predicate zipcode='145568' matches him at all.
  for (const auto& variant : variants) {
    std::string text = std::string("DURING 1/1/1970 to 2/1/1970 ") +
                       variant.data_interval +
                       "AUDIT (disease) FROM P-Personal, P-Health "
                       "WHERE P-Personal.pid = P-Health.pid "
                       "AND zipcode = '145568' AND name = 'Reku'";
    auto report = auditor.Audit(text, Ts(1000));
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s : |U|=%zu suspicious=[", variant.label,
                report->target_view_size);
    bool first = true;
    for (int64_t id : report->SuspiciousQueryIds()) {
      std::printf("%s#%lld", first ? "" : ", ",
                  static_cast<long long>(id));
      first = false;
    }
    std::printf("]\n");
  }

  // On the old version the first query is flagged (it read Reku's row);
  // on the current version U is empty — nobody can be suspicious for a
  // population that no longer exists; the spanning interval recovers the
  // old-version fact. Exactly the ambiguity the paper resolves.

  // Show the target view for the spanning interval, 145568 population:
  // both versions of the audited population appear, with tuple ids.
  auto expr = audit::ParseAudit(
      "DATA-INTERVAL 1/1/1970:00-01-40 to 1/1/1970:00-06-40 "
      "AUDIT (disease) FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'",
      Ts(1000));
  if (!expr.ok() || !expr->Qualify(db.catalog()).ok()) return 1;
  auto view = audit::ComputeTargetViewOverVersions(*expr, backlog);
  if (!view.ok()) return 1;
  std::printf("\ntarget data view U across versions:\n%s",
              view->ToString().c_str());
  return 0;
}
