/// Quickstart: the paper's running example end to end.
///
/// Builds the hospital database of Tables 1-3, logs a few user queries,
/// and audits them with the expression from the introduction:
///
///     AUDIT disease FROM Patients WHERE zipcode='118701'
///
/// (adapted to the paper's own three-table schema), under the default
/// suspicion notion (indispensable tuple, THRESHOLD 1).

#include <cstdio>

#include "src/audit/auditor.h"
#include "src/workload/hospital.h"

using namespace auditdb;

namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

}  // namespace

int main() {
  // 1. A database with backlog triggers attached before any data loads.
  Database db;
  Backlog backlog;
  backlog.Attach(&db);
  Status status = workload::BuildPaperDatabase(&db, Ts(1));
  if (!status.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // 2. Normal operation: every query is logged with its annotations.
  QueryLog log;
  log.Append(
      "SELECT name, disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'",
      Ts(100), "alice", "doctor", "treatment");
  log.Append("SELECT ward, doc-name FROM P-Health WHERE ward = 'W14'",
             Ts(200), "bob", "nurse", "treatment");
  log.Append(
      "SELECT zipcode FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND disease = 'cancer'",
      Ts(300), "carol", "analyst", "research");

  std::printf("query log:\n");
  for (size_t i = 0; i < log.size(); ++i) {
    std::printf("  %s\n", log.Entry(i).ToString().c_str());
  }

  // 3. A privacy complaint arrives: who saw disease data of patients in
  //    zip code 145568? The auditor formulates an audit expression.
  const std::string audit_text =
      "DURING 1/1/1970 to 2/1/1970 "
      "DATA-INTERVAL 1/1/1970 to 2/1/1970 "
      "AUDIT disease FROM P-Personal, P-Health "
      "WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'";
  std::printf("\naudit expression:\n%s\n", audit_text.c_str());

  // 4. Run the audit.
  audit::Auditor auditor(&db, &backlog, &log);
  auto report = auditor.Audit(audit_text, Ts(1000));
  if (!report.ok()) {
    std::fprintf(stderr, "audit failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%s\n", report->Summary().c_str());
  std::printf("\nper-query verdicts:\n");
  for (const auto& verdict : report->verdicts) {
    auto entry = log.Get(verdict.query_id);
    std::printf("  #%lld admitted=%d candidate=%d suspicious=%d : %s\n",
                static_cast<long long>(verdict.query_id),
                verdict.admitted ? 1 : 0, verdict.candidate ? 1 : 0,
                verdict.suspicious_alone ? 1 : 0,
                entry.ok() ? (*entry)->sql.c_str() : "?");
  }
  std::printf("\nevidence:\n%s", report->evidence.c_str());

  // Query #1 read disease data of the audited patients: suspicious.
  // Query #2 never touched disease or the audited rows: clean.
  // Query #3 touched disease but no cancer patient lives there: cleared
  // by the data-dependent phase (the paper's Section 2.1 example).
  return report->SuspiciousQueryIds() == std::vector<int64_t>{1} ? 0 : 2;
}
