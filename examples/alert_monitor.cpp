/// Streaming verdict alerts over the wire (docs/wire_protocol.md,
/// "Alerting"): the push-subscription counterpart of online_monitor.
///
/// A loopback AuditServer hosts the paper database. One client
/// SUBSCRIBEs to two standing audit expressions — the slow-burn
/// disclosure join and a THRESHOLD ALL tripwire on patient names —
/// while a second client plays the attacker, executing queries against
/// the server. Every rank change arrives as a server-initiated PUSH
/// frame; the handler stamps the delivery latency (query dispatched →
/// push handled) to show alerts land in well under a millisecond of
/// the query that caused them, long before any offline audit would
/// run.
///
/// Run: build/examples/alert_monitor

#include <chrono>
#include <cstdio>
#include <mutex>
#include <sstream>

#include "src/io/dump.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/workload/hospital.h"

using namespace auditdb;

namespace {

using Clock = std::chrono::steady_clock;

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

/// The disclosure the slow-burn attack assembles (see online_monitor).
const char kDisclosureAudit[] =
    "DURING 1/1/1970 to 2/1/1970 "
    "AUDIT (name,disease,address) "
    "FROM P-Personal, P-Health, P-Employ "
    "WHERE P-Personal.pid=P-Health.pid AND P-Health.pid=P-Employ.pid "
    "AND P-Personal.zipcode='145568' AND P-Employ.salary > 10000 "
    "AND P-Health.disease='diabetic'";

/// A coarse tripwire: any progress toward reading *every* patient name.
const char kNamesAudit[] =
    "DURING 1/1/1970 to 2/1/1970 THRESHOLD ALL "
    "AUDIT (name) FROM P-Personal";

}  // namespace

int main() {
  // A served world holding the paper database.
  Database db;
  Backlog backlog;
  QueryLog log;
  backlog.Attach(&db);
  Status built = workload::BuildPaperDatabase(&db, Ts(1));
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.ToString().c_str());
    return 1;
  }
  auto service =
      std::make_unique<service::AuditService>(&db, &backlog, &log);
  net::AuditServer server(service.get(), &db, &backlog, &log);
  if (!server.Start().ok()) return 1;
  std::printf("auditd serving the paper database on %s:%u\n\n",
              server.host().c_str(), server.port());

  // The monitor: one streaming client, two standing expressions.
  // `dispatched` is stamped by the attacker thread just before each
  // query; the handler (receiver thread) reads it after the push the
  // query generated arrives, ordered through the round trip.
  Clock::time_point dispatched{};
  std::mutex print_mutex;
  net::AuditClient monitor(server.host(), server.port());
  auto handler = [&](const char* label) {
    return [&, label](const net::PushEvent& event) {
      auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - dispatched)
                        .count();
      std::lock_guard<std::mutex> lock(print_mutex);
      if (event.kind == net::PushKind::kAlert) {
        std::printf("  [%-10s] seq %llu  *** ALERT *** rank=%.2f  "
                    "(+%lld us after query #%lld)\n",
                    label, (unsigned long long)event.seq, event.rank,
                    (long long)micros, (long long)event.log_id);
        std::printf("--- pushed verdict "
                    "(byte-identical to polling the audit) ---\n%s\n",
                    event.verdict.c_str());
      } else {
        std::printf("  [%-10s] seq %llu  rank=%.2f  "
                    "(+%lld us after query #%lld)\n",
                    label, (unsigned long long)event.seq, event.rank,
                    (long long)micros, (long long)event.log_id);
      }
    };
  };
  auto disclosure = monitor.Subscribe(kDisclosureAudit, Ts(1000),
                                      handler("disclosure"));
  auto names = monitor.Subscribe(kNamesAudit, Ts(1000), handler("names"));
  if (!disclosure.ok() || !names.ok()) {
    std::fprintf(stderr, "subscribe failed\n");
    return 1;
  }
  std::printf("subscribed: disclosure join (expr #%d), "
              "THRESHOLD ALL names tripwire (expr #%d)\n\n",
              disclosure->expression_id, names->expression_id);

  // The attacker: the online_monitor slow-burn, replayed over the wire.
  const struct {
    const char* description;
    const char* sql;
  } steps[] = {
      {"scout the ward layout (irrelevant)",
       "SELECT ward FROM P-Health WHERE ward = 'W14'"},
      {"names of the zip-code population",
       "SELECT name, pid FROM P-Personal WHERE zipcode = '145568'"},
      {"addresses of the same population",
       "SELECT address FROM P-Personal WHERE zipcode = '145568'"},
      {"diagnoses, joined to complete the disclosure",
       "SELECT disease FROM P-Personal, P-Health "
       "WHERE P-Personal.pid = P-Health.pid AND zipcode = '145568'"},
  };
  net::AuditClient attacker(server.host(), server.port());
  int64_t at = 100;
  for (const auto& step : steps) {
    {
      std::lock_guard<std::mutex> lock(print_mutex);
      std::printf("query: %s\n", step.description);
    }
    dispatched = Clock::now();
    auto result = attacker.ExecuteQuery(step.sql, "mallory", "clerk",
                                        "billing", Ts(at));
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    at += 10;
    // Give the pushes a moment so the narration stays in order; the
    // latency stamps show they beat this sleep by orders of magnitude.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  monitor.Close();
  server.Shutdown();
  return 0;
}
