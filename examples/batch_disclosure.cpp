/// Batch disclosure: no single query is suspicious, the batch is.
///
/// A snooping user splits a disclosure across innocuous-looking queries:
/// one reads names and addresses of a zip code, another reads diagnoses
/// of the same population. Under the single-query notion (Agrawal et
/// al.) each query is clean — neither accesses all audited columns. The
/// unified model's batch check (the Motwani et al. notion, expressed as
/// granules) catches the combination and reports the minimal suspicious
/// batch.

#include <cstdio>

#include "src/audit/auditor.h"
#include "src/audit/baseline_agrawal.h"
#include "src/workload/hospital.h"

using namespace auditdb;

namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

}  // namespace

int main() {
  Database db;
  Backlog backlog;
  backlog.Attach(&db);
  Status status = workload::BuildPaperDatabase(&db, Ts(1));
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  QueryLog log;
  // The attack: three queries, none individually covering the audit list.
  log.Append(
      "SELECT name, address FROM P-Personal WHERE zipcode = '145568'",
      Ts(100), "mallory", "clerk", "billing");
  log.Append("SELECT ward FROM P-Health WHERE ward = 'W14'", Ts(150),
             "mallory", "clerk", "billing");
  log.Append(
      "SELECT pid, disease FROM P-Health WHERE disease = 'diabetic'",
      Ts(200), "mallory", "clerk", "billing");

  const std::string audit_text =
      "DURING 1/1/1970 to 2/1/1970 "
      "DATA-INTERVAL 1/1/1970 to 2/1/1970 "
      "AUDIT (name,disease,address) "
      "FROM P-Personal, P-Health, P-Employ "
      "WHERE P-Personal.pid=P-Health.pid AND P-Health.pid=P-Employ.pid "
      "AND P-Personal.zipcode='145568' AND P-Employ.salary > 10000 "
      "AND P-Health.disease='diabetic'";

  std::printf("audit expression:\n%s\n\n", audit_text.c_str());

  // Single-query audit (the Agrawal et al. baseline): all clean.
  auto expr = audit::ParseAudit(audit_text, Ts(1000));
  if (!expr.ok()) return 1;
  audit::AgrawalAuditor single(&db, &backlog, &log);
  auto single_result = single.Audit(*expr);
  if (!single_result.ok()) {
    std::fprintf(stderr, "%s\n",
                 single_result.status().ToString().c_str());
    return 1;
  }
  std::printf("single-query (Agrawal) audit: %zu suspicious, "
              "%zu candidates\n",
              single_result->suspicious_ids.size(),
              single_result->num_candidates);

  // Batch audit via the unified granule model: the combination fires.
  audit::Auditor batch(&db, &backlog, &log);
  auto report = batch.Audit(audit_text, Ts(1000));
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("batch (unified) audit:        batch_suspicious=%s\n",
              report->batch_suspicious ? "true" : "false");
  std::printf("minimal suspicious batch:     [");
  for (size_t i = 0; i < report->minimal_batch.size(); ++i) {
    std::printf("%s#%lld", i ? ", " : "",
                static_cast<long long>(report->minimal_batch[i]));
  }
  std::printf("]\n\nevidence:\n%s", report->evidence.c_str());

  std::printf("\nqueries in the minimal batch:\n");
  for (int64_t id : report->minimal_batch) {
    auto entry = log.Get(id);
    if (entry.ok()) std::printf("  %s\n", (*entry)->ToString().c_str());
  }

  // Expected: no single query suspicious, batch {1,3} suspicious (the
  // ward query #2 contributes nothing).
  bool ok = single_result->suspicious_ids.empty() &&
            report->batch_suspicious &&
            report->minimal_batch == std::vector<int64_t>{1, 3};
  return ok ? 0 : 2;
}
