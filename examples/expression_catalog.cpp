/// Managing a catalog of standing audit expressions.
///
/// Over time an organization accumulates audit expressions — one per
/// complaint, per policy review, per regulator request. Many are
/// redundant: anything a narrow expression would flag, a broader
/// existing one already flags. This example feeds a stream of audit
/// expressions into the subsumption-deduplicating ExpressionLibrary and
/// registers only the surviving antichain with the online monitor.

#include <cstdio>

#include "src/audit/audit_parser.h"
#include "src/audit/expression_library.h"
#include "src/audit/online.h"
#include "src/workload/hospital.h"

using namespace auditdb;

namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

}  // namespace

int main() {
  Database db;
  Status status = workload::BuildPaperDatabase(&db, Ts(1));
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  // The expressions arriving over time (all with full-span windows).
  const char* kIncoming[] = {
      // A narrow complaint: ward-W14 diabetics.
      "AUDIT (disease) FROM P-Health "
      "WHERE disease = 'diabetic' AND ward = 'W14'",
      // Another narrow one: ward-W12 diabetics.
      "AUDIT (disease) FROM P-Health "
      "WHERE disease = 'diabetic' AND ward = 'W12'",
      // A policy review broadens the scope: ALL diabetics. Subsumes both.
      "AUDIT (disease) FROM P-Health WHERE disease = 'diabetic'",
      // A later complaint about ward W14 again: redundant now.
      "AUDIT (disease) FROM P-Health "
      "WHERE disease = 'diabetic' AND ward = 'W14'",
      // An unrelated salary audit: kept alongside.
      "AUDIT (salary) FROM P-Employ WHERE salary > 15000",
  };

  audit::ExpressionLibrary library(&db.catalog());
  const std::string span =
      "DURING 1/1/1970 to 1/1/1980 DATA-INTERVAL 1/1/1970 to 1/1/1980 ";
  for (const char* text : kIncoming) {
    auto expr = audit::ParseAudit(span + text, Ts(1000));
    if (!expr.ok()) {
      std::fprintf(stderr, "%s\n", expr.status().ToString().c_str());
      return 1;
    }
    auto outcome = library.Add(*expr);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
      return 1;
    }
    if (outcome->added) {
      std::printf("added   #%d  %s", outcome->id, text);
      if (!outcome->evicted.empty()) {
        std::printf("  (evicts");
        for (int id : outcome->evicted) std::printf(" #%d", id);
        std::printf(")");
      }
      std::printf("\n");
    } else {
      std::printf("skipped     %s  (subsumed by #%d)\n", text,
                  outcome->id);
    }
  }

  std::printf("\nlibrary holds %zu expression(s): ", library.size());
  for (int id : library.ids()) std::printf("#%d ", id);
  std::printf("\n\n");

  // Register the surviving antichain with the online monitor.
  audit::OnlineAuditor monitor(&db);
  for (int id : library.ids()) {
    auto registered = monitor.AddExpression(*library.Get(id));
    if (!registered.ok()) {
      std::fprintf(stderr, "%s\n",
                   registered.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("online monitor screening with %zu standing expression(s)\n",
              monitor.size());

  // One query that fires the broad diabetics expression.
  LoggedQuery q;
  q.id = 1;
  q.sql =
      "SELECT disease FROM P-Health WHERE disease = 'diabetic'";
  q.timestamp = Ts(100);
  q.user = "eve";
  q.role = "clerk";
  q.purpose = "billing";
  auto screenings = monitor.Observe(q);
  if (!screenings.ok()) return 1;
  for (const auto& s : *screenings) {
    std::printf("  expression #%d rank=%.2f%s\n", s.expression_id, s.rank,
                s.fired ? "  *** FIRED ***" : "");
  }

  // Expected: 2 expressions survive (broad diabetics + salary) and the
  // disease query fires exactly the first.
  return library.size() == 2 ? 0 : 2;
}
