/// subscription_soak — loopback soak harness for the push-subscription
/// path (docs/wire_protocol.md "Alerting"): N subscriber clients attach
/// standing audit expressions to a running auditd, a driver client
/// streams ExecuteQuery traffic that changes every expression's rank,
/// and each subscriber then proves the delivery invariant:
///
///   the delivered sequence numbers, unioned with the ranges announced
///   by GAP frames, exactly cover 1..max_seq — nothing is ever lost
///   without a gap notification.
///
/// The expressions use THRESHOLD ALL over P-Personal, so every driver
/// query touching a fresh pid moves the rank by exactly one fact: with
/// Q queries and no shedding, every subscription receives exactly Q
/// pushes. That determinism turns "did the drain flush parked pushes"
/// into an exact count check.
///
/// Usage: subscription_soak --port P [flags]
///   --host H           auditd host (default 127.0.0.1)
///   --port P           auditd port (required)
///   --subscribers N    subscriber connections (default 4)
///   --queries Q        driver queries, distinct pids p1..pQ (default 64;
///                      the server fixture must hold > Q patients)
///   --slow K           first K subscribers sleep per push (default 0)
///   --slow-sleep-ms M  the sleep (default 25)
///   --slow-rcvbuf B    SO_RCVBUF for slow subscribers (default 2048;
///                      pair with auditd --so-sndbuf so the kernel
///                      cannot absorb the pushes a stalled handler
///                      isn't reading)
///   --expect-gaps      fail unless at least one GAP frame arrived
///   --hold             after driving, print SOAK_READY and wait for the
///                      server to close the connections (graceful-drain
///                      orchestration: the parent SIGTERMs auditd); then
///                      require the full push count — parked pushes must
///                      have been flushed, not dropped
///   --timeout-ms M     overall wait budget (default 30000)
///
/// Exits 0 and prints SOAK_OK on success; 1 with a diagnostic otherwise.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/net/client.h"

using namespace auditdb;

namespace {

using Clock = std::chrono::steady_clock;

struct Flags {
  std::string host = "127.0.0.1";
  int port = 0;
  size_t subscribers = 4;
  size_t queries = 64;
  size_t slow = 0;
  int slow_sleep_ms = 25;
  int slow_rcvbuf = 2048;
  bool expect_gaps = false;
  bool hold = false;
  int timeout_ms = 30000;
};

/// Everything one subscriber observed, filled from its receiver thread.
struct SubscriberState {
  std::mutex mutex;
  std::set<uint64_t> delivered;            // seqs of progress/alert pushes
  std::vector<std::pair<uint64_t, uint64_t>> gaps;  // [first, first+count)
  uint64_t max_seq = 0;
  size_t alerts = 0;
};

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s --port P [flags] (see header)\n", argv0);
  return 2;
}

bool ParseSize(const char* text, size_t* out) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = static_cast<size_t>(v);
  return true;
}

/// True when delivered ∪ gap ranges covers 1..max_seq with no holes.
/// On failure, *missing names the first uncovered sequence number.
bool Covered(const SubscriberState& state, uint64_t* missing) {
  std::set<uint64_t> have = state.delivered;
  for (const auto& gap : state.gaps) {
    for (uint64_t s = gap.first; s < gap.first + gap.second; ++s) {
      have.insert(s);
    }
  }
  for (uint64_t s = 1; s <= state.max_seq; ++s) {
    if (have.count(s) == 0) {
      *missing = s;
      return false;
    }
  }
  *missing = 0;
  return true;
}

size_t CoveredCount(const SubscriberState& state) {
  size_t n = state.delivered.size();
  for (const auto& gap : state.gaps) n += gap.second;
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--expect-gaps") {
      flags.expect_gaps = true;
    } else if (arg == "--hold") {
      flags.hold = true;
    } else if (arg == "--host" && (value = next())) {
      flags.host = value;
    } else if (arg == "--port" && (value = next())) {
      flags.port = std::atoi(value);
    } else if (arg == "--subscribers" && (value = next())) {
      if (!ParseSize(value, &flags.subscribers)) return Usage(argv[0]);
    } else if (arg == "--queries" && (value = next())) {
      if (!ParseSize(value, &flags.queries)) return Usage(argv[0]);
    } else if (arg == "--slow" && (value = next())) {
      if (!ParseSize(value, &flags.slow)) return Usage(argv[0]);
    } else if (arg == "--slow-sleep-ms" && (value = next())) {
      flags.slow_sleep_ms = std::atoi(value);
    } else if (arg == "--slow-rcvbuf" && (value = next())) {
      flags.slow_rcvbuf = std::atoi(value);
    } else if (arg == "--timeout-ms" && (value = next())) {
      flags.timeout_ms = std::atoi(value);
    } else {
      return Usage(argv[0]);
    }
  }
  if (flags.port <= 0 || flags.subscribers == 0 || flags.queries == 0) {
    return Usage(argv[0]);
  }
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(flags.timeout_ms);

  // Two distinct standing expressions, alternated across subscribers so
  // the soak also exercises server-side expression dedup/refcounting.
  const char* kExpressions[] = {
      "DURING 1/1/1970 to 1/1/1990 THRESHOLD ALL "
      "AUDIT (name) FROM P-Personal",
      "DURING 1/1/1970 to 1/1/1990 THRESHOLD ALL "
      "AUDIT (address) FROM P-Personal",
  };

  std::vector<std::unique_ptr<net::AuditClient>> clients;
  std::vector<std::unique_ptr<SubscriberState>> states;
  for (size_t i = 0; i < flags.subscribers; ++i) {
    net::AuditClientOptions client_options;
    if (i < flags.slow) client_options.so_rcvbuf = flags.slow_rcvbuf;
    auto client = std::make_unique<net::AuditClient>(
        flags.host, static_cast<uint16_t>(flags.port), client_options);
    auto state = std::make_unique<SubscriberState>();
    SubscriberState* raw = state.get();
    const bool slow = i < flags.slow;
    const int sleep_ms = flags.slow_sleep_ms;
    auto handler = [raw, slow, sleep_ms](const net::PushEvent& event) {
      {
        std::lock_guard<std::mutex> lock(raw->mutex);
        if (event.kind == net::PushKind::kGap) {
          raw->gaps.emplace_back(event.seq, event.dropped);
          if (event.dropped > 0) {
            raw->max_seq =
                std::max(raw->max_seq, event.seq + event.dropped - 1);
          }
        } else {
          raw->delivered.insert(event.seq);
          raw->max_seq = std::max(raw->max_seq, event.seq);
          if (event.kind == net::PushKind::kAlert) ++raw->alerts;
        }
      }
      if (slow) {
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      }
    };
    auto sub = client->Subscribe(kExpressions[i % 2], Timestamp(1000000),
                                 std::move(handler));
    if (!sub.ok()) {
      std::fprintf(stderr, "subscriber %zu: %s\n", i,
                   sub.status().ToString().c_str());
      return 1;
    }
    clients.push_back(std::move(client));
    states.push_back(std::move(state));
  }
  std::printf("subscribed %zu clients (%zu slow)\n", flags.subscribers,
              flags.slow);

  // The driver: one query per fresh pid, each moving every expression's
  // rank by one fact.
  net::AuditClient driver(flags.host, static_cast<uint16_t>(flags.port));
  for (size_t q = 1; q <= flags.queries; ++q) {
    std::string sql = "SELECT name, address FROM P-Personal WHERE pid = 'p" +
                      std::to_string(q) + "'";
    auto result = driver.ExecuteQuery(
        sql, "soak", "driver", "load", Timestamp(2000000 + (int64_t)q));
    if (!result.ok()) {
      std::fprintf(stderr, "driver query %zu: %s\n", q,
                   result.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("drove %zu queries\n", flags.queries);

  const size_t expected = flags.queries;
  if (flags.hold) {
    // Graceful-drain orchestration: tell the parent we are ready to be
    // drained, then wait for the server to close the streams.
    std::printf("SOAK_READY\n");
    std::fflush(stdout);
    while (Clock::now() < deadline) {
      bool all_closed = true;
      for (auto& client : clients) {
        if (client->StreamStatus().ok()) {
          all_closed = false;
          break;
        }
      }
      if (all_closed) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  } else {
    // Wait until every subscriber accounted for all expected pushes
    // (delivered or gap-covered), or the budget runs out.
    while (Clock::now() < deadline) {
      bool done = true;
      for (auto& state : states) {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (CoveredCount(*state) < expected) {
          done = false;
          break;
        }
      }
      if (done) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  // Verification. Under --hold the server has drained: parked pushes
  // must have been flushed, so the exact count is required, not just
  // gap-consistency.
  bool saw_gap = false;
  for (size_t i = 0; i < states.size(); ++i) {
    std::lock_guard<std::mutex> lock(states[i]->mutex);
    uint64_t missing = 0;
    if (!Covered(*states[i], &missing)) {
      std::fprintf(stderr,
                   "subscriber %zu: seq %llu lost without gap "
                   "(delivered=%zu gaps=%zu max_seq=%llu)\n",
                   i, (unsigned long long)missing,
                   states[i]->delivered.size(), states[i]->gaps.size(),
                   (unsigned long long)states[i]->max_seq);
      return 1;
    }
    const size_t covered = CoveredCount(*states[i]);
    if (covered != expected) {
      std::fprintf(stderr,
                   "subscriber %zu: covered %zu of %zu expected pushes "
                   "(delivered=%zu gap-covered=%zu)\n",
                   i, covered, expected, states[i]->delivered.size(),
                   covered - states[i]->delivered.size());
      return 1;
    }
    saw_gap = saw_gap || !states[i]->gaps.empty();
  }
  if (flags.expect_gaps && !saw_gap) {
    std::fprintf(stderr,
                 "expected at least one GAP frame, saw none "
                 "(queue too deep or subscribers too fast?)\n");
    return 1;
  }
  std::printf("SOAK_OK subscribers=%zu queries=%zu gaps=%s\n",
              flags.subscribers, flags.queries, saw_gap ? "yes" : "no");
  return 0;
}
