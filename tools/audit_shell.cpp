/// audit_shell — interactive / scriptable front end for the auditing
/// framework.
///
/// Usage: audit_shell [script-file]
///   Reads commands from the script file (one per line) or from stdin.
///
/// Commands:
///   .help                         this text
///   .fixture paper                load the paper's Tables 1-3 instance
///   .fixture hospital <N> [seed]  generate an N-patient hospital
///   .load db <file>               load a database dump
///   .load log <file>              load a query-log dump
///   .save db <file>               write the database as a dump
///   .save log <file>              write the query log as a dump
///   .tables                       list tables with row counts
///   .show <table>                 print a table
///   .log                          print the query log
///   .as <user> <role> <purpose>   set annotations for subsequent queries
///   .at <d/m/yyyy[:hh-mm-ss]>     set the clock for subsequent commands
///   .workload <N> [seed]          append N generated queries to the log
///   .audit [--jobs N] <expression>
///                                 run an audit (expression on one line);
///                                 --jobs N uses the concurrent audit
///                                 service on N workers and prints its
///                                 metrics JSON after the report
///   .audit-static [--jobs N] <expression>
///                                 data-independent audit only
///   .granules <expression>        print the granule set (first 100)
///   .connect <host:port>          attach to a running auditd; while
///                                 connected, .audit / .audit-static,
///                                 SELECT and .load run remotely
///   .disconnect                   back to the in-process stores
///   .metrics                      remote server + service (+ index,
///                                 push, policy, replication) metrics
///                                 JSON
///   .policy                       just the remote "policy" metrics
///                                 section (rule hits, redactions,
///                                 suppressed logs, reload generation)
///   .replication                  just the remote "replication"
///                                 section (role, shipped/applied WAL
///                                 seqs, follower lag + ack latency)
///   .subscribe <expr|#id>         stream verdict pushes for a standing
///                                 audit expression to the terminal
///                                 (an integer or #id attaches to an
///                                 existing server-side expression)
///   .unsubscribe <sub-id>         cancel one subscription
///   .quit                         exit
///   SELECT ...                    execute, print results, append to log
///
/// Anything else starting with SELECT is treated as a query.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "src/audit/auditor.h"
#include "src/audit/granule.h"
#include "src/common/string_util.h"
#include "src/net/client.h"
#include "src/service/audit_service.h"
#include "src/io/dump.h"
#include "src/workload/generator.h"
#include "src/workload/hospital.h"

using namespace auditdb;

namespace {

/// Extracts the balanced-brace object value of a top-level `"key":{...}`
/// from a JSON text; empty string when absent. Good enough for the
/// metrics JSON we produce (no braces inside strings).
std::string ExtractJsonObject(const std::string& json,
                              const std::string& key) {
  std::string needle = "\"" + key + "\":{";
  size_t start = json.find(needle);
  if (start == std::string::npos) return "";
  size_t open = start + needle.size() - 1;
  int depth = 0;
  for (size_t i = open; i < json.size(); ++i) {
    if (json[i] == '{') ++depth;
    if (json[i] == '}' && --depth == 0) {
      return json.substr(open, i - open + 1);
    }
  }
  return "";
}

class Shell {
 public:
  Shell() { backlog_.Attach(&db_); }

  int Run(std::istream& in, bool interactive) {
    std::string line;
    if (interactive) std::printf("auditdb shell — .help for commands\n");
    while (true) {
      if (interactive) {
        std::printf("audit> ");
        std::fflush(stdout);
      }
      if (!std::getline(in, line)) break;
      // Trailing backslash continues the command on the next line.
      while (!line.empty() && line.back() == '\\') {
        line.pop_back();
        line += ' ';
        std::string more;
        if (interactive) {
          std::printf("   ...> ");
          std::fflush(stdout);
        }
        if (!std::getline(in, more)) break;
        line += more;
      }
      std::string_view trimmed = Trim(line);
      if (trimmed.empty() || trimmed[0] == '#') continue;
      if (trimmed == ".quit" || trimmed == ".exit") break;
      Status status = Dispatch(std::string(trimmed));
      if (!status.ok()) {
        std::printf("error: %s\n", status.ToString().c_str());
      }
    }
    return 0;
  }

 private:
  static std::vector<std::string> Words(const std::string& text) {
    std::vector<std::string> out;
    std::istringstream stream(text);
    std::string word;
    while (stream >> word) out.push_back(word);
    return out;
  }

  Status Dispatch(const std::string& line) {
    if (line[0] != '.') return RunQuery(line);
    auto words = Words(line);
    const std::string& cmd = words[0];

    if (cmd == ".help") {
      std::printf(
          ".fixture paper | .fixture hospital N [seed]\n"
          ".load db|log <file>   .save db|log <file>\n"
          ".tables  .show <table>  .log\n"
          ".as <user> <role> <purpose>   .at <timestamp>\n"
          ".workload N [seed]\n"
          ".audit [--jobs N] <expr>  .audit-static [--jobs N] <expr>\n"
          ".granules <expr>\n"
          ".connect <host:port>  .disconnect  .metrics  .policy  "
          ".replication\n"
          ".subscribe <expr|#id>  .unsubscribe <sub-id>\n"
          "SELECT ...  runs a query and logs it\n"
          ".quit\n");
      return Status::Ok();
    }
    if (cmd == ".connect") {
      if (words.size() != 2) {
        return Status::InvalidArgument("usage: .connect <host:port>");
      }
      auto colon = words[1].rfind(':');
      int64_t port = 0;
      if (colon == std::string::npos ||
          !ParseCount(words[1].substr(colon + 1), &port) || port <= 0 ||
          port > 65535) {
        return Status::InvalidArgument("expected host:port, got " +
                                       words[1]);
      }
      auto client = std::make_unique<net::AuditClient>(
          words[1].substr(0, colon), static_cast<uint16_t>(port));
      AUDITDB_RETURN_IF_ERROR(client->Connect());
      auto health = client->Health();
      if (!health.ok()) return health.status();
      remote_ = std::move(client);
      std::printf("connected to auditd at %s (health: %s)\n",
                  words[1].c_str(), health->c_str());
      return Status::Ok();
    }
    if (cmd == ".disconnect") {
      if (!remote_) return Status::InvalidArgument("not connected");
      remote_.reset();
      std::printf("back to in-process stores\n");
      return Status::Ok();
    }
    if (cmd == ".metrics") {
      if (!remote_) return Status::InvalidArgument("not connected");
      auto metrics = remote_->MetricsJson();
      if (!metrics.ok()) return metrics.status();
      std::printf("%s\n", metrics->c_str());
      return Status::Ok();
    }
    if (cmd == ".policy") {
      // The server's "policy" metrics section: rule hit counts,
      // redactions, suppressed logs, reload generation.
      if (!remote_) return Status::InvalidArgument("not connected");
      auto metrics = remote_->MetricsJson();
      if (!metrics.ok()) return metrics.status();
      std::string section = ExtractJsonObject(*metrics, "policy");
      if (section.empty()) {
        std::printf("no policy engine attached (start auditd with "
                    "--audit-rules)\n");
      } else {
        std::printf("%s\n", section.c_str());
      }
      return Status::Ok();
    }
    if (cmd == ".replication") {
      // The server's "replication" metrics section: role, shipped and
      // applied WAL seqs, per-follower lag in records/bytes and ack
      // latency (docs/replication.md).
      if (!remote_) return Status::InvalidArgument("not connected");
      auto metrics = remote_->MetricsJson();
      if (!metrics.ok()) return metrics.status();
      std::string section = ExtractJsonObject(*metrics, "replication");
      if (section.empty()) {
        std::printf("replication off (start auditd with --replicate-from "
                    "or --repl-ack)\n");
      } else {
        std::printf("%s\n", section.c_str());
      }
      return Status::Ok();
    }
    if (cmd == ".subscribe") {
      if (!remote_) return Status::InvalidArgument("not connected");
      std::string rest(Trim(line.substr(cmd.size())));
      if (rest.empty()) {
        return Status::InvalidArgument("usage: .subscribe <expr|#id>");
      }
      // Prints from the client's receiver thread; interleaving with the
      // prompt is the price of live alerts in a line-based shell.
      auto handler = [](const net::PushEvent& event) {
        if (event.kind == net::PushKind::kGap) {
          std::printf("\n[push] sub=%lld seq=%llu GAP dropped=%llu "
                      "(slow subscriber, events shed)\n",
                      static_cast<long long>(event.subscription_id),
                      static_cast<unsigned long long>(event.seq),
                      static_cast<unsigned long long>(event.dropped));
        } else {
          std::printf("\n[push] sub=%lld seq=%llu %s expr=%d "
                      "log=#%lld rank=%.6f fired=%d%s%s\n",
                      static_cast<long long>(event.subscription_id),
                      static_cast<unsigned long long>(event.seq),
                      net::PushKindName(event.kind), event.expression_id,
                      static_cast<long long>(event.log_id), event.rank,
                      event.fired ? 1 : 0,
                      event.verdict.empty() ? "" : "\n  verdict: ",
                      event.verdict.c_str());
        }
        std::fflush(stdout);
      };
      std::string id_text =
          rest[0] == '#' ? std::string(Trim(rest.substr(1))) : rest;
      int64_t expr_id = 0;
      Result<net::AuditClient::Subscription> sub =
          ParseCount(id_text, &expr_id)
              ? remote_->SubscribeById(static_cast<int>(expr_id), handler)
              : remote_->Subscribe(rest, now_, handler);
      if (!sub.ok()) return sub.status();
      std::printf("subscribed: sub=%lld expr=%d rank=%.6f fired=%d\n",
                  static_cast<long long>(sub->id), sub->expression_id,
                  sub->rank, sub->fired ? 1 : 0);
      return Status::Ok();
    }
    if (cmd == ".unsubscribe") {
      if (!remote_) return Status::InvalidArgument("not connected");
      int64_t sub_id = 0;
      if (words.size() != 2 || !ParseCount(words[1], &sub_id)) {
        return Status::InvalidArgument("usage: .unsubscribe <sub-id>");
      }
      AUDITDB_RETURN_IF_ERROR(remote_->Unsubscribe(sub_id));
      std::printf("unsubscribed sub=%lld\n",
                  static_cast<long long>(sub_id));
      return Status::Ok();
    }
    // While attached to a remote auditd, commands that read or mutate
    // state run against the server's stores; commands that only make
    // sense against the in-process stores are refused rather than
    // silently operating on the wrong world.
    if (remote_) {
      if (cmd == ".load") {
        return RemoteLoad(words);
      }
      if (cmd == ".audit" || cmd == ".audit-static") {
        std::string expr_text = line.substr(cmd.size());
        auto report = remote_->Audit(expr_text, now_,
                                     cmd == ".audit-static");
        if (!report.ok()) return report.status();
        std::printf("%s", report->detailed.c_str());
        return Status::Ok();
      }
      if (cmd != ".as" && cmd != ".at") {
        return Status::InvalidArgument(
            cmd + " works on the in-process stores; .disconnect first");
      }
    }
    if (cmd == ".fixture") {
      if (words.size() >= 2 && words[1] == "paper") {
        return workload::BuildPaperDatabase(&db_, now_);
      }
      if (words.size() >= 3 && words[1] == "hospital") {
        workload::HospitalConfig config;
        int64_t n;
        if (!ParseCount(words[2], &n)) {
          return Status::InvalidArgument("bad patient count");
        }
        config.num_patients = static_cast<size_t>(n);
        if (words.size() >= 4) {
          int64_t seed;
          if (ParseCount(words[3], &seed)) {
            config.seed = static_cast<uint64_t>(seed);
          }
        }
        hospital_ = config;
        return workload::PopulateHospital(&db_, config, now_);
      }
      return Status::InvalidArgument(
          "usage: .fixture paper | .fixture hospital N [seed]");
    }
    if (cmd == ".load" || cmd == ".save") {
      if (words.size() != 3) {
        return Status::InvalidArgument("usage: " + cmd + " db|log <file>");
      }
      if (cmd == ".load" && words[1] == "db") {
        return io::LoadDatabase(words[2], &db_, now_);
      }
      if (cmd == ".load" && words[1] == "log") {
        return io::LoadQueryLog(words[2], &log_);
      }
      if (cmd == ".save" && words[1] == "db") {
        return io::SaveDatabase(db_, words[2]);
      }
      if (cmd == ".save" && words[1] == "log") {
        return io::SaveQueryLog(log_, words[2]);
      }
      return Status::InvalidArgument("expected db or log");
    }
    if (cmd == ".tables") {
      for (const auto& name : db_.TableNames()) {
        auto table = db_.GetTable(name);
        if (table.ok()) {
          std::printf("%s (%zu rows)\n",
                      (*table)->schema().ToString().c_str(),
                      (*table)->size());
        }
      }
      return Status::Ok();
    }
    if (cmd == ".show") {
      if (words.size() != 2) {
        return Status::InvalidArgument("usage: .show <table>");
      }
      auto table = db_.GetTable(words[1]);
      if (!table.ok()) return table.status();
      for (const auto& row : (*table)->rows()) {
        std::printf("%s:", TidToString(row.tid).c_str());
        for (const auto& value : row.values) {
          std::printf(" %s", value.ToDisplayString().c_str());
        }
        std::printf("\n");
      }
      return Status::Ok();
    }
    if (cmd == ".log") {
      for (size_t i = 0; i < log_.size(); ++i) {
        std::printf("%s\n", log_.Entry(i).ToString().c_str());
      }
      return Status::Ok();
    }
    if (cmd == ".as") {
      if (words.size() != 4) {
        return Status::InvalidArgument(
            "usage: .as <user> <role> <purpose>");
      }
      user_ = words[1];
      role_ = words[2];
      purpose_ = words[3];
      return Status::Ok();
    }
    if (cmd == ".at") {
      if (words.size() != 2) {
        return Status::InvalidArgument("usage: .at <d/m/yyyy[:hh-mm-ss]>");
      }
      auto ts = Timestamp::Parse(words[1], Timestamp::Now());
      if (!ts.ok()) return ts.status();
      now_ = *ts;
      return Status::Ok();
    }
    if (cmd == ".workload") {
      if (words.size() < 2) {
        return Status::InvalidArgument("usage: .workload N [seed]");
      }
      int64_t n;
      if (!ParseCount(words[1], &n)) {
        return Status::InvalidArgument("bad query count");
      }
      workload::WorkloadConfig config;
      config.num_queries = static_cast<size_t>(n);
      config.start = now_;
      if (words.size() >= 3) {
        int64_t seed;
        if (ParseCount(words[2], &seed)) {
          config.seed = static_cast<uint64_t>(seed);
        }
      }
      AUDITDB_RETURN_IF_ERROR(
          workload::GenerateWorkload(&log_, config, hospital_));
      now_ = now_.AddMicros(static_cast<int64_t>(config.num_queries) *
                            config.spacing_micros);
      std::printf("logged %lld queries\n", static_cast<long long>(n));
      return Status::Ok();
    }
    if (cmd == ".audit" || cmd == ".audit-static") {
      std::string expr_text = line.substr(cmd.size());
      audit::AuditOptions options;
      options.static_only = cmd == ".audit-static";
      // Optional "--jobs N" prefix: run through the concurrent audit
      // service on N workers and print its metrics after the report.
      size_t jobs = 0;
      {
        std::istringstream rest(expr_text);
        std::string flag, count;
        if (rest >> flag && flag == "--jobs") {
          int64_t n = 0;
          if (!(rest >> count) || !ParseCount(count, &n) || n < 1) {
            return Status::InvalidArgument("usage: " + cmd +
                                           " [--jobs N] <expression>");
          }
          jobs = static_cast<size_t>(n);
          std::getline(rest, expr_text);
        }
      }
      if (jobs == 0) {
        audit::Auditor auditor(&db_, &backlog_, &log_);
        auto report = auditor.Audit(expr_text, now_, options);
        if (!report.ok()) return report.status();
        std::printf("%s", report->DetailedReport(log_).c_str());
        return Status::Ok();
      }
      service::AuditServiceOptions service_options;
      service_options.pool.num_threads = jobs;
      service::AuditService audit_service(&db_, &backlog_, &log_,
                                          service_options);
      auto report = audit_service.Audit(expr_text, now_, options);
      if (!report.ok()) return report.status();
      std::printf("%s", report->DetailedReport(log_).c_str());
      std::printf("metrics: %s\n", audit_service.MetricsJson().c_str());
      if (audit_service.decision_cache() != nullptr) {
        std::printf("index: %s\n",
                    audit_service.decision_cache()->stats()->ToJson().c_str());
      }
      return Status::Ok();
    }
    if (cmd == ".granules") {
      std::string expr_text = line.substr(cmd.size());
      auto expr = audit::ParseAudit(expr_text, now_);
      if (!expr.ok()) return expr.status();
      AUDITDB_RETURN_IF_ERROR(expr->Qualify(db_.catalog()));
      auto view = audit::ComputeTargetView(*expr, db_.View(), now_);
      if (!view.ok()) return view.status();
      audit::GranuleEnumerator enumerator(*view, audit::BuildSchemes(*expr),
                                          expr->threshold);
      std::printf("|U| = %zu, |G| = %.0f\n", view->size(),
                  enumerator.CountGranules());
      for (const auto& granule : enumerator.RenderDistinct(100)) {
        std::printf("  %s\n", granule.c_str());
      }
      return Status::Ok();
    }
    return Status::InvalidArgument("unknown command: " + cmd +
                                   " (.help for help)");
  }

  Status RunQuery(const std::string& sql) {
    if (remote_) {
      auto result = remote_->ExecuteQuery(sql, user_, role_, purpose_,
                                          now_);
      if (!result.ok()) return result.status();
      std::printf("%s(%zu rows, logged remotely as #%lld)\n",
                  result->rendered.c_str(), result->num_rows,
                  static_cast<long long>(result->log_id));
      now_ = now_.AddSeconds(1);
      return Status::Ok();
    }
    auto result = ExecuteSql(sql, db_.View());
    if (!result.ok()) return result.status();
    std::printf("%s(%zu rows)\n", result->ToString().c_str(),
                result->rows.size());
    log_.Append(sql, now_, user_, role_, purpose_);
    now_ = now_.AddSeconds(1);
    return Status::Ok();
  }

  /// `.load db|log <file>` while connected: ship the dump text into the
  /// remote server's stores.
  Status RemoteLoad(const std::vector<std::string>& words) {
    if (words.size() != 3 || (words[1] != "db" && words[1] != "log")) {
      return Status::InvalidArgument("usage: .load db|log <file>");
    }
    std::ifstream in(words[2]);
    if (!in) return Status::NotFound("cannot open: " + words[2]);
    std::stringstream text;
    text << in.rdbuf();
    if (words[1] == "db") {
      return remote_->LoadDatabaseDump(text.str(), now_);
    }
    return remote_->LoadQueryLogDump(text.str());
  }

  static bool ParseCount(const std::string& text, int64_t* out) {
    if (text.empty()) return false;
    char* end = nullptr;
    long long v = std::strtoll(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size() || v < 0) return false;
    *out = v;
    return true;
  }

  Database db_;
  Backlog backlog_;
  QueryLog log_;
  std::unique_ptr<net::AuditClient> remote_;
  workload::HospitalConfig hospital_;
  Timestamp now_ = Timestamp::Now();
  std::string user_ = "admin";
  std::string role_ = "auditor";
  std::string purpose_ = "investigation";
};

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  if (argc > 1) {
    std::ifstream script(argv[1]);
    if (!script) {
      std::fprintf(stderr, "cannot open script: %s\n", argv[1]);
      return 1;
    }
    return shell.Run(script, /*interactive=*/false);
  }
  return shell.Run(std::cin, /*interactive=*/true);
}
