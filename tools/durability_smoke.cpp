/// Crash-durability smoke driver for CI (tools/run_ci.sh): streams
/// ExecuteQuery requests at a live auditd until the daemon dies under
/// it (CI kills it with SIGKILL mid-stream), then — offline — proves
/// the durability contract on the data dir the daemon left behind:
/// every acked append recovers, the recovered log is a dense
/// uncorrupted prefix, and the recovered state is re-auditable.
///
/// Usage:
///   durability_smoke drive HOST:PORT MAX_QUERIES
///     Sends up to MAX_QUERIES ExecuteQuery requests (retries off: an
///     ack means the daemon's WAL accepted it, nothing is counted
///     twice). Prints "acked N" and exits 0 when the stream ends —
///     whether it completed or the daemon died mid-request.
///
///   durability_smoke verify DATA_DIR MIN_ACKED
///     Recovers DATA_DIR and fails unless the log holds at least
///     MIN_ACKED densely-numbered entries and a full audit over the
///     recovered world succeeds.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/audit/auditor.h"
#include "src/io/file.h"
#include "src/io/store.h"
#include "src/net/client.h"

using namespace auditdb;

namespace {

Timestamp Ts(int64_t s) { return Timestamp(s * 1000000); }

const char kAudit[] =
    "DURING 1/1/1970 to 2/1/1970 "
    "DATA-INTERVAL 1/1/1970 to 2/1/1970 "
    "AUDIT (name,disease) FROM P-Personal, P-Health "
    "WHERE P-Personal.pid = P-Health.pid AND disease='diabetic'";

int Drive(const std::string& target, int max_queries) {
  auto colon = target.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "expected HOST:PORT, got %s\n", target.c_str());
    return 2;
  }
  net::AuditClientOptions options;
  // An ambiguous cut (sent but never answered) must not re-send: the
  // count below is a lower bound on what the WAL accepted.
  options.retry_idempotent = false;
  net::AuditClient client(
      target.substr(0, colon),
      static_cast<uint16_t>(std::atoi(target.c_str() + colon + 1)),
      options);
  int acked = 0;
  for (int i = 0; i < max_queries; ++i) {
    auto executed = client.ExecuteQuery(
        "SELECT name, disease FROM P-Personal, P-Health "
        "WHERE P-Personal.pid = P-Health.pid AND disease = 'diabetic'",
        "smoke", "clerk", "billing", Ts(900000 + i));
    if (!executed.ok()) {
      std::fprintf(stderr, "stream ended after %d acks: %s\n", acked,
                   executed.status().ToString().c_str());
      break;
    }
    ++acked;
  }
  std::printf("acked %d\n", acked);
  return 0;
}

int Verify(const std::string& data_dir, int min_acked) {
  Database db;
  Backlog backlog;
  backlog.Attach(&db);
  QueryLog log;
  auto store = io::DurableStore::Open(io::Env::Default(), data_dir, &db,
                                      &log, Ts(1));
  if (!store.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  const io::RecoveryInfo& recovery = (*store)->recovery();
  std::printf(
      "recovered: %zu log entries (%llu from WAL, %llu torn bytes "
      "dropped)\n",
      log.size(),
      static_cast<unsigned long long>(recovery.recovered_records),
      static_cast<unsigned long long>(recovery.torn_tail_dropped));
  if (log.size() < static_cast<size_t>(min_acked)) {
    std::fprintf(stderr,
                 "LOST ACKS: %d acked but only %zu recovered\n",
                 min_acked, log.size());
    return 1;
  }
  // The log must be a dense, uncorrupted prefix: ids 1..N in order.
  for (size_t i = 0; i < log.size(); ++i) {
    const LoggedQuery& entry = log.Entry(i);
    if (entry.id != static_cast<int64_t>(i) + 1) {
      std::fprintf(stderr, "log entry %zu has id %lld (want %zu)\n", i,
                   static_cast<long long>(entry.id), i + 1);
      return 1;
    }
    if (entry.sql.empty() || entry.user.empty()) {
      std::fprintf(stderr, "log entry %zu recovered mangled\n", i);
      return 1;
    }
  }
  // Re-auditable: the full audit pipeline runs over the recovered world.
  audit::Auditor auditor(&db, &backlog, &log);
  auto report = auditor.Audit(kAudit, Ts(1000000));
  if (!report.ok()) {
    std::fprintf(stderr, "audit over recovered state failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("recovered state re-audited: %s\n",
              report->Summary().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 4 && std::string(argv[1]) == "drive") {
    return Drive(argv[2], std::atoi(argv[3]));
  }
  if (argc == 4 && std::string(argv[1]) == "verify") {
    return Verify(argv[2], std::atoi(argv[3]));
  }
  std::fprintf(stderr,
               "usage: %s drive HOST:PORT MAX_QUERIES\n"
               "       %s verify DATA_DIR MIN_ACKED\n",
               argv[0], argv[0]);
  return 2;
}
