#!/usr/bin/env bash
# CI gate: regular build + full test suite, the service-layer concurrency
# suite (determinism + stress) plus the push-subscription registry and
# fan-out suites under ThreadSanitizer, the network layer under
# AddressSanitizer — unit suites plus live auditd smokes: client
# round-trips against a loopback daemon, a SIGTERM graceful drain, and
# three subscription soaks (lossless fan-out, slow-subscriber gap
# shedding under tiny socket buffers, and a SIGTERM drain that must
# flush parked pushes), failing on any ASan report — the tid-bitmap
# kernels plus the suspicion/granule bitmap differentials under
# UndefinedBehaviorSanitizer (and the same suites re-run in the ASan
# tree, where the BatchIndex lifetime regression is visible) — the
# durability gate
# (crash-fault-injection harness under ASan, then a live kill -9: stream
# ExecuteQuery at an auditd with --data-dir, SIGKILL it mid-stream, and
# prove every acked query recovers and re-audits on the same dir) — the
# policy gate (rule-config/redaction/sink/engine suites under ASan, then
# a live auditd with --audit-rules: SIGHUP hot-reload smoke racing a
# query stream, reload-to-broken keeping the old rules live, and a sink
# file integrity check: one well-formed redacted record per acked
# query, no marked literal leaked) — the replication cluster gate
# (replication codec/hub/cursor suites plus the in-process cluster
# scenarios under ASan, then a live 3-node loopback cluster:
# quorum-acked writes streaming while a replica is kill -9'd mid-stream
# and rejoined on the same dir, a SIGSTOP partition with bounded
# divergence and clean re-sync, follower verdicts diffed byte-for-byte
# against each other and against an offline serial auditor over the
# killed primary's quiesced dir, and a promote-on-primary-kill failover
# that must lose no acked write) — and finally a Release (-O2) build
# that smoke-runs the scan and expression-index benches, the 10M-row
# tid-bitmap kernel sweeps (bench_granule set-vs-bitmap, bench_scan
# selection-bitmap emission), plus the
# bench_net push-latency sweep, the bench_policy overhead acceptance
# check (<5% at 0% rule-hit rate), and the bench_mixed MVCC sweep
# (versioned caching must sustain hot hit rates AND write throughput
# where the wholesale-invalidation ablation can only have one),
# checking their BENCH_scan.json / BENCH_granule.json /
# BENCH_index.json / BENCH_push.json
# / BENCH_policy.json / BENCH_mixed.json / BENCH_repl.json artifacts
# (the last from the bench_net replication followers-x-ack sweep).
#
# Usage: tools/run_ci.sh [build-dir-prefix]
#   Build trees land in <prefix>, <prefix>-tsan, <prefix>-asan,
#   <prefix>-ubsan and <prefix>-release (default: build-ci).

set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

echo "== [1/9] build (${PREFIX}) =="
cmake -B "${PREFIX}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${PREFIX}" -j "${JOBS}"

echo "== [2/9] ctest =="
ctest --test-dir "${PREFIX}" --output-on-failure -j "${JOBS}"

echo "== [3/9] service determinism + stress under ThreadSanitizer =="
cmake -B "${PREFIX}-tsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DAUDITDB_SANITIZE=thread
# The TSan gate needs the concurrency suites: the service layer, the
# MVCC read path (snapshot-pinned audits racing writers must stay
# byte-identical to a quiesced serial run), the subscription registry
# (publishers vs drainers vs churn), the end-to-end push fan-out
# (Subscribe/Unsubscribe racing Observe), and the policy engine's
# Decide/Emit-vs-reload race.
cmake --build "${PREFIX}-tsan" -j "${JOBS}" \
      --target service_test subscription_test net_test policy_test \
               common_test
# TidBitmap rides along: the scheduler suites audit with bitmaps on by
# default, so the kernels also run under the parallel checkers above.
ctest --test-dir "${PREFIX}-tsan" --output-on-failure \
      -R 'SchedulerTest|OnlineConcurrentTest|MvccConcurrentTest|ThreadPoolTest|RunBatchTest|BoundedQueueTest|CounterTest|GaugeTest|HistogramTest|MetricsRegistryTest|PushCodecTest|SubscriptionRegistryTest|SubscriptionConcurrentTest|PushSubscriptionTest|PolicyEngineConcurrentTest|TidBitmapTest|TidBitmapDifferentialTest'

echo "== [4/9] network layer under AddressSanitizer =="
cmake -B "${PREFIX}-asan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DAUDITDB_SANITIZE=address
cmake --build "${PREFIX}-asan" -j "${JOBS}" \
      --target net_test subscription_test auditd audit_client \
               subscription_soak common_test suspicion_test \
               bitmap_ablation_test
# ASan exits non-zero on any report; halt_on_error makes that immediate.
# The tid-bitmap and suspicion suites ride along here: the BatchIndex
# lifetime regression (dangling batch vector) is exactly the kind of bug
# only this tree can see.
export ASAN_OPTIONS="halt_on_error=1:abort_on_error=0:exitcode=99"
ctest --test-dir "${PREFIX}-asan" --output-on-failure \
      -R 'FrameCodecTest|FrameReaderTest|FieldCodecTest|ErrorCodecTest|TypePredicatesTest|AuditServerTest|PushCodecTest|SubscriptionRegistryTest|PushSubscriptionTest|TidBitmapTest|TidBitmapDifferentialTest|SuspicionTest|BitmapAblationTest'

echo "-- auditd loopback smoke (ASan build) --"
PORT_FILE="$(mktemp)"
AUDITD_LOG="$(mktemp)"
"${PREFIX}-asan/tools/auditd" --port 0 --port-file "${PORT_FILE}" \
    --fixture hospital:200:2008 --workload 500:7 >"${AUDITD_LOG}" 2>&1 &
AUDITD_PID=$!
cleanup() { kill -9 "${AUDITD_PID}" 2>/dev/null || true; }
trap cleanup EXIT

# Wait for the daemon to write its ephemeral port.
for _ in $(seq 1 100); do
  [ -s "${PORT_FILE}" ] && break
  kill -0 "${AUDITD_PID}" 2>/dev/null || { cat "${AUDITD_LOG}"; exit 1; }
  sleep 0.1
done
PORT="$(cat "${PORT_FILE}")"
[ -n "${PORT}" ] || { echo "auditd never reported a port"; cat "${AUDITD_LOG}"; exit 1; }

# Remote client smoke: health + audit + metrics over the wire.
"${PREFIX}-asan/examples/audit_client" "127.0.0.1:${PORT}"

# Graceful drain: SIGTERM must yield a clean exit 0 (and no ASan report).
kill -TERM "${AUDITD_PID}"
DRAIN_RC=0
wait "${AUDITD_PID}" || DRAIN_RC=$?
trap - EXIT
if [ "${DRAIN_RC}" -ne 0 ]; then
  echo "auditd drain exited ${DRAIN_RC}"
  cat "${AUDITD_LOG}"
  exit 1
fi
grep -q '"server"' "${AUDITD_LOG}" || {
  echo "auditd did not print final metrics"; cat "${AUDITD_LOG}"; exit 1; }
rm -f "${PORT_FILE}" "${AUDITD_LOG}"

# Starts a fresh ASan auditd with the given extra flags and exports
# AUDITD_PID / PORT. The caller kills and waits it.
start_auditd() {
  : >"${PORT_FILE:=$(mktemp)}"
  AUDITD_LOG="$(mktemp)"
  "${PREFIX}-asan/tools/auditd" --port 0 --port-file "${PORT_FILE}" \
      "$@" >"${AUDITD_LOG}" 2>&1 &
  AUDITD_PID=$!
  trap cleanup EXIT
  for _ in $(seq 1 100); do
    [ -s "${PORT_FILE}" ] && break
    kill -0 "${AUDITD_PID}" 2>/dev/null || { cat "${AUDITD_LOG}"; exit 1; }
    sleep 0.1
  done
  PORT="$(cat "${PORT_FILE}")"
  [ -n "${PORT}" ] || {
    echo "auditd never reported a port"; cat "${AUDITD_LOG}"; exit 1; }
}

# SIGTERMs auditd and requires a clean (drained) exit 0.
drain_auditd() {
  kill -TERM "${AUDITD_PID}"
  DRAIN_RC=0
  wait "${AUDITD_PID}" || DRAIN_RC=$?
  trap - EXIT
  if [ "${DRAIN_RC}" -ne 0 ]; then
    echo "auditd drain exited ${DRAIN_RC}"; cat "${AUDITD_LOG}"; exit 1
  fi
}

echo "-- subscription soak: lossless fan-out (ASan build) --"
# 4 subscribers on 2 standing expressions, 50 distinct-pid queries:
# every subscriber must account for every push (no gaps expected).
start_auditd --fixture hospital:100:2008
"${PREFIX}-asan/tools/subscription_soak" --port "${PORT}" \
    --subscribers 4 --queries 50
drain_auditd

echo "-- subscription soak: slow-subscriber gap shedding (ASan build) --"
# Kernel-floor socket buffers + a depth-4 queue force the drop-oldest
# policy on the slow subscriber; the soak fails on any sequence lost
# without a GAP frame and on the absence of gaps, and the fast
# subscribers still see everything.
start_auditd --fixture hospital:400:2008 \
    --push-queue-depth 4 --so-sndbuf 2048
"${PREFIX}-asan/tools/subscription_soak" --port "${PORT}" \
    --subscribers 3 --queries 300 \
    --slow 1 --slow-sleep-ms 10 --slow-rcvbuf 2048 --expect-gaps
drain_auditd

echo "-- subscription soak: SIGTERM drain flushes parked pushes --"
# Small server send buffers park pushes behind two deliberately slow
# subscribers; SIGTERM lands while they are still reading. The drain
# must flush every parked push (the soak requires the exact count)
# and auditd must exit 0.
start_auditd --fixture hospital:150:2008 --so-sndbuf 2048
SOAK_LOG="$(mktemp)"
"${PREFIX}-asan/tools/subscription_soak" --port "${PORT}" \
    --subscribers 4 --queries 80 \
    --slow 2 --slow-sleep-ms 5 --slow-rcvbuf 2048 --hold \
    >"${SOAK_LOG}" 2>&1 &
SOAK_PID=$!
for _ in $(seq 1 200); do
  grep -q 'SOAK_READY' "${SOAK_LOG}" && break
  kill -0 "${SOAK_PID}" 2>/dev/null || { cat "${SOAK_LOG}"; exit 1; }
  sleep 0.1
done
grep -q 'SOAK_READY' "${SOAK_LOG}" || {
  echo "soak never reached SOAK_READY"; cat "${SOAK_LOG}"; exit 1; }
drain_auditd
wait "${SOAK_PID}" || { echo "drain soak failed"; cat "${SOAK_LOG}"; exit 1; }
grep -q 'SOAK_OK' "${SOAK_LOG}" || { cat "${SOAK_LOG}"; exit 1; }
rm -f "${PORT_FILE}" "${AUDITD_LOG}" "${SOAK_LOG}"

echo "== [5/9] tid-bitmap kernels under UndefinedBehaviorSanitizer =="
# The compressed-bitmap containers are the one place in the tree doing
# dense bit manipulation (word shifts, countr_zero scans, sign-flip
# encoding of INT64_MIN/MAX tids): run their unit + differential suites,
# and the suspicion/granule ablation differentials that exercise them
# end-to-end, with UB checking hot.
cmake -B "${PREFIX}-ubsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DAUDITDB_SANITIZE=undefined
cmake --build "${PREFIX}-ubsan" -j "${JOBS}" \
      --target common_test suspicion_test bitmap_ablation_test
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
ctest --test-dir "${PREFIX}-ubsan" --output-on-failure \
      -R 'TidBitmapTest|TidBitmapDifferentialTest|SuspicionTest|BitmapAblationTest'

echo "== [6/9] policy gate under AddressSanitizer =="
cmake --build "${PREFIX}-asan" -j "${JOBS}" \
      --target policy_test workload_test net_test auditd durability_smoke
# Rule parsing (incl. the adversarial-config cases), redaction, sink
# line protocol, engine matching + hot reload, the rule-hit workload
# axis, and the wire-level policy suite (sink records, redacted
# DetailedReport with byte-identical verdicts, redacted push frames).
ctest --test-dir "${PREFIX}-asan" --output-on-failure \
      -R 'RuleConfigTest|RedactionSetTest|RedactSqlTest|ClassifySqlTest|ExtractTablesTest|SinkLineTest|FileSinkTest|SyslogLineSinkTest|MetricsSinkTest|PolicyEngineTest|PolicyEngineConcurrentTest|PolicyNetTest|WorkloadRuleHitTest'

echo "-- live auditd policy smoke: rules, SIGHUP hot-reload, sinks --"
RULES_FILE="$(mktemp)"
SINK_FILE="$(mktemp)"
DRIVE_LOG="$(mktemp)"
write_rules() {  # $1 = log-class for the single watch rule
  cat >"${RULES_FILE}" <<EOF
[rule watch]
user = smoke
log-class = $1
detail = static-screen
redact = disease
sink = file, metrics
EOF
}
write_rules alpha
start_auditd --fixture hospital:50:2008 \
    --audit-rules "${RULES_FILE}" --audit-sink-file "${SINK_FILE}"

# drive N: stream N watched ExecuteQuery round-trips, echo acked count.
drive() {
  "${PREFIX}-asan/tools/durability_smoke" drive "127.0.0.1:${PORT}" "$1" \
      2>/dev/null | awk '/^acked/{print $2}'
}

# Phase 1: alpha rules.
D1="$(drive 40)"
[ "${D1}" = "40" ] || { echo "alpha drive acked ${D1}/40"; exit 1; }

# Phase 2: five SIGHUP hot-reloads (alternating alpha/beta) racing a
# background query stream — the swap must be atomic under live traffic.
"${PREFIX}-asan/tools/durability_smoke" drive "127.0.0.1:${PORT}" 1000 \
    >"${DRIVE_LOG}" 2>/dev/null &
DRIVER_PID=$!
for i in 1 2 3 4 5; do
  if [ $((i % 2)) -eq 0 ]; then write_rules alpha; else write_rules beta; fi
  kill -HUP "${AUDITD_PID}"
  sleep 0.1
done
wait "${DRIVER_PID}" || { echo "background driver failed"; exit 1; }
D2="$(awk '/^acked/{print $2}' "${DRIVE_LOG}")"
[ "${D2}" = "1000" ] || { echo "reload-race drive acked ${D2}/1000"; exit 1; }

# Phase 3: traffic after the last reload must carry the new log class.
D3="$(drive 20)"
[ "${D3}" = "20" ] || { echo "beta drive acked ${D3}/20"; exit 1; }

# Phase 4: reload-to-broken keeps the old rules live (and the daemon up).
echo "[rule broken" >"${RULES_FILE}"
kill -HUP "${AUDITD_PID}"
sleep 0.3
kill -0 "${AUDITD_PID}" || { echo "auditd died on broken reload"; cat "${AUDITD_LOG}"; exit 1; }
D4="$(drive 20)"
[ "${D4}" = "20" ] || { echo "post-broken drive acked ${D4}/20"; exit 1; }

drain_auditd
grep -q 'auditd: reloaded' "${AUDITD_LOG}" || {
  echo "auditd never reported a successful reload"; cat "${AUDITD_LOG}"; exit 1; }
grep -q 'keeping old rules' "${AUDITD_LOG}" || {
  echo "auditd did not survive the broken config"; cat "${AUDITD_LOG}"; exit 1; }

# Sink file integrity: one well-formed record per acked query, both log
# classes observed across the reloads, redaction applied, no leak of the
# marked literal.
TOTAL=$((D1 + D2 + D3 + D4))
LINES="$(wc -l <"${SINK_FILE}")"
[ "${LINES}" = "${TOTAL}" ] || {
  echo "sink file has ${LINES} records, expected ${TOTAL}"; exit 1; }
awk -F'|' '!/^AUDIT / || NF != 12 { bad++ }
           END { exit (bad > 0) }' "${SINK_FILE}" || {
  echo "sink file contains malformed records"; exit 1; }
grep -q '|alpha|' "${SINK_FILE}" || { echo "no alpha-class records"; exit 1; }
grep -q '|beta|' "${SINK_FILE}" || { echo "no beta-class records"; exit 1; }
grep -q '\[REDACTED\]' "${SINK_FILE}" || {
  echo "sink records are not redacted"; exit 1; }
if grep -q 'diabetic' "${SINK_FILE}"; then
  echo "sink file leaked the redacted literal"; exit 1
fi
rm -f "${RULES_FILE}" "${SINK_FILE}" "${DRIVE_LOG}" "${PORT_FILE}" "${AUDITD_LOG}"

echo "== [7/9] durability gate under AddressSanitizer =="
cmake --build "${PREFIX}-asan" -j "${JOBS}" \
      --target io_test querylog_test net_test auditd durability_smoke
# The crash-fault-injection harness: every injected IO failure and every
# crash point must recover a consistent prefix of the acked appends.
ctest --test-dir "${PREFIX}-asan" --output-on-failure \
      -R 'Crc32cTest|PosixEnvTest|AtomicWriteFileTest|FaultInjectingEnvTest|WalTest|WalPayloadTest|FsyncPolicyTest|DurableStoreTest|DurableStoreFaultTest|DurableStoreCrashTest|DurableServerTest|ClientRetryTest'

echo "-- kill -9 crash smoke (ASan build) --"
DATA_DIR="$(mktemp -d)"
PORT_FILE="$(mktemp)"
AUDITD_LOG="$(mktemp)"
ACKS_FILE="$(mktemp)"
"${PREFIX}-asan/tools/auditd" --port 0 --port-file "${PORT_FILE}" \
    --data-dir "${DATA_DIR}" --fsync always --checkpoint-every 0 \
    --fixture hospital:50:2008 >"${AUDITD_LOG}" 2>&1 &
AUDITD_PID=$!
cleanup() { kill -9 "${AUDITD_PID}" 2>/dev/null || true; }
trap cleanup EXIT
for _ in $(seq 1 100); do
  [ -s "${PORT_FILE}" ] && break
  kill -0 "${AUDITD_PID}" 2>/dev/null || { cat "${AUDITD_LOG}"; exit 1; }
  sleep 0.1
done
PORT="$(cat "${PORT_FILE}")"
[ -n "${PORT}" ] || { echo "auditd never reported a port"; cat "${AUDITD_LOG}"; exit 1; }

# Stream appends at the daemon and SIGKILL it mid-stream: no drain, no
# final checkpoint — recovery gets only the WAL the acks were fsynced to.
"${PREFIX}-asan/tools/durability_smoke" drive "127.0.0.1:${PORT}" 100000 \
    >"${ACKS_FILE}" 2>/dev/null &
DRIVER_PID=$!
sleep 1
kill -9 "${AUDITD_PID}"
wait "${DRIVER_PID}" || { echo "durability driver failed"; exit 1; }
trap - EXIT
ACKED="$(awk '/^acked/{print $2}' "${ACKS_FILE}")"
echo "acked before SIGKILL: ${ACKED}"
[ -n "${ACKED}" ] && [ "${ACKED}" -gt 0 ] || {
  echo "driver acked nothing before the kill"; cat "${AUDITD_LOG}"; exit 1; }

# Offline: every acked append must recover, densely numbered, and the
# recovered world must survive a full audit.
"${PREFIX}-asan/tools/durability_smoke" verify "${DATA_DIR}" "${ACKED}"

# The daemon itself must recover the same dir, serve, and drain cleanly.
: >"${PORT_FILE}"
"${PREFIX}-asan/tools/auditd" --port 0 --port-file "${PORT_FILE}" \
    --data-dir "${DATA_DIR}" --fsync always >"${AUDITD_LOG}" 2>&1 &
AUDITD_PID=$!
trap cleanup EXIT
for _ in $(seq 1 100); do
  [ -s "${PORT_FILE}" ] && break
  kill -0 "${AUDITD_PID}" 2>/dev/null || { cat "${AUDITD_LOG}"; exit 1; }
  sleep 0.1
done
PORT="$(cat "${PORT_FILE}")"
"${PREFIX}-asan/examples/audit_client" "127.0.0.1:${PORT}" >/dev/null
kill -TERM "${AUDITD_PID}"
DRAIN_RC=0
wait "${AUDITD_PID}" || DRAIN_RC=$?
trap - EXIT
if [ "${DRAIN_RC}" -ne 0 ]; then
  echo "recovered auditd drain exited ${DRAIN_RC}"
  cat "${AUDITD_LOG}"
  exit 1
fi
grep -q 'auditd: recovered snapshot' "${AUDITD_LOG}" || {
  echo "restarted auditd did not report recovery"; cat "${AUDITD_LOG}"; exit 1; }
rm -rf "${DATA_DIR}"
rm -f "${PORT_FILE}" "${AUDITD_LOG}" "${ACKS_FILE}"

echo "== [8/9] replication cluster gate under AddressSanitizer =="
cmake --build "${PREFIX}-asan" -j "${JOBS}" \
      --target net_test querylog_test cluster_test auditd audit_cluster \
               durability_smoke
# Replication unit suites (framing codecs, ship/ack hub, WAL shipping
# cursor, retry budget) plus the in-process multi-node scenarios
# (bootstrap, durable catch-up, NOT_PRIMARY redirects, promote, quorum).
ctest --test-dir "${PREFIX}-asan" --output-on-failure \
      -R 'RetryBudgetTest|ReplAckPolicyTest|ParseHostPortTest|NotPrimaryTest|ReplicateCodecTest|ReplicateHandshakeTest|ShipDecisionTest|ReplicationHubTest|WalCursorTest|ClusterTest'

echo "-- 3-node cluster: kill -9 rejoin, partition re-sync, promote --"
CLUSTER="${PREFIX}-asan/tools/audit_cluster"
SMOKE="${PREFIX}-asan/tools/durability_smoke"
CLUSTER_EXPR="DURING 1/1/1970 to 2/1/1970 DATA-INTERVAL 1/1/1970 to 2/1/1970 AUDIT (name, disease) FROM P-Personal, P-Health WHERE P-Personal.pid = P-Health.pid AND disease = 'diabetic'"
P_DIR="$(mktemp -d)"; A_DIR="$(mktemp -d)"; B_DIR="$(mktemp -d)"
P_PID=""; A_PID=""; B_PID=""
cluster_cleanup() {
  for pid in "${P_PID}" "${A_PID}" "${B_PID}"; do
    [ -n "${pid}" ] && kill -9 "${pid}" 2>/dev/null || true
  done
}
trap cluster_cleanup EXIT

# Starts one cluster node; exports <VAR>_PID / <VAR>_PORT / <VAR>_LOG.
start_node() {
  local var=$1; shift
  local port_file; port_file="$(mktemp)"
  local log_file; log_file="$(mktemp)"
  "${PREFIX}-asan/tools/auditd" --port 0 --port-file "${port_file}" \
      "$@" >"${log_file}" 2>&1 &
  local pid=$!
  for _ in $(seq 1 150); do
    [ -s "${port_file}" ] && break
    kill -0 "${pid}" 2>/dev/null || { cat "${log_file}"; exit 1; }
    sleep 0.1
  done
  [ -s "${port_file}" ] || {
    echo "cluster node never reported a port"; cat "${log_file}"; exit 1; }
  eval "${var}_PID=${pid}"
  eval "${var}_PORT=$(cat "${port_file}")"
  eval "${var}_LOG=${log_file}"
  rm -f "${port_file}"
}

# Primary: durable, fsync-per-ack, no background checkpoints (recovery
# sees exactly the WAL the acks were fsynced to), quorum acks — over
# {primary, 2 followers} a write needs 1 follower ack, so the cluster
# keeps committing with either replica dead or partitioned.
start_node P --data-dir "${P_DIR}" --fsync always --checkpoint-every 0 \
    --fixture hospital:50:2008 --repl-ack quorum --repl-ack-timeout-ms 10000
start_node A --data-dir "${A_DIR}" --replicate-from "127.0.0.1:${P_PORT}"
start_node B --data-dir "${B_DIR}" --replicate-from "127.0.0.1:${P_PORT}"
for _ in $(seq 1 100); do
  "${CLUSTER}" status "127.0.0.1:${P_PORT}" | grep -q 'followers=2' && break
  sleep 0.1
done
"${CLUSTER}" status "127.0.0.1:${P_PORT}" "127.0.0.1:${A_PORT}" \
    "127.0.0.1:${B_PORT}"
"${CLUSTER}" status "127.0.0.1:${P_PORT}" | grep -q 'followers=2' || {
  echo "followers never registered"; cat "${A_LOG}" "${B_LOG}"; exit 1; }

# Phase 1: stream quorum-acked writes and kill -9 replica B mid-stream.
# Replica A alone sustains the quorum, so every write must still ack.
DRIVE_LOG="$(mktemp)"
"${SMOKE}" drive "127.0.0.1:${P_PORT}" 1500 >"${DRIVE_LOG}" 2>/dev/null &
DRIVER_PID=$!
sleep 0.3
kill -9 "${B_PID}"
wait "${DRIVER_PID}" || { echo "cluster driver failed"; exit 1; }
ACKED1="$(awk '/^acked/{print $2}' "${DRIVE_LOG}")"
[ "${ACKED1}" = "1500" ] || {
  echo "quorum stream acked ${ACKED1}/1500 after replica kill"; exit 1; }

# Rejoin B on its own dir: it recovers the durable prefix (torn tail
# truncated by WAL recovery) and catches up over the stream.
start_node B --data-dir "${B_DIR}" --replicate-from "127.0.0.1:${P_PORT}"
"${CLUSTER}" wait-applied "127.0.0.1:${B_PORT}" "${ACKED1}" 30000 || {
  echo "rejoined replica never caught up"; cat "${B_LOG}"; exit 1; }

# Phase 2: partition replica A (SIGSTOP blackholes its stream without
# dropping the TCP connection), keep committing on B's ack, then heal.
# Divergence is bounded by the primary's per-follower backlog; on CONT
# the buffered suffix drains and A re-syncs without a restart.
kill -STOP "${A_PID}"
: >"${DRIVE_LOG}"
"${SMOKE}" drive "127.0.0.1:${P_PORT}" 100 >"${DRIVE_LOG}" 2>/dev/null
ACKED2="$(awk '/^acked/{print $2}' "${DRIVE_LOG}")"
[ "${ACKED2}" = "100" ] || {
  echo "partitioned quorum acked ${ACKED2}/100"; exit 1; }
TOTAL=$((ACKED1 + ACKED2))
kill -CONT "${A_PID}"
"${CLUSTER}" wait-applied "127.0.0.1:${A_PORT}" "${TOTAL}" 30000 || {
  echo "partitioned replica never re-synced"; cat "${A_LOG}"; exit 1; }
"${CLUSTER}" wait-applied "127.0.0.1:${B_PORT}" "${TOTAL}" 30000

# The replication contract, byte for byte: all three live verdicts
# identical, and identical to a quiesced serial auditor recovering the
# primary's dir offline after the primary is kill -9'd.
V_P="$(mktemp)"; V_A="$(mktemp)"; V_B="$(mktemp)"; V_OFF="$(mktemp)"
"${CLUSTER}" verdict "127.0.0.1:${P_PORT}" "${CLUSTER_EXPR}" >"${V_P}"
"${CLUSTER}" verdict "127.0.0.1:${A_PORT}" "${CLUSTER_EXPR}" >"${V_A}"
"${CLUSTER}" verdict "127.0.0.1:${B_PORT}" "${CLUSTER_EXPR}" >"${V_B}"
[ -s "${V_P}" ] || { echo "primary verdict is empty"; exit 1; }
cmp "${V_P}" "${V_A}" || { echo "replica A verdict diverged"; exit 1; }
cmp "${V_P}" "${V_B}" || { echo "replica B verdict diverged"; exit 1; }

kill -9 "${P_PID}"; P_PID=""
"${CLUSTER}" verdict-offline "${P_DIR}" "${CLUSTER_EXPR}" >"${V_OFF}"
cmp "${V_P}" "${V_OFF}" || {
  echo "offline serial verdict diverged from the cluster"; exit 1; }

# Phase 3: failover. Both replicas hold the full acked prefix; the
# supervisor promotes the most-caught-up one, which must already have
# every acked write and then accept new ones extending the prefix.
NEW_PRIMARY="$("${CLUSTER}" failover "127.0.0.1:${A_PORT}" \
    "127.0.0.1:${B_PORT}")"
[ -n "${NEW_PRIMARY}" ] || { echo "failover promoted nothing"; exit 1; }
echo "promoted ${NEW_PRIMARY}"
"${CLUSTER}" wait-applied "${NEW_PRIMARY}" "${TOTAL}" 5000 || {
  echo "promoted node lost acked writes"; exit 1; }
: >"${DRIVE_LOG}"
"${SMOKE}" drive "${NEW_PRIMARY}" 20 >"${DRIVE_LOG}" 2>/dev/null
ACKED3="$(awk '/^acked/{print $2}' "${DRIVE_LOG}")"
[ "${ACKED3}" = "20" ] || {
  echo "promoted primary acked ${ACKED3}/20"; exit 1; }
"${CLUSTER}" wait-applied "${NEW_PRIMARY}" $((TOTAL + 20)) 10000
"${CLUSTER}" status "${NEW_PRIMARY}" | grep -q 'primary' || {
  echo "promoted node does not report primary"; exit 1; }

# Both survivors must drain cleanly (exit 0, no ASan report) — including
# the non-promoted replica still pointed at the dead primary.
kill -TERM "${A_PID}" "${B_PID}"
A_RC=0; wait "${A_PID}" || A_RC=$?
B_RC=0; wait "${B_PID}" || B_RC=$?
A_PID=""; B_PID=""
trap - EXIT
[ "${A_RC}" -eq 0 ] || {
  echo "replica A drain exited ${A_RC}"; cat "${A_LOG}"; exit 1; }
[ "${B_RC}" -eq 0 ] || {
  echo "replica B drain exited ${B_RC}"; cat "${B_LOG}"; exit 1; }
rm -rf "${P_DIR}" "${A_DIR}" "${B_DIR}"
rm -f "${DRIVE_LOG}" "${V_P}" "${V_A}" "${V_B}" "${V_OFF}" \
      "${P_LOG}" "${A_LOG}" "${B_LOG}"

echo "== [9/9] Release build + bench smokes =="
cmake -B "${PREFIX}-release" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${PREFIX}-release" -j "${JOBS}" \
      --target bench_scan bench_index bench_granule
# A tiny sweep: one fused-filter shape in both scan modes plus the
# 10M-row selection-bitmap emission pair, just enough to prove the bench
# runs at scale and emits its JSON artifact.
( cd "${PREFIX}-release/bench" && \
  ./bench_scan \
      --benchmark_filter='BM_Filter/10000/10/3|BM_PredicateEmit/10000000/10' \
      --benchmark_min_time=0.05 )
[ -s "${PREFIX}-release/bench/BENCH_scan.json" ] || {
  echo "bench_scan did not write BENCH_scan.json"; exit 1; }
grep -q '"benchmarks"' "${PREFIX}-release/bench/BENCH_scan.json" || {
  echo "BENCH_scan.json is not benchmark JSON"; exit 1; }

# The tid-bitmap kernel sweep at 10M tids: the set-vs-bitmap union and
# membership pairs (dense), proving the suspicion/candidacy kernels run
# at the 10M scale and BENCH_granule.json lands.
( cd "${PREFIX}-release/bench" && \
  ./bench_granule \
      --benchmark_filter='BM_IndispensableUnion/10000000/1|BM_SuspicionMembership/10000000/1|BM_WitnessIntersect/10000000/1' \
      --benchmark_min_time=0.05 )
[ -s "${PREFIX}-release/bench/BENCH_granule.json" ] || {
  echo "bench_granule did not write BENCH_granule.json"; exit 1; }
grep -q '"benchmarks"' "${PREFIX}-release/bench/BENCH_granule.json" || {
  echo "BENCH_granule.json is not benchmark JSON"; exit 1; }

# The expression-index bench: one index-on/off pair at 64 standing
# expressions, proving the sweep runs and emits BENCH_index.json.
( cd "${PREFIX}-release/bench" && \
  ./bench_index --benchmark_filter='BM_ObserveStanding/64/8/' \
                --benchmark_min_time=0.05 )
[ -s "${PREFIX}-release/bench/BENCH_index.json" ] || {
  echo "bench_index did not write BENCH_index.json"; exit 1; }
grep -q '"benchmarks"' "${PREFIX}-release/bench/BENCH_index.json" || {
  echo "BENCH_index.json is not benchmark JSON"; exit 1; }

# The push-latency sweep: subscribers x queue-depth over a loopback
# server, measuring query-dispatch -> push-handler latency. `push` mode
# exits non-zero if any combination loses a push, and always emits
# BENCH_push.json.
cmake --build "${PREFIX}-release" -j "${JOBS}" --target bench_net
( cd "${PREFIX}-release/bench" && ./bench_net push 40 )
[ -s "${PREFIX}-release/bench/BENCH_push.json" ] || {
  echo "bench_net did not write BENCH_push.json"; exit 1; }
grep -q '"benchmarks"' "${PREFIX}-release/bench/BENCH_push.json" || {
  echo "BENCH_push.json is not benchmark JSON"; exit 1; }

# The replication sweep: followers x ack policy over an in-process
# primary + bootstrap-synced followers, measuring commit latency and
# the async catch-up gap. `repl` mode exits non-zero on any write
# error or follower verdict mismatch, and always emits BENCH_repl.json.
( cd "${PREFIX}-release/bench" && ./bench_net repl 40 )
[ -s "${PREFIX}-release/bench/BENCH_repl.json" ] || {
  echo "bench_net did not write BENCH_repl.json"; exit 1; }
grep -q '"benchmarks"' "${PREFIX}-release/bench/BENCH_repl.json" || {
  echo "BENCH_repl.json is not benchmark JSON"; exit 1; }

# The policy bench: rule-match throughput vs rule count + redaction
# cost (emits BENCH_policy.json), then the overhead acceptance check —
# a 64-rule engine at 0% hit rate must stay within 5% of an empty one
# on the live ExecuteQuery path (paired same-server measurement).
cmake --build "${PREFIX}-release" -j "${JOBS}" --target bench_policy
( cd "${PREFIX}-release/bench" && \
  ./bench_policy --benchmark_filter='BM_Decide(Miss|HitLast)/64' \
                 --benchmark_min_time=0.05 )
[ -s "${PREFIX}-release/bench/BENCH_policy.json" ] || {
  echo "bench_policy did not write BENCH_policy.json"; exit 1; }
grep -q '"benchmarks"' "${PREFIX}-release/bench/BENCH_policy.json" || {
  echo "BENCH_policy.json is not benchmark JSON"; exit 1; }
( cd "${PREFIX}-release/bench" && ./bench_policy overhead 300 )

# The mixed read/write sweep: writer threads racing pinned audits in
# the versioned (shipped) scheme vs the wholesale-invalidation
# ablation. The bench itself enforces the acceptance: versioned must
# sustain BOTH a hot decision cache and write throughput under every
# write combo, and it always emits BENCH_mixed.json.
cmake --build "${PREFIX}-release" -j "${JOBS}" --target bench_mixed
( cd "${PREFIX}-release/bench" && ./bench_mixed 3 )
[ -s "${PREFIX}-release/bench/BENCH_mixed.json" ] || {
  echo "bench_mixed did not write BENCH_mixed.json"; exit 1; }
grep -q '"benchmarks"' "${PREFIX}-release/bench/BENCH_mixed.json" || {
  echo "BENCH_mixed.json is not benchmark JSON"; exit 1; }

echo "CI gate passed."
