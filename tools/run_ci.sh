#!/usr/bin/env bash
# CI gate: regular build + full test suite, the service-layer concurrency
# suite (determinism + stress) under ThreadSanitizer, the network layer
# under AddressSanitizer — unit suites plus a live auditd smoke: client
# round-trips against a loopback daemon and a SIGTERM graceful drain,
# failing on any ASan report — the durability gate (crash-fault-injection
# harness under ASan, then a live kill -9: stream ExecuteQuery at an
# auditd with --data-dir, SIGKILL it mid-stream, and prove every acked
# query recovers and re-audits on the same dir) — and finally a Release
# (-O2) build that smoke-runs the scan and expression-index benches and
# checks their BENCH_scan.json / BENCH_index.json artifacts.
#
# Usage: tools/run_ci.sh [build-dir-prefix]
#   Build trees land in <prefix>, <prefix>-tsan, <prefix>-asan and
#   <prefix>-release (default: build-ci).

set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

echo "== [1/6] build (${PREFIX}) =="
cmake -B "${PREFIX}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${PREFIX}" -j "${JOBS}"

echo "== [2/6] ctest =="
ctest --test-dir "${PREFIX}" --output-on-failure -j "${JOBS}"

echo "== [3/6] service determinism + stress under ThreadSanitizer =="
cmake -B "${PREFIX}-tsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DAUDITDB_SANITIZE=thread
# The TSan gate only needs the concurrency suite; building just its
# target keeps the sanitizer pass fast.
cmake --build "${PREFIX}-tsan" -j "${JOBS}" --target service_test
ctest --test-dir "${PREFIX}-tsan" --output-on-failure \
      -R 'SchedulerTest|OnlineConcurrentTest|ThreadPoolTest|RunBatchTest|BoundedQueueTest|CounterTest|GaugeTest|HistogramTest|MetricsRegistryTest'

echo "== [4/6] network layer under AddressSanitizer =="
cmake -B "${PREFIX}-asan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DAUDITDB_SANITIZE=address
cmake --build "${PREFIX}-asan" -j "${JOBS}" \
      --target net_test auditd audit_client
# ASan exits non-zero on any report; halt_on_error makes that immediate.
export ASAN_OPTIONS="halt_on_error=1:abort_on_error=0:exitcode=99"
ctest --test-dir "${PREFIX}-asan" --output-on-failure \
      -R 'FrameCodecTest|FrameReaderTest|FieldCodecTest|ErrorCodecTest|TypePredicatesTest|AuditServerTest'

echo "-- auditd loopback smoke (ASan build) --"
PORT_FILE="$(mktemp)"
AUDITD_LOG="$(mktemp)"
"${PREFIX}-asan/tools/auditd" --port 0 --port-file "${PORT_FILE}" \
    --fixture hospital:200:2008 --workload 500:7 >"${AUDITD_LOG}" 2>&1 &
AUDITD_PID=$!
cleanup() { kill -9 "${AUDITD_PID}" 2>/dev/null || true; }
trap cleanup EXIT

# Wait for the daemon to write its ephemeral port.
for _ in $(seq 1 100); do
  [ -s "${PORT_FILE}" ] && break
  kill -0 "${AUDITD_PID}" 2>/dev/null || { cat "${AUDITD_LOG}"; exit 1; }
  sleep 0.1
done
PORT="$(cat "${PORT_FILE}")"
[ -n "${PORT}" ] || { echo "auditd never reported a port"; cat "${AUDITD_LOG}"; exit 1; }

# Remote client smoke: health + audit + metrics over the wire.
"${PREFIX}-asan/examples/audit_client" "127.0.0.1:${PORT}"

# Graceful drain: SIGTERM must yield a clean exit 0 (and no ASan report).
kill -TERM "${AUDITD_PID}"
DRAIN_RC=0
wait "${AUDITD_PID}" || DRAIN_RC=$?
trap - EXIT
if [ "${DRAIN_RC}" -ne 0 ]; then
  echo "auditd drain exited ${DRAIN_RC}"
  cat "${AUDITD_LOG}"
  exit 1
fi
grep -q '"server"' "${AUDITD_LOG}" || {
  echo "auditd did not print final metrics"; cat "${AUDITD_LOG}"; exit 1; }
rm -f "${PORT_FILE}" "${AUDITD_LOG}"

echo "== [5/6] durability gate under AddressSanitizer =="
cmake --build "${PREFIX}-asan" -j "${JOBS}" \
      --target io_test querylog_test net_test auditd durability_smoke
# The crash-fault-injection harness: every injected IO failure and every
# crash point must recover a consistent prefix of the acked appends.
ctest --test-dir "${PREFIX}-asan" --output-on-failure \
      -R 'Crc32cTest|PosixEnvTest|AtomicWriteFileTest|FaultInjectingEnvTest|WalTest|WalPayloadTest|FsyncPolicyTest|DurableStoreTest|DurableStoreFaultTest|DurableStoreCrashTest|DurableServerTest|ClientRetryTest'

echo "-- kill -9 crash smoke (ASan build) --"
DATA_DIR="$(mktemp -d)"
PORT_FILE="$(mktemp)"
AUDITD_LOG="$(mktemp)"
ACKS_FILE="$(mktemp)"
"${PREFIX}-asan/tools/auditd" --port 0 --port-file "${PORT_FILE}" \
    --data-dir "${DATA_DIR}" --fsync always --checkpoint-every 0 \
    --fixture hospital:50:2008 >"${AUDITD_LOG}" 2>&1 &
AUDITD_PID=$!
cleanup() { kill -9 "${AUDITD_PID}" 2>/dev/null || true; }
trap cleanup EXIT
for _ in $(seq 1 100); do
  [ -s "${PORT_FILE}" ] && break
  kill -0 "${AUDITD_PID}" 2>/dev/null || { cat "${AUDITD_LOG}"; exit 1; }
  sleep 0.1
done
PORT="$(cat "${PORT_FILE}")"
[ -n "${PORT}" ] || { echo "auditd never reported a port"; cat "${AUDITD_LOG}"; exit 1; }

# Stream appends at the daemon and SIGKILL it mid-stream: no drain, no
# final checkpoint — recovery gets only the WAL the acks were fsynced to.
"${PREFIX}-asan/tools/durability_smoke" drive "127.0.0.1:${PORT}" 100000 \
    >"${ACKS_FILE}" 2>/dev/null &
DRIVER_PID=$!
sleep 1
kill -9 "${AUDITD_PID}"
wait "${DRIVER_PID}" || { echo "durability driver failed"; exit 1; }
trap - EXIT
ACKED="$(awk '/^acked/{print $2}' "${ACKS_FILE}")"
echo "acked before SIGKILL: ${ACKED}"
[ -n "${ACKED}" ] && [ "${ACKED}" -gt 0 ] || {
  echo "driver acked nothing before the kill"; cat "${AUDITD_LOG}"; exit 1; }

# Offline: every acked append must recover, densely numbered, and the
# recovered world must survive a full audit.
"${PREFIX}-asan/tools/durability_smoke" verify "${DATA_DIR}" "${ACKED}"

# The daemon itself must recover the same dir, serve, and drain cleanly.
: >"${PORT_FILE}"
"${PREFIX}-asan/tools/auditd" --port 0 --port-file "${PORT_FILE}" \
    --data-dir "${DATA_DIR}" --fsync always >"${AUDITD_LOG}" 2>&1 &
AUDITD_PID=$!
trap cleanup EXIT
for _ in $(seq 1 100); do
  [ -s "${PORT_FILE}" ] && break
  kill -0 "${AUDITD_PID}" 2>/dev/null || { cat "${AUDITD_LOG}"; exit 1; }
  sleep 0.1
done
PORT="$(cat "${PORT_FILE}")"
"${PREFIX}-asan/examples/audit_client" "127.0.0.1:${PORT}" >/dev/null
kill -TERM "${AUDITD_PID}"
DRAIN_RC=0
wait "${AUDITD_PID}" || DRAIN_RC=$?
trap - EXIT
if [ "${DRAIN_RC}" -ne 0 ]; then
  echo "recovered auditd drain exited ${DRAIN_RC}"
  cat "${AUDITD_LOG}"
  exit 1
fi
grep -q 'auditd: recovered snapshot' "${AUDITD_LOG}" || {
  echo "restarted auditd did not report recovery"; cat "${AUDITD_LOG}"; exit 1; }
rm -rf "${DATA_DIR}"
rm -f "${PORT_FILE}" "${AUDITD_LOG}" "${ACKS_FILE}"

echo "== [6/6] Release build + bench smokes =="
cmake -B "${PREFIX}-release" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${PREFIX}-release" -j "${JOBS}" --target bench_scan bench_index
# A tiny sweep: one fused-filter shape in both scan modes, just enough to
# prove the bench runs and emits its JSON artifact.
( cd "${PREFIX}-release/bench" && \
  ./bench_scan --benchmark_filter='BM_Filter/10000/10/3' \
               --benchmark_min_time=0.05 )
[ -s "${PREFIX}-release/bench/BENCH_scan.json" ] || {
  echo "bench_scan did not write BENCH_scan.json"; exit 1; }
grep -q '"benchmarks"' "${PREFIX}-release/bench/BENCH_scan.json" || {
  echo "BENCH_scan.json is not benchmark JSON"; exit 1; }

# The expression-index bench: one index-on/off pair at 64 standing
# expressions, proving the sweep runs and emits BENCH_index.json.
( cd "${PREFIX}-release/bench" && \
  ./bench_index --benchmark_filter='BM_ObserveStanding/64/8/' \
                --benchmark_min_time=0.05 )
[ -s "${PREFIX}-release/bench/BENCH_index.json" ] || {
  echo "bench_index did not write BENCH_index.json"; exit 1; }
grep -q '"benchmarks"' "${PREFIX}-release/bench/BENCH_index.json" || {
  echo "BENCH_index.json is not benchmark JSON"; exit 1; }

echo "CI gate passed."
