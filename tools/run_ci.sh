#!/usr/bin/env bash
# CI gate: regular build + full test suite, then the service-layer
# concurrency suite (determinism + stress) under ThreadSanitizer.
#
# Usage: tools/run_ci.sh [build-dir-prefix]
#   Build trees land in <prefix> and <prefix>-tsan (default: build-ci).

set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

echo "== [1/3] build (${PREFIX}) =="
cmake -B "${PREFIX}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${PREFIX}" -j "${JOBS}"

echo "== [2/3] ctest =="
ctest --test-dir "${PREFIX}" --output-on-failure -j "${JOBS}"

echo "== [3/3] service determinism + stress under ThreadSanitizer =="
cmake -B "${PREFIX}-tsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DAUDITDB_SANITIZE=thread
# The TSan gate only needs the concurrency suite; building just its
# target keeps the sanitizer pass fast.
cmake --build "${PREFIX}-tsan" -j "${JOBS}" --target service_test
ctest --test-dir "${PREFIX}-tsan" --output-on-failure \
      -R 'SchedulerTest|ThreadPoolTest|RunBatchTest|BoundedQueueTest|CounterTest|GaugeTest|HistogramTest|MetricsRegistryTest'

echo "CI gate passed."
