#!/usr/bin/env bash
# CI gate: regular build + full test suite, the service-layer concurrency
# suite (determinism + stress) under ThreadSanitizer, the network layer
# under AddressSanitizer — unit suites plus a live auditd smoke: client
# round-trips against a loopback daemon and a SIGTERM graceful drain,
# failing on any ASan report — and finally a Release (-O2) build that
# smoke-runs the scan bench and checks its BENCH_scan.json artifact.
#
# Usage: tools/run_ci.sh [build-dir-prefix]
#   Build trees land in <prefix>, <prefix>-tsan, <prefix>-asan and
#   <prefix>-release (default: build-ci).

set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

echo "== [1/5] build (${PREFIX}) =="
cmake -B "${PREFIX}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${PREFIX}" -j "${JOBS}"

echo "== [2/5] ctest =="
ctest --test-dir "${PREFIX}" --output-on-failure -j "${JOBS}"

echo "== [3/5] service determinism + stress under ThreadSanitizer =="
cmake -B "${PREFIX}-tsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DAUDITDB_SANITIZE=thread
# The TSan gate only needs the concurrency suite; building just its
# target keeps the sanitizer pass fast.
cmake --build "${PREFIX}-tsan" -j "${JOBS}" --target service_test
ctest --test-dir "${PREFIX}-tsan" --output-on-failure \
      -R 'SchedulerTest|ThreadPoolTest|RunBatchTest|BoundedQueueTest|CounterTest|GaugeTest|HistogramTest|MetricsRegistryTest'

echo "== [4/5] network layer under AddressSanitizer =="
cmake -B "${PREFIX}-asan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DAUDITDB_SANITIZE=address
cmake --build "${PREFIX}-asan" -j "${JOBS}" \
      --target net_test auditd audit_client
# ASan exits non-zero on any report; halt_on_error makes that immediate.
export ASAN_OPTIONS="halt_on_error=1:abort_on_error=0:exitcode=99"
ctest --test-dir "${PREFIX}-asan" --output-on-failure \
      -R 'FrameCodecTest|FrameReaderTest|FieldCodecTest|ErrorCodecTest|TypePredicatesTest|AuditServerTest'

echo "-- auditd loopback smoke (ASan build) --"
PORT_FILE="$(mktemp)"
AUDITD_LOG="$(mktemp)"
"${PREFIX}-asan/tools/auditd" --port 0 --port-file "${PORT_FILE}" \
    --fixture hospital:200:2008 --workload 500:7 >"${AUDITD_LOG}" 2>&1 &
AUDITD_PID=$!
cleanup() { kill -9 "${AUDITD_PID}" 2>/dev/null || true; }
trap cleanup EXIT

# Wait for the daemon to write its ephemeral port.
for _ in $(seq 1 100); do
  [ -s "${PORT_FILE}" ] && break
  kill -0 "${AUDITD_PID}" 2>/dev/null || { cat "${AUDITD_LOG}"; exit 1; }
  sleep 0.1
done
PORT="$(cat "${PORT_FILE}")"
[ -n "${PORT}" ] || { echo "auditd never reported a port"; cat "${AUDITD_LOG}"; exit 1; }

# Remote client smoke: health + audit + metrics over the wire.
"${PREFIX}-asan/examples/audit_client" "127.0.0.1:${PORT}"

# Graceful drain: SIGTERM must yield a clean exit 0 (and no ASan report).
kill -TERM "${AUDITD_PID}"
DRAIN_RC=0
wait "${AUDITD_PID}" || DRAIN_RC=$?
trap - EXIT
if [ "${DRAIN_RC}" -ne 0 ]; then
  echo "auditd drain exited ${DRAIN_RC}"
  cat "${AUDITD_LOG}"
  exit 1
fi
grep -q '"server"' "${AUDITD_LOG}" || {
  echo "auditd did not print final metrics"; cat "${AUDITD_LOG}"; exit 1; }
rm -f "${PORT_FILE}" "${AUDITD_LOG}"

echo "== [5/5] Release build + scan bench smoke =="
cmake -B "${PREFIX}-release" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${PREFIX}-release" -j "${JOBS}" --target bench_scan
# A tiny sweep: one fused-filter shape in both scan modes, just enough to
# prove the bench runs and emits its JSON artifact.
( cd "${PREFIX}-release/bench" && \
  ./bench_scan --benchmark_filter='BM_Filter/10000/10/3' \
               --benchmark_min_time=0.05 )
[ -s "${PREFIX}-release/bench/BENCH_scan.json" ] || {
  echo "bench_scan did not write BENCH_scan.json"; exit 1; }
grep -q '"benchmarks"' "${PREFIX}-release/bench/BENCH_scan.json" || {
  echo "BENCH_scan.json is not benchmark JSON"; exit 1; }

echo "CI gate passed."
