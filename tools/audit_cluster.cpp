/// audit_cluster — cluster supervisor for replicated auditd.
///
/// The failover actor the replication design deliberately leaves out of
/// the server (docs/replication.md "Failover"): auditd nodes never
/// elect; an operator or this supervisor observes Health and issues
/// PROMOTE. Subcommands:
///
///   status <host:port>...
///       One line per node: role, applied WAL seq, followers/upstream.
///       Unreachable nodes print "down" (exit stays 0 — status reports,
///       it does not judge).
///   promote <host:port>
///       Sends the PROMOTE admin frame; prints the acknowledged role.
///   failover <host:port>...
///       Picks the most-caught-up live replica (highest applied seq,
///       first wins ties), promotes it, and prints its address on
///       stdout — the line a wrapper script captures as the new
///       primary. Refuses (exit 2) if a live primary is still serving,
///       fails (exit 1) if no replica is reachable.
///   verdict <host:port> <audit-expr> [at-micros]
///       Runs the audit on that node and prints the CanonicalString —
///       the byte-identical replication contract, made diffable.
///   verdict-offline <data-dir> <audit-expr> [at-micros]
///       Recovers a quiesced node's durable state (checkpoint + WAL
///       replay, exactly the restart path) and audits it with the
///       in-process serial Auditor: the ground truth the CI cluster
///       gate diffs live follower verdicts against.
///   wait-applied <host:port> <seq> [timeout-ms]
///       Polls Health until the node's applied seq reaches `seq`
///       (default timeout 10s). Exit 1 on timeout.
///
/// All verdict output goes to stdout alone; diagnostics go to stderr,
/// so `audit_cluster verdict ... > a && diff a b` means what it says.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/audit/auditor.h"
#include "src/io/file.h"
#include "src/io/store.h"
#include "src/net/client.h"
#include "src/net/replication.h"
#include "src/net/wire.h"

namespace {

using namespace auditdb;
using std::chrono::milliseconds;

constexpr int64_t kDefaultAtMicros = 1000000;  // auditd's t0

/// One node's parsed Health suffix (server.cc ReplicationHealthSuffix).
struct NodeHealth {
  bool reachable = false;
  std::string role;  // "primary" | "replica" | "" (replication off)
  int64_t applied = -1;
  int64_t last_shipped = -1;
  int64_t followers = -1;
  std::string upstream;
  bool connected = false;
};

int64_t FieldValue(const std::string& health, const std::string& key) {
  size_t pos = health.find("|" + key + "=");
  if (pos == std::string::npos) return -1;
  return std::strtoll(health.c_str() + pos + key.size() + 2, nullptr, 10);
}

std::string FieldText(const std::string& health, const std::string& key) {
  size_t pos = health.find("|" + key + "=");
  if (pos == std::string::npos) return "";
  size_t start = pos + key.size() + 2;
  size_t end = health.find('|', start);
  return health.substr(start, end == std::string::npos ? end : end - start);
}

NodeHealth Probe(const std::string& endpoint) {
  NodeHealth node;
  net::AuditClientOptions options;
  options.connect_timeout = milliseconds(1000);
  options.request_timeout = milliseconds(3000);
  options.max_retries = 0;
  options.follow_not_primary = false;
  net::AuditClient client({endpoint}, options);
  auto health = client.Health();
  if (!health.ok()) return node;
  node.reachable = true;
  node.role = FieldText(*health, "role");
  node.applied = FieldValue(*health, "applied");
  node.last_shipped = FieldValue(*health, "last_shipped");
  node.followers = FieldValue(*health, "followers");
  node.upstream = FieldText(*health, "upstream");
  node.connected = FieldValue(*health, "connected") == 1;
  return node;
}

int RunStatus(const std::vector<std::string>& endpoints) {
  for (const auto& endpoint : endpoints) {
    NodeHealth node = Probe(endpoint);
    if (!node.reachable) {
      std::printf("%-24s down\n", endpoint.c_str());
    } else if (node.role.empty()) {
      std::printf("%-24s up (replication off)\n", endpoint.c_str());
    } else if (node.role == "primary") {
      std::printf("%-24s primary  applied=%lld shipped=%lld followers=%lld\n",
                  endpoint.c_str(), static_cast<long long>(node.applied),
                  static_cast<long long>(node.last_shipped),
                  static_cast<long long>(node.followers));
    } else {
      std::printf("%-24s replica  applied=%lld upstream=%s %s\n",
                  endpoint.c_str(), static_cast<long long>(node.applied),
                  node.upstream.c_str(),
                  node.connected ? "connected" : "DISCONNECTED");
    }
  }
  return 0;
}

int Promote(const std::string& endpoint) {
  net::AuditClientOptions options;
  options.follow_not_primary = false;
  net::AuditClient client({endpoint}, options);
  auto response = client.RoundTrip(net::Message{
      net::MessageType::kPromoteRequest, net::EncodeFields({"primary"})});
  if (!response.ok()) {
    std::fprintf(stderr, "promote %s: %s\n", endpoint.c_str(),
                 response.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", response->payload.c_str());
  return 0;
}

int RunFailover(const std::vector<std::string>& endpoints) {
  std::string best;
  int64_t best_applied = -1;
  for (const auto& endpoint : endpoints) {
    NodeHealth node = Probe(endpoint);
    if (!node.reachable) continue;
    if (node.role == "primary") {
      std::fprintf(stderr,
                   "failover: %s is a live primary; not promoting over it\n",
                   endpoint.c_str());
      return 2;
    }
    std::fprintf(stderr, "failover: %s applied=%lld\n", endpoint.c_str(),
                 static_cast<long long>(node.applied));
    // Strictly greater: the most-caught-up follower wins, the first
    // listed wins ties (deterministic for scripted callers).
    if (node.role == "replica" && node.applied > best_applied) {
      best = endpoint;
      best_applied = node.applied;
    }
  }
  if (best.empty()) {
    std::fprintf(stderr, "failover: no reachable replica to promote\n");
    return 1;
  }
  net::AuditClientOptions options;
  options.follow_not_primary = false;
  net::AuditClient client({best}, options);
  auto response = client.RoundTrip(net::Message{
      net::MessageType::kPromoteRequest, net::EncodeFields({"primary"})});
  if (!response.ok() || response->payload != "primary") {
    std::fprintf(stderr, "failover: promote %s failed: %s\n", best.c_str(),
                 response.ok() ? response->payload.c_str()
                               : response.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "failover: promoted %s (applied=%lld)\n",
               best.c_str(), static_cast<long long>(best_applied));
  std::printf("%s\n", best.c_str());
  return 0;
}

int RunVerdict(const std::string& endpoint, const std::string& expression,
               int64_t at_micros) {
  net::AuditClientOptions options;
  options.request_timeout = milliseconds(60000);
  options.follow_not_primary = false;
  net::AuditClient client({endpoint}, options);
  auto report = client.Audit(expression, Timestamp(at_micros));
  if (!report.ok()) {
    std::fprintf(stderr, "verdict %s: %s\n", endpoint.c_str(),
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->canonical.c_str());
  return 0;
}

int RunVerdictOffline(const std::string& data_dir,
                      const std::string& expression, int64_t at_micros) {
  Database db;
  Backlog backlog;
  QueryLog log;
  backlog.Attach(&db);
  auto opened = io::DurableStore::Open(io::Env::Default(), data_dir, &db,
                                       &log, Timestamp(kDefaultAtMicros));
  if (!opened.ok()) {
    std::fprintf(stderr, "verdict-offline %s: %s\n", data_dir.c_str(),
                 opened.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "verdict-offline: recovered %zu log entries from %s\n",
               log.size(), data_dir.c_str());
  audit::Auditor auditor(&db, &backlog, &log);
  auto report = auditor.Audit(expression, Timestamp(at_micros));
  if (!report.ok()) {
    std::fprintf(stderr, "verdict-offline: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->CanonicalString().c_str());
  return 0;
}

int WaitApplied(const std::string& endpoint, int64_t seq,
                milliseconds timeout) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  int64_t last_seen = -1;
  while (std::chrono::steady_clock::now() < deadline) {
    NodeHealth node = Probe(endpoint);
    if (node.reachable) {
      last_seen = node.applied;
      if (node.applied >= seq) {
        std::printf("%lld\n", static_cast<long long>(node.applied));
        return 0;
      }
    }
    std::this_thread::sleep_for(milliseconds(50));
  }
  std::fprintf(stderr, "wait-applied %s: timed out at applied=%lld < %lld\n",
               endpoint.c_str(), static_cast<long long>(last_seen),
               static_cast<long long>(seq));
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: audit_cluster <subcommand> ...\n"
      "  status        <host:port>...\n"
      "  promote       <host:port>\n"
      "  failover      <host:port>...\n"
      "  verdict       <host:port> <audit-expr> [at-micros]\n"
      "  verdict-offline <data-dir> <audit-expr> [at-micros]\n"
      "  wait-applied  <host:port> <seq> [timeout-ms]\n");
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  std::vector<std::string> rest(argv + 2, argv + argc);

  if (command == "status") {
    if (rest.empty()) return Usage();
    return RunStatus(rest);
  }
  if (command == "promote") {
    if (rest.size() != 1) return Usage();
    return Promote(rest[0]);
  }
  if (command == "failover") {
    if (rest.empty()) return Usage();
    return RunFailover(rest);
  }
  if (command == "verdict") {
    if (rest.size() < 2 || rest.size() > 3) return Usage();
    int64_t at = rest.size() == 3 ? std::strtoll(rest[2].c_str(), nullptr, 10)
                                  : kDefaultAtMicros;
    return RunVerdict(rest[0], rest[1], at);
  }
  if (command == "verdict-offline") {
    if (rest.size() < 2 || rest.size() > 3) return Usage();
    int64_t at = rest.size() == 3 ? std::strtoll(rest[2].c_str(), nullptr, 10)
                                  : kDefaultAtMicros;
    return RunVerdictOffline(rest[0], rest[1], at);
  }
  if (command == "wait-applied") {
    if (rest.size() < 2 || rest.size() > 3) return Usage();
    int64_t seq = std::strtoll(rest[1].c_str(), nullptr, 10);
    milliseconds timeout(rest.size() == 3
                             ? std::strtoll(rest[2].c_str(), nullptr, 10)
                             : 10000);
    return WaitApplied(rest[0], seq, timeout);
  }
  return Usage();
}
