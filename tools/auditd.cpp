/// auditd — the network audit daemon: serves the concurrent
/// AuditService over the framed wire protocol (docs/wire_protocol.md).
///
/// Usage: auditd [flags]
///   --host H                 IPv4 to bind (default 127.0.0.1)
///   --port P                 TCP port; 0 picks an ephemeral port
///   --service-threads N      audit worker pool size (0 = hardware)
///   --handler-threads N      request handler pool size (default 4)
///   --handler-queue N        handler queue capacity (default 64)
///   --admission block|reject what a full handler queue does
///                            (reject surfaces RESOURCE_EXHAUSTED to
///                            the client; block pauses reads)
///   --max-frame BYTES        per-frame body cap (default 4 MiB)
///   --max-response BYTES     response body cap; larger replies become
///                            OUT_OF_RANGE errors (default 4 MiB)
///   --no-audit-index         disable the audit decision cache (the
///                            "index" metrics section disappears;
///                            ablation knob, results are identical)
///   --idle-timeout-ms N      evict idle connections after N ms
///   --max-subscriptions N    server-wide cap on live push
///                            subscriptions (default 1024)
///   --push-queue-depth N     bounded per-subscription outbound queue
///                            (default 64); overflow applies the
///                            slow-subscriber policy
///   --slow-subscriber-policy drop|evict
///                            what a full push queue does: shed oldest
///                            events behind a GAP frame (drop, the
///                            default) or evict the connection
///   --so-sndbuf BYTES        SO_SNDBUF for accepted connections
///                            (0 = kernel default; soaks shrink it so
///                            push backpressure triggers with little
///                            traffic)
///   --fixture hospital:N[:SEED]   populate the hospital instance
///   --workload N[:SEED]      append N generated queries to the log
///   --db FILE                load a database dump at startup
///   --log FILE               load a query-log dump at startup
///   --data-dir DIR           durable store (docs/durability.md): recover
///                            snapshot + WAL on startup, WAL-append every
///                            acked ExecuteQuery, checkpoint on drain.
///                            When DIR already holds a MANIFEST the disk
///                            state wins and --fixture/--db/--log are
///                            skipped.
///   --fsync POLICY           WAL fsync policy: always (default; an acked
///                            append survives kill -9), every_n[:N], never
///   --checkpoint-every N     snapshot after N WAL records (default 4096;
///                            0 = only on drain)
///   --audit-rules FILE       policy rule config (docs/policy.md): every
///                            ExecuteQuery is matched against the rules;
///                            matching rules drive sink emission,
///                            redaction, and audit detail. SIGHUP
///                            re-reads the file and swaps the config
///                            atomically; a broken file keeps the old
///                            rules live.
///   --audit-sink-file FILE   attach the "file" policy sink (AUDIT line
///                            protocol, appended)
///   --audit-sink-syslog FILE attach the "syslog" policy sink ("-" =
///                            stderr)
///   --db-name NAME           database name rule `database =` clauses
///                            match (default auditdb)
///   --replicate-from H:P     start as a read-only replica streaming the
///                            primary at H:P (docs/replication.md):
///                            rejects ExecuteQuery/LoadDump with
///                            NOT_PRIMARY, applies the primary's WAL
///                            stream through the recovery path, serves
///                            reads. PROMOTE turns it into a primary.
///   --repl-ack POLICY        follower acks an ExecuteQuery waits for
///                            before its OK: none (default), quorum
///                            (majority of primary+followers; promotion
///                            then never loses an acked write), all
///   --repl-ack-timeout-ms N  WaitForAcks budget (default 2000); expiry
///                            answers DEADLINE_EXCEEDED — committed
///                            locally but under-replicated
///   --advertise H:P          address other nodes should use for this
///                            one (NOT_PRIMARY redirects, metrics);
///                            defaults to the bound host:port
///   --port-file FILE         write the bound port (for scripts that
///                            start auditd on an ephemeral port)
///   --quiet                  suppress the startup banner
///
/// SIGTERM/SIGINT drain gracefully: the listener closes, in-flight
/// requests finish and flush, a final checkpoint persists the stores
/// (with --data-dir), then the daemon exits 0 and prints the final
/// metrics JSON. SIGHUP hot-reloads --audit-rules.

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/io/dump.h"
#include "src/io/file.h"
#include "src/io/store.h"
#include "src/net/server.h"
#include "src/policy/policy_engine.h"
#include "src/workload/generator.h"
#include "src/workload/hospital.h"

using namespace auditdb;

namespace {

struct Flags {
  std::string host = "127.0.0.1";
  int port = 0;
  size_t service_threads = 0;
  size_t handler_threads = 4;
  size_t handler_queue = 64;
  service::AdmissionPolicy admission = service::AdmissionPolicy::kReject;
  size_t max_frame = net::kDefaultMaxFrameBytes;
  size_t max_response = net::kDefaultMaxFrameBytes;
  int idle_timeout_ms = 30000;
  size_t fixture_patients = 0;
  uint64_t fixture_seed = 2008;
  size_t workload_queries = 0;
  uint64_t workload_seed = 7;
  std::string db_file;
  std::string log_file;
  std::string data_dir;
  querylog::FsyncPolicy fsync = querylog::FsyncPolicy::kAlways;
  size_t fsync_every_n = 64;
  uint64_t checkpoint_every = 4096;
  std::string port_file;
  bool quiet = false;
  bool audit_index = true;
  size_t max_subscriptions = 1024;
  size_t push_queue_depth = 64;
  net::SlowSubscriberPolicy slow_subscriber_policy =
      net::SlowSubscriberPolicy::kDropOldest;
  size_t so_sndbuf = 0;
  std::string audit_rules;
  std::string audit_sink_file;
  std::string audit_sink_syslog;
  std::string db_name = "auditdb";
  std::string replicate_from;
  net::ReplAckPolicy repl_ack = net::ReplAckPolicy::kNone;
  int repl_ack_timeout_ms = 2000;
  std::string advertise;
  bool replication = false;  // any --repl* / --advertise flag given
};

bool ParseSize(const char* text, size_t* out) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = static_cast<size_t>(v);
  return true;
}

/// Parses "N" or "N:SEED".
bool ParseCountSeed(const std::string& text, size_t* count,
                    uint64_t* seed) {
  auto colon = text.find(':');
  std::string head = text.substr(0, colon);
  if (!ParseSize(head.c_str(), count)) return false;
  if (colon != std::string::npos) {
    size_t s;
    if (!ParseSize(text.c_str() + colon + 1, &s)) return false;
    *seed = s;
  }
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [flags] (see header comment)\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--quiet") {
      flags.quiet = true;
    } else if (arg == "--no-audit-index") {
      flags.audit_index = false;
    } else if (arg == "--host" && (value = next())) {
      flags.host = value;
    } else if (arg == "--port" && (value = next())) {
      flags.port = std::atoi(value);
    } else if (arg == "--service-threads" && (value = next())) {
      if (!ParseSize(value, &flags.service_threads)) return Usage(argv[0]);
    } else if (arg == "--handler-threads" && (value = next())) {
      if (!ParseSize(value, &flags.handler_threads)) return Usage(argv[0]);
    } else if (arg == "--handler-queue" && (value = next())) {
      if (!ParseSize(value, &flags.handler_queue)) return Usage(argv[0]);
    } else if (arg == "--admission" && (value = next())) {
      if (std::strcmp(value, "block") == 0) {
        flags.admission = service::AdmissionPolicy::kBlock;
      } else if (std::strcmp(value, "reject") == 0) {
        flags.admission = service::AdmissionPolicy::kReject;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--max-frame" && (value = next())) {
      if (!ParseSize(value, &flags.max_frame)) return Usage(argv[0]);
    } else if (arg == "--max-response" && (value = next())) {
      if (!ParseSize(value, &flags.max_response)) return Usage(argv[0]);
    } else if (arg == "--idle-timeout-ms" && (value = next())) {
      flags.idle_timeout_ms = std::atoi(value);
    } else if (arg == "--max-subscriptions" && (value = next())) {
      if (!ParseSize(value, &flags.max_subscriptions)) return Usage(argv[0]);
    } else if (arg == "--push-queue-depth" && (value = next())) {
      if (!ParseSize(value, &flags.push_queue_depth)) return Usage(argv[0]);
    } else if (arg == "--slow-subscriber-policy" && (value = next())) {
      auto policy = net::ParseSlowSubscriberPolicy(value);
      if (!policy.ok()) return Usage(argv[0]);
      flags.slow_subscriber_policy = *policy;
    } else if (arg == "--so-sndbuf" && (value = next())) {
      if (!ParseSize(value, &flags.so_sndbuf)) return Usage(argv[0]);
    } else if (arg == "--fixture" && (value = next())) {
      std::string spec = value;
      if (spec.rfind("hospital:", 0) != 0 ||
          !ParseCountSeed(spec.substr(9), &flags.fixture_patients,
                          &flags.fixture_seed)) {
        return Usage(argv[0]);
      }
    } else if (arg == "--workload" && (value = next())) {
      if (!ParseCountSeed(value, &flags.workload_queries,
                          &flags.workload_seed)) {
        return Usage(argv[0]);
      }
    } else if (arg == "--db" && (value = next())) {
      flags.db_file = value;
    } else if (arg == "--log" && (value = next())) {
      flags.log_file = value;
    } else if (arg == "--data-dir" && (value = next())) {
      flags.data_dir = value;
    } else if (arg == "--fsync" && (value = next())) {
      auto policy = querylog::ParseFsyncPolicy(value, &flags.fsync_every_n);
      if (!policy.ok()) return Usage(argv[0]);
      flags.fsync = *policy;
    } else if (arg == "--checkpoint-every" && (value = next())) {
      size_t n = 0;
      if (!ParseSize(value, &n)) return Usage(argv[0]);
      flags.checkpoint_every = n;
    } else if (arg == "--audit-rules" && (value = next())) {
      flags.audit_rules = value;
    } else if (arg == "--audit-sink-file" && (value = next())) {
      flags.audit_sink_file = value;
    } else if (arg == "--audit-sink-syslog" && (value = next())) {
      flags.audit_sink_syslog = value;
    } else if (arg == "--db-name" && (value = next())) {
      flags.db_name = value;
    } else if (arg == "--replicate-from" && (value = next())) {
      if (!net::ParseHostPort(value).ok()) return Usage(argv[0]);
      flags.replicate_from = value;
      flags.replication = true;
    } else if (arg == "--repl-ack" && (value = next())) {
      auto policy = net::ParseReplAckPolicy(value);
      if (!policy.ok()) return Usage(argv[0]);
      flags.repl_ack = *policy;
      flags.replication = true;
    } else if (arg == "--repl-ack-timeout-ms" && (value = next())) {
      flags.repl_ack_timeout_ms = std::atoi(value);
      flags.replication = true;
    } else if (arg == "--advertise" && (value = next())) {
      if (!net::ParseHostPort(value).ok()) return Usage(argv[0]);
      flags.advertise = value;
      flags.replication = true;
    } else if (arg == "--port-file" && (value = next())) {
      flags.port_file = value;
    } else {
      return Usage(argv[0]);
    }
  }

  // Route SIGTERM/SIGINT (drain) and SIGHUP (policy reload) to the
  // sigwait loop below; block them before any thread spawns so every
  // pool worker inherits the mask.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGHUP);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  Database db;
  Backlog backlog;
  backlog.Attach(&db);
  QueryLog log;
  Timestamp t0(1000000);

  // With a durable data dir that already holds a MANIFEST, the disk
  // state is authoritative: recovery must start from empty stores, so
  // fixture/workload/dump flags are skipped (the stores they would
  // seed were already persisted by the run that created the MANIFEST).
  io::Env* env = io::Env::Default();
  const bool recovering =
      !flags.data_dir.empty() &&
      io::DurableStore::HasManifest(env, flags.data_dir);
  if (recovering &&
      (flags.fixture_patients > 0 || !flags.db_file.empty() ||
       !flags.log_file.empty())) {
    std::fprintf(stderr,
                 "auditd: %s holds a MANIFEST; ignoring "
                 "--fixture/--workload/--db/--log and recovering from "
                 "disk\n",
                 flags.data_dir.c_str());
    flags.fixture_patients = 0;
    flags.workload_queries = 0;
    flags.db_file.clear();
    flags.log_file.clear();
  }

  if (flags.fixture_patients > 0) {
    workload::HospitalConfig hospital;
    hospital.num_patients = flags.fixture_patients;
    hospital.seed = flags.fixture_seed;
    Status status = workload::PopulateHospital(&db, hospital, t0);
    if (!status.ok()) {
      std::fprintf(stderr, "fixture: %s\n", status.ToString().c_str());
      return 1;
    }
    if (flags.workload_queries > 0) {
      workload::WorkloadConfig workload;
      workload.num_queries = flags.workload_queries;
      workload.seed = flags.workload_seed;
      workload.start = Timestamp(100 * 1000000);
      status = workload::GenerateWorkload(&log, workload, hospital);
      if (!status.ok()) {
        std::fprintf(stderr, "workload: %s\n", status.ToString().c_str());
        return 1;
      }
    }
  }
  if (!flags.db_file.empty()) {
    Status status = io::LoadDatabase(flags.db_file, &db, t0);
    if (!status.ok()) {
      std::fprintf(stderr, "--db: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (!flags.log_file.empty()) {
    Status status = io::LoadQueryLog(flags.log_file, &log);
    if (!status.ok()) {
      std::fprintf(stderr, "--log: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  std::unique_ptr<io::DurableStore> store;
  if (!flags.data_dir.empty()) {
    io::DurableStoreOptions store_options;
    store_options.fsync = flags.fsync;
    store_options.fsync_every_n = flags.fsync_every_n;
    store_options.checkpoint_every_records = flags.checkpoint_every;
    auto opened = io::DurableStore::Open(env, flags.data_dir, &db, &log,
                                         t0, store_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "--data-dir: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    store = std::move(*opened);
    if (!flags.quiet) {
      const io::RecoveryInfo& recovery = store->recovery();
      if (recovery.manifest_found) {
        std::fprintf(stderr,
                     "auditd: recovered snapshot %llu (%llu queries) + "
                     "%llu WAL records, dropped %llu torn bytes\n",
                     (unsigned long long)recovery.snapshot_seq,
                     (unsigned long long)recovery.snapshot_queries,
                     (unsigned long long)recovery.recovered_records,
                     (unsigned long long)recovery.torn_tail_dropped);
      } else {
        std::fprintf(stderr,
                     "auditd: initialized durable store %s "
                     "(checkpoint %llu, fsync=%s)\n",
                     flags.data_dir.c_str(),
                     (unsigned long long)store->last_checkpoint_seq(),
                     querylog::FsyncPolicyName(flags.fsync));
      }
    }
  }

  // Policy engine: attach sinks first (rules reference them by name),
  // then load the rules file. Declared before the server so it outlives
  // every handler thread.
  std::unique_ptr<policy::PolicyEngine> engine;
  if (!flags.audit_rules.empty()) {
    policy::PolicyEngineOptions engine_options;
    engine_options.database_name = flags.db_name;
    engine = std::make_unique<policy::PolicyEngine>(engine_options);
    if (!flags.audit_sink_file.empty()) {
      auto sink = policy::FileSink::Open(env, flags.audit_sink_file);
      if (!sink.ok()) {
        std::fprintf(stderr, "--audit-sink-file: %s\n",
                     sink.status().ToString().c_str());
        return 1;
      }
      Status attached = engine->AttachSink(std::move(*sink));
      if (!attached.ok()) {
        std::fprintf(stderr, "--audit-sink-file: %s\n",
                     attached.ToString().c_str());
        return 1;
      }
    }
    if (!flags.audit_sink_syslog.empty()) {
      auto sink = policy::SyslogLineSink::Open(env, flags.audit_sink_syslog);
      if (!sink.ok()) {
        std::fprintf(stderr, "--audit-sink-syslog: %s\n",
                     sink.status().ToString().c_str());
        return 1;
      }
      Status attached = engine->AttachSink(std::move(*sink));
      if (!attached.ok()) {
        std::fprintf(stderr, "--audit-sink-syslog: %s\n",
                     attached.ToString().c_str());
        return 1;
      }
    }
    Status loaded =
        engine->LoadFile(env, flags.audit_rules, Timestamp::Now());
    if (!loaded.ok()) {
      std::fprintf(stderr, "--audit-rules: %s\n",
                   loaded.ToString().c_str());
      return 1;
    }
    // Everything rendered from the log (shell display, wire
    // DetailedReport echoes) goes through the engine's union redaction
    // set; the stored entries keep the unredacted text that drives
    // audits.
    log.SetRedactor([engine_ptr = engine.get()](const std::string& sql) {
      return engine_ptr->RedactForDisplay(sql);
    });
  } else if (!flags.audit_sink_file.empty() ||
             !flags.audit_sink_syslog.empty()) {
    std::fprintf(stderr,
                 "auditd: --audit-sink-* requires --audit-rules\n");
    return 1;
  }

  service::AuditServiceOptions service_options;
  service_options.pool.num_threads = flags.service_threads;
  service_options.decision_cache_enabled = flags.audit_index;
  service::AuditService audit_service(&db, &backlog, &log,
                                      service_options);

  net::AuditServerOptions server_options;
  server_options.host = flags.host;
  server_options.port = static_cast<uint16_t>(flags.port);
  server_options.max_frame_bytes = flags.max_frame;
  server_options.max_response_bytes = flags.max_response;
  server_options.idle_timeout =
      std::chrono::milliseconds(flags.idle_timeout_ms);
  server_options.handlers.num_threads = flags.handler_threads;
  server_options.handlers.queue_capacity = flags.handler_queue;
  server_options.handlers.admission = flags.admission;
  server_options.max_subscriptions = flags.max_subscriptions;
  server_options.push_queue_depth = flags.push_queue_depth;
  server_options.slow_subscriber_policy = flags.slow_subscriber_policy;
  server_options.so_sndbuf = static_cast<int>(flags.so_sndbuf);
  server_options.durable_store = store.get();
  server_options.policy = engine.get();
  server_options.replicate_from = flags.replicate_from;
  server_options.repl_ack = flags.repl_ack;
  server_options.repl_ack_timeout =
      std::chrono::milliseconds(flags.repl_ack_timeout_ms);
  server_options.advertise_address = flags.advertise;
  // Replicated dumps restore rows with the primary's stamp; ship the
  // same t0 fixtures and recovery use so DATA-INTERVAL audits agree
  // across the cluster.
  server_options.bootstrap_stamp_micros = t0.micros();
  server_options.replication = flags.replication;
  net::AuditServer server(&audit_service, &db, &backlog, &log,
                          server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }

  if (!flags.port_file.empty()) {
    // Atomic so a script polling the path never reads a partial write.
    Status wrote = io::AtomicWriteFile(
        env, flags.port_file, std::to_string(server.port()) + "\n");
    if (!wrote.ok()) {
      std::fprintf(stderr, "--port-file: %s\n", wrote.ToString().c_str());
      server.Shutdown();
      return 1;
    }
  }
  if (!flags.quiet) {
    std::printf(
        "auditd listening on %s:%u (service threads=%zu, handlers=%zu, "
        "admission=%s, log=%zu queries",
        server.host().c_str(), server.port(),
        audit_service.num_threads(), flags.handler_threads,
        flags.admission == service::AdmissionPolicy::kReject ? "reject"
                                                             : "block",
        log.size());
    if (engine != nullptr) {
      std::printf(", policy rules=%zu", engine->rule_count());
    }
    if (!flags.replicate_from.empty()) {
      std::printf(", replica of %s", flags.replicate_from.c_str());
    } else if (flags.replication) {
      std::printf(", repl-ack=%s",
                  net::ReplAckPolicyName(flags.repl_ack));
    }
    std::printf(")\n");
    std::fflush(stdout);
  }

  int sig = 0;
  while (true) {
    sigwait(&sigs, &sig);
    if (sig != SIGHUP) break;
    // SIGHUP: hot-reload the rules file. The swap is atomic — queries
    // decided under the old config finish under it; a broken file
    // keeps the old rules live (counted in policy.reload_failures).
    if (engine == nullptr) {
      std::fprintf(stderr,
                   "auditd: SIGHUP but no --audit-rules; ignoring\n");
      continue;
    }
    Status reloaded = engine->Reload(Timestamp::Now());
    if (reloaded.ok()) {
      std::fprintf(stderr,
                   "auditd: reloaded %s (%zu rules, generation %llu)\n",
                   engine->config_path().c_str(), engine->rule_count(),
                   (unsigned long long)engine->generation());
    } else {
      std::fprintf(stderr,
                   "auditd: reload of %s failed, keeping old rules: %s\n",
                   engine->config_path().c_str(),
                   reloaded.ToString().c_str());
    }
  }
  if (!flags.quiet) {
    std::fprintf(stderr, "auditd: signal %d, draining...\n", sig);
  }
  server.Shutdown();
  if (engine != nullptr) {
    Status flushed = engine->FlushSinks();
    if (!flushed.ok()) {
      std::fprintf(stderr, "auditd: sink flush failed: %s\n",
                   flushed.ToString().c_str());
    }
  }
  // The drain finished every in-flight handler, so db/log are quiescent:
  // persist a final checkpoint and truncate the WAL before exiting.
  if (store != nullptr && !store->broken()) {
    Status final_checkpoint = store->Checkpoint(db, log);
    if (!final_checkpoint.ok()) {
      std::fprintf(stderr, "auditd: final checkpoint failed: %s\n",
                   final_checkpoint.ToString().c_str());
      std::printf("%s\n", server.MetricsJson().c_str());
      return 1;
    }
  }
  std::printf("%s\n", server.MetricsJson().c_str());
  return 0;
}
